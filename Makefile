# Convenience targets for the TerraDir reproduction.
#
#   make install      editable install (offline-friendly)
#   make lint         ruff over sources, tests, and benchmarks
#   make test         full unit/integration/property suite
#   make bench        every figure/table benchmark (shape assertions)
#   make experiments  print every figure's data (REPRO_SCALE=tiny|small|paper)
#   make campaign     the same experiments as a cached, resumable campaign
#                     (artifacts in results/; re-runs skip fingerprint hits)
#   make figures      render every figure as SVG into figures/
#   make outputs      the canonical test_output.txt / bench_output.txt pair
#   make profile      run fig3 under the event-loop profiler
#   make bench-micro  hot-path events/sec vs the committed BENCH_micro.json
#   make mem          build both 10^6-node namespaces under the 2 GB RSS budget
#   make shard-check  sharded engine fingerprints bit-identical to serial
#   make serve-smoke  live 5-peer UDS cluster + AIMD client (capacity.json)
#   make det-lint     determinism/shard-safety AST lint (python -m repro lint)
#   make typecheck    mypy strict gate over sim/, net/, core/, tools/

PYTHON ?= python
PROFILE_FIGS ?= fig3

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

lint:
	$(PYTHON) -m ruff check src/ tests/ benchmarks/

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

campaign:
	$(PYTHON) -m repro run --out results

figures:
	$(PYTHON) -m repro.viz.figures --out figures

profile:
	$(PYTHON) -m repro profile $(PROFILE_FIGS)

bench-micro:
	$(PYTHON) -m repro bench-micro --out bench_micro.json --check BENCH_micro.json

mem:
	$(PYTHON) -m repro mem-smoke

shard-check:
	$(PYTHON) -m repro shard-check --shards 1,2,4

serve-smoke:
	$(PYTHON) -m repro serve --servers 5 --duration 10 \
		--drive adaptive --out capacity.json

det-lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src

typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "mypy not installed; skipping (CI runs the gate)"

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

.PHONY: install lint test bench experiments campaign figures outputs profile bench-micro mem shard-check serve-smoke det-lint typecheck
