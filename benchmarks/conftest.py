"""Benchmark-suite configuration.

Every benchmark runs a full scaled-down experiment exactly once
(``benchmark.pedantic(..., rounds=1, iterations=1)``) -- the quantity
being benchmarked is a whole simulation campaign, not a microsecond
kernel -- and then asserts the paper's qualitative shapes on the
result.  Select the campaign size with ``REPRO_SCALE``
(tiny | small | paper; default tiny).
"""

import pytest

from repro.experiments.common import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def run_once(benchmark, fn, **kwargs):
    """Run ``fn(**kwargs)`` once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
