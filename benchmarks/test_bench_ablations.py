"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one mechanism and compares against the full
protocol on the same workload:

* **path propagation** -- the paper claims caching the whole path (a
  mixture of near and far nodes) "performs significantly better than
  caching the query endpoints";
* **hysteresis** (creation step 4) -- booking the ideal post-transfer
  loads prevents replica thrashing, so disabling it must not *reduce*
  replica churn;
* **advertisement** -- advertising fresh replicas diverts excess
  traffic quickly; disabling it must not improve drops under a
  hot-spot.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    build,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import cuzipf_stream, unif_stream


def _run(scale, seed=1, alpha=1.25, **overrides):
    ns = make_ns(scale)
    rate = rate_for_utilization(
        0.4, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    system = build(ns, scale, preset="BCR", seed=seed, **overrides)
    run_workload(system, spec, drain=scale.drain)
    return system


@pytest.mark.benchmark(group="ablation")
def test_ablation_path_propagation(benchmark, scale):
    """Path propagation vs endpoint-only caching (paper section 2.4).

    The near+far cache mixture shortens routes.  Needs sparse
    ownership (8 nodes/server, the Fig. 9 ratio) to be visible: with
    dense ownership the structural candidate is already near every
    destination.
    """
    from repro.cluster.builder import build_system
    from repro.cluster.config import SystemConfig
    from repro.namespace.generators import balanced_tree
    from repro.workload.arrivals import WorkloadDriver

    def one(path_propagation):
        ns = balanced_tree(levels=10)
        cfg = SystemConfig.caching(
            n_servers=256, seed=1, cache_slots=12,
            path_propagation=path_propagation,
        )
        system = build_system(ns, cfg)
        rate = rate_for_utilization(0.3, 256, hops_estimate=5.0)
        WorkloadDriver(system, unif_stream(rate, 15.0, seed=1)).run()
        return system

    def campaign():
        return one(True), one(False)

    full, endpoint = run_once(benchmark, campaign)
    # path propagation shortens routes (near+far cache mixture)
    assert full.stats.mean_hops < endpoint.stats.mean_hops


@pytest.mark.benchmark(group="ablation")
def test_ablation_hysteresis(benchmark, scale):
    """Creation step 4 prevents replica thrashing."""

    def campaign():
        with_h = _run(scale, alpha=1.0)
        without_h = _run(scale, alpha=1.0, hysteresis_enabled=False)
        return with_h, without_h

    with_h, without_h = run_once(benchmark, campaign)
    created_h = with_h.stats.n_replicas_created
    created_n = without_h.stats.n_replicas_created
    # removing the hysteresis must not make replication calmer;
    # typically it thrashes (more creations for the same workload)
    assert created_n >= 0.8 * created_h
    # both still keep the system usable
    assert with_h.stats.drop_fraction < 0.1
    assert without_h.stats.drop_fraction < 0.15


@pytest.mark.benchmark(group="ablation")
def test_ablation_advertisement(benchmark, scale):
    """Advertising fresh replicas diverts excess traffic quickly."""

    def campaign():
        with_a = _run(scale, alpha=1.5)
        without_a = _run(scale, alpha=1.5, advertisement_enabled=False)
        return with_a, without_a

    with_a, without_a = run_once(benchmark, campaign)
    # without advertisement, hot-spot traffic cannot find new replicas,
    # so drops must not be better than with advertisement (tolerance
    # for stochastic noise)
    assert (
        with_a.stats.drop_fraction
        <= without_a.stats.drop_fraction + 0.02
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_replication_under_uniform_load(benchmark, scale):
    """Even uniform demand needs replication on a hierarchy (section 2.3):
    static tree topology concentrates routing load near the top."""

    def campaign():
        ns = make_ns(scale)
        rate = rate_for_utilization(
            0.4, scale.n_servers, hops_estimate=scale.hops_estimate
        )
        duration = scale.warmup + scale.n_phases * scale.phase
        spec = unif_stream(rate, duration, seed=2)
        bcr = build(ns, scale, preset="BCR", seed=2)
        run_workload(bcr, spec, drain=scale.drain)
        return bcr

    bcr = run_once(benchmark, campaign)
    # hierarchical bottleneck: replicas created even under uniform load
    assert bcr.stats.n_replicas_created > 0
    # and they concentrate strictly above the leaves
    levels = bcr.stats.level_replicas
    peak = levels.index(max(levels))
    assert peak < len(levels) - 1


@pytest.mark.benchmark(group="ablation")
def test_ablation_high_water_threshold(benchmark, scale):
    """l_high is the aggressiveness dial (section 3.1: 'a measure of
    the load-imbalance we are willing to tolerate'): lowering it buys
    fewer drops with more replication; raising it does the reverse."""
    from repro.experiments.sweeps import sweep

    def campaign():
        return sweep("l_high", [0.5, 0.9], scale=scale,
                     utilization=0.4, alpha=1.0, seed=1)

    results = run_once(benchmark, campaign)
    aggressive, lazy = results[0.5], results[0.9]
    assert aggressive["replicas_created"] > lazy["replicas_created"]
    assert aggressive["drop_fraction"] <= lazy["drop_fraction"] + 0.01


@pytest.mark.benchmark(group="ablation")
def test_ablation_network_jitter(benchmark, scale):
    """The paper uses constant network latency and does not model
    contention; the protocol's conclusions should be robust to latency
    variance.  Adding exponential jitter (mean = 40% of the base delay)
    must not change who wins or collapse the system."""

    def campaign():
        steady = _run(scale, alpha=1.25)
        jittery = _run(scale, alpha=1.25, net_jitter=0.01)
        return steady, jittery

    steady, jittery = run_once(benchmark, campaign)
    # same ballpark drop rate; latency strictly higher with jitter
    assert jittery.stats.drop_fraction < steady.stats.drop_fraction + 0.05
    assert jittery.stats.latency.mean > steady.stats.latency.mean
    # replication still does its job under jitter
    assert jittery.stats.n_replicas_created > 0
