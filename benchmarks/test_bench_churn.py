"""Section 4.4 benchmark: digests vs oracle under replica churn.

Paper claim asserted: with low replication factors and repeated
high-order hot-spot shifts (many replica creations AND deletions),
inverse-mapping digests keep routing accuracy "within the optimal
range" -- close to an oracle that filters maps with perfectly accurate
information.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.churn_digests import run_churn


@pytest.mark.benchmark(group="churn")
def test_churn_digest_accuracy(benchmark, scale):
    results = run_once(benchmark, run_churn, scale=scale, seed=1)

    assert set(results) == {0.125, 0.25, 0.5}
    for rfact, per_mode in results.items():
        assert set(per_mode) == {"digests", "no-digests", "oracle"}

        dig = per_mode["digests"]["stale_hop_rate"]
        orc = per_mode["oracle"]["stale_hop_rate"]
        # digests approximate the oracle's accuracy
        assert dig <= max(2.0 * orc, orc + 0.02), (rfact, dig, orc)

        # queries keep completing under churn in every mode
        for mode, summary in per_mode.items():
            injected = summary["injected"]
            completed = summary["completed"]
            assert completed > 0.8 * injected, (rfact, mode)

    # at the most churn-heavy setting, digest filtering beats having
    # no inverse-mapping information at all
    heavy = results[0.125]
    assert (
        heavy["digests"]["stale_hop_rate"]
        <= heavy["no-digests"]["stale_hop_rate"] + 0.02
    )
