"""Fig. 3 benchmark: dropped queries over time under shifting hot-spots.

Paper shapes asserted:
* overall drops stay bounded even at the heaviest skew (the paper's
  worst case is ~2.5% with four rapid uzipf1.5 re-rankings; we allow a
  generous margin at reduced scale),
* drop spikes decay -- the final second of each Zipf phase drops less
  than the phase's peak second,
* the uniform stream's drops concentrate in the warm-up (hierarchical
  stabilisation), not the steady state.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig3_drops import reshuffle_times, run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_drops_over_time(benchmark, scale):
    results = run_once(benchmark, run_fig3, scale=scale, seed=1)

    assert set(results) == {
        "unif", "uzipf0.75", "uzipf1.00", "uzipf1.25", "uzipf1.50"
    }

    # bounded overall drops, worst case uzipf1.50
    for name, series in results.items():
        total_fraction = sum(series) / max(1, len(series))
        assert total_fraction < 0.15, (name, total_fraction)

    # spikes decay within each Zipf phase of the heaviest stream
    heavy = results["uzipf1.50"]
    times = reshuffle_times(scale, 3)
    decayed = 0
    for t in times:
        start = int(t)
        end = min(len(heavy), start + int(scale.phase))
        if end - start < 3:
            continue
        peak = max(heavy[start:end])
        tail = heavy[end - 1]
        if peak == 0 or tail <= 0.5 * peak:
            decayed += 1
    assert decayed >= max(1, len(times) - 1)

    # uniform stream: steady-state drops no worse than warm-up
    unif = results["unif"]
    w = int(scale.warmup) + 1
    warm = sum(unif[:w])
    steady = sum(unif[-w:])
    assert steady <= warm + 0.02 * w
