"""Fig. 4 benchmark: replicas created over time on the N_C namespace.

Paper shapes asserted:
* the system reacts to overload by creating replicas (non-zero series
  for skewed streams),
* creations under skew spike after popularity reshuffles,
* the per-second creation fraction stays small relative to the query
  rate (replication is lightweight: the paper's Fig. 4 y-axis tops out
  at a few percent).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig4_replicas import run_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_replica_creation_over_time(benchmark, scale):
    results = run_once(benchmark, run_fig4, scale=scale, seed=1)

    assert len(results) == 5
    for name, series in results.items():
        assert all(v >= 0.0 for v in series)
        # lightweight: creations/s stay well below the query rate
        assert max(series, default=0.0) < 0.2, name

    # heavy skew must trigger replication
    heavy = results["uzipf1.50"]
    assert sum(heavy) > 0.0

    # creations under heavy skew continue after the warm-up: the
    # reshuffles keep generating new hot-spots that must be re-replicated
    w = int(scale.warmup) + 4
    assert sum(heavy[w:]) > 0.0
