"""Fig. 5 benchmark: B vs BC vs BCR drop fractions across ten streams.

Paper shapes asserted:
* replication (BCR) beats both B and BC on every heavily skewed stream,
  by a large factor at the heaviest skew,
* drops grow with Zipf order for the base system,
* uniform streams are nearly drop-free for BCR,
* without replication the heaviest skew drops a substantial fraction
  ("barely usable" at paper scale).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig5_ablation import drop_table, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_system_comparison(benchmark, scale):
    results = run_once(benchmark, run_fig5, scale=scale, seed=1)
    table = drop_table(results)

    assert set(table) == {"B", "BC", "BCR"}
    for preset in table:
        assert len(table[preset]) == 10

    for suffix in ("S", "C"):
        for alpha in ("1.25", "1.50"):
            stream = f"uzipf{suffix}{alpha}"
            assert table["BCR"][stream] <= table["B"][stream], stream
            assert table["BCR"][stream] <= table["BC"][stream], stream
        heavy = f"uzipf{suffix}1.50"
        # decisive win at the heaviest skew
        assert table["BCR"][heavy] < 0.5 * table["B"][heavy], heavy

    # base system: drops grow with skew on N_S
    b = table["B"]
    assert (
        b["uzipfS0.75"] <= b["uzipfS1.00"] <= b["uzipfS1.25"]
        <= b["uzipfS1.50"]
    )
    # the base system suffers substantially under heavy skew
    assert b["uzipfS1.50"] > 0.05

    # uniform streams nearly drop-free under full protocol
    assert table["BCR"]["unifS"] < 0.02
    assert table["BCR"]["unifC"] < 0.02
