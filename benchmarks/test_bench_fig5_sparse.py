"""Fig. 5 benchmark at the paper's ownership ratio (8 nodes/server).

With thin per-server ownership the paper's two sharpest claims appear:

* the base system drops a large fraction of queries from the
  hierarchical bottleneck alone ("barely usable"),
* caching *aggravates* N_S -- cached top-of-tree pointers concentrate
  traffic on those nodes' owners -- while replication rescues both.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig5_ablation import run_fig5_sparse


@pytest.mark.benchmark(group="fig5")
def test_fig5_sparse_ownership(benchmark):
    results = run_once(benchmark, run_fig5_sparse, seed=1)

    assert set(results) == {"B", "BC", "BCR"}
    for preset in results:
        assert set(results[preset]) == {"unifS", "uzipfS1.25"}

    # the base system suffers substantially even under uniform load
    assert results["B"]["unifS"] > 0.1

    # caching alone does NOT rescue N_S (the paper reports aggravation;
    # we assert no material improvement)
    assert results["BC"]["unifS"] > 0.8 * results["B"]["unifS"]

    # replication rescues decisively on every stream (>=~3x fewer drops)
    for stream in ("unifS", "uzipfS1.25"):
        assert results["BCR"][stream] < 0.35 * results["B"][stream], stream
        assert results["BCR"][stream] < 0.35 * results["BC"][stream], stream
    assert results["BCR"]["unifS"] < 0.05
