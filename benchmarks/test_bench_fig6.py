"""Fig. 6 benchmark: utilisation and load balance over time.

Paper shapes asserted:
* the measured mean load tracks the utilisation target and orders
  correctly across the three rates,
* the per-second maximum exceeds the mean but is transient: smoothing
  over the 11-second-equivalent window pulls the maximum toward the
  mean (right panel),
* after the initial stabilisation the maximum tends back below the
  high-water threshold between reshuffles.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig6_load import run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_load_balance(benchmark, scale):
    results = run_once(benchmark, run_fig6, scale=scale, seed=1)

    labels = list(results)
    assert labels == ["util0.08", "util0.2", "util0.4"]

    steady_means = {}
    for label, series in results.items():
        mean, mx, smoothed = (
            series["mean"], series["max"], series["smoothed_max"]
        )
        skip = int(scale.warmup) + 1
        steady = mean[skip:]
        steady_means[label] = sum(steady) / len(steady)
        # max dominates mean pointwise
        assert all(m <= M + 1e-9 for m, M in zip(mean, mx))
        # smoothing reduces the peak (transient maxima)
        assert max(smoothed) <= max(mx) + 1e-9
        assert max(smoothed) < 0.95 * max(mx) + 0.05

    # mean load ordered by target and in a sane band around it
    assert (
        steady_means["util0.08"] < steady_means["util0.2"]
        < steady_means["util0.4"]
    )
    assert 0.02 < steady_means["util0.08"] < 0.2
    assert 0.2 < steady_means["util0.4"] < 0.6

    # highly-loaded servers are transient: even at the highest rate the
    # per-second max regularly dips below the high-water threshold, and
    # the smoothed max stays clearly below saturation
    # (the per-second max is an extreme value over n_servers samples,
    # so the dip frequency shrinks as the fleet grows; require repeated
    # dips rather than a fixed fraction)
    mx = results["util0.4"]["max"]
    skip = int(scale.warmup) + 1
    below = sum(1 for v in mx[skip:] if v < 0.7)
    assert below >= max(3, len(mx[skip:]) // 10)
    smoothed = results["util0.4"]["smoothed_max"][skip:]
    assert sum(smoothed) / len(smoothed) < 0.9
