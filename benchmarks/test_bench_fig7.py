"""Fig. 7 benchmark: average replicas created per namespace level.

Paper shapes asserted:
* the per-level average peaks strictly below the root and strictly
  above the leaves -- level-1/2 pointers live in every cache, so the
  very top is bypassed, while deep levels have too many nodes and too
  little per-node traffic to replicate much (the paper's peak sits at
  level 2 with 26-slot caches; the peak level shifts with the
  cache-to-level-size ratio at reduced scale),
* more load creates more replicas (higher rate dominates level-wise),
* the deepest levels average near zero.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig7_levels import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_replicas_per_level(benchmark, scale):
    results = run_once(
        benchmark, run_fig7, scale=scale, utilizations=(0.2, 0.4), seed=1
    )

    assert set(results) == {"unif@0.2", "uzipf@0.2", "unif@0.4", "uzipf@0.4"}
    depth = len(results["unif@0.4"]) - 1

    busy = results["unif@0.4"]
    assert sum(busy) > 0.0
    peak_level = busy.index(max(busy))
    # hierarchical bottleneck: peak strictly between root and leaves
    assert 0 < peak_level < depth
    # the deepest level barely replicates (per-node average)
    assert busy[depth] <= 0.25 * max(busy)

    # higher load -> at least as many replicas in total
    assert sum(results["unif@0.4"]) >= sum(results["unif@0.2"])
    assert sum(results["uzipf@0.4"]) >= sum(results["uzipf@0.2"])

    # averages are non-negative everywhere
    for series in results.values():
        assert all(v >= 0.0 for v in series)
