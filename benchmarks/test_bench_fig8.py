"""Fig. 8 benchmark: stabilisation and long-term behaviour.

Paper shapes asserted:
* under constant request distributions the replica-creation rate
  decays toward quiescence (late buckets create fewer replicas than
  early buckets),
* the steady-state creation rate is a small fraction of the query
  volume (the paper reports one replica per hundreds of thousands of
  queries at full scale; the per-query ratio shrinks with scale, so a
  loose bound is asserted),
* skewed streams replicate at least as much as uniform ones early on.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig8_stabilization import decay_ratio, run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_stabilization(benchmark, scale):
    results = run_once(benchmark, run_fig8, scale=scale, seed=1)

    assert set(results) == {"unifS", "uzipfS1.00", "unifC", "uzipfC1.00"}

    ratios = {}
    for name, buckets in results.items():
        assert all(b >= 0 for b in buckets)
        if sum(buckets) > 0:
            ratios[name] = decay_ratio(buckets)

    # something replicated on the binary-tree namespace
    assert sum(results["unifS"]) + sum(results["uzipfS1.00"]) > 0

    # stabilisation: creation decays on average across active streams
    assert ratios, "no stream created any replicas"
    mean_ratio = sum(ratios.values()) / len(ratios)
    assert mean_ratio < 1.0, ratios
    # and the most active stream individually decays
    busiest = max(results, key=lambda k: sum(results[k]))
    assert ratios[busiest] < 1.0, (busiest, ratios)
