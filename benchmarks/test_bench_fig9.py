"""Fig. 9 benchmark: scalability with system size.

Paper shapes asserted, across a doubling sweep of server counts with
nodes-per-server, utilisation, and cache/Rmap scaling held to the
paper's recipe:

* query latency grows far slower than system size (logarithmic-ish:
  bounded by a constant factor per doubling),
* replication events grow with system size (roughly linearly),
* dropped queries do not explode super-linearly relative to the query
  volume (drops per injected query stay bounded).
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig9_scalability import run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_scalability(benchmark, scale):
    results = run_once(benchmark, run_fig9, scale=scale, seed=1)

    sizes = list(results)
    assert len(sizes) >= 3
    growth = sizes[-1] / sizes[0]

    # latency scales logarithmically-ish, not linearly
    lat = [results[n]["mean_latency"] for n in sizes]
    assert all(v > 0 for v in lat)
    assert lat[-1] / lat[0] < growth / 2
    # hop counts grow by at most ~1 per doubling plus slack
    hops = [results[n]["mean_hops"] for n in sizes]
    assert hops[-1] - hops[0] <= math.log2(growth) + 2.0

    # replication events grow with size
    repl = [results[n]["replicas_created"] for n in sizes]
    assert repl[-1] >= repl[0]
    assert repl[-1] > 0

    # drops grow with size (lambda is proportional to size while the
    # per-node hot-spot concentrates on fixed-capacity servers -- the
    # paper's "approaches linearity"), but stay bounded: small sizes
    # nearly drop-free, the largest sizes still serve the majority
    half = len(sizes) // 2
    for n in sizes[: half + 1]:
        frac = results[n]["drop_fraction_steady"]
        assert frac < 0.2, (n, frac)
    for n in sizes:
        frac = results[n]["drop_fraction_steady"]
        assert frac < 0.45, (n, frac)
