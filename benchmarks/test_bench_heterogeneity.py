"""Heterogeneity benchmark (paper section 5's closing claim).

Asserted shapes with half the servers 2.5x slower:
* without adaptive replication the heterogeneous system degrades badly,
* the adaptive protocol recovers most of the loss (locally normalized
  load metric: slow servers shed work with no global speed knowledge),
* hosting shifts away from slow servers (their hosted share drops
  below their population share).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.heterogeneity import run_heterogeneity


@pytest.mark.benchmark(group="heterogeneity")
def test_heterogeneity_adaptation(benchmark, scale):
    results = run_once(benchmark, run_heterogeneity, scale=scale, seed=1)

    homo = results["homogeneous-BCR"]
    bc = results["heterogeneous-BC"]
    bcr = results["heterogeneous-BCR"]

    # heterogeneity hurts the non-adaptive system badly
    assert bc["drop_fraction"] > 0.05
    # the adaptive protocol recovers most of it
    assert bcr["drop_fraction"] < 0.5 * bc["drop_fraction"]
    # but cannot beat a homogeneous fleet
    assert bcr["drop_fraction"] >= homo["drop_fraction"] - 0.01

    # replication happened, and it moved hosting off the slow half
    assert bcr["replicas_created"] > 0
    assert bcr["slow_hosted_share"] < 0.45  # static share is 0.5

    # latency follows the same ordering
    assert bcr["mean_latency"] < bc["mean_latency"]
