"""Micro-benchmarks of the simulator's hot kernels.

Unlike the campaign benchmarks (one full experiment per figure), these
time the inner loops a simulation spends its life in -- useful for
tracking performance regressions of the library itself:

* one routing decision (the per-hop cost),
* namespace distance via ancestor-chain prefix scan,
* Bloom digest snapshot tests (the digest-shortcut probe),
* event-engine scheduling throughput,
* Zipf destination sampling,
* a short end-to-end run under the NullSink (collection-free hot path).
"""

import random

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.core import routing
from repro.filters.bloom import BloomFilter
from repro.namespace.generators import balanced_tree
from repro.sim.engine import Engine
from repro.sim.rng import ZipfSampler


@pytest.fixture(scope="module")
def warm_system():
    """A mid-size system with caches and replicas populated."""
    from repro.workload.arrivals import WorkloadDriver
    from repro.workload.streams import cuzipf_stream

    ns = balanced_tree(levels=10)
    cfg = SystemConfig.replicated(n_servers=64, seed=3, cache_slots=16,
                                  digest_probe_limit=2)
    system = build_system(ns, cfg)
    spec = cuzipf_stream(rate=800.0, alpha=1.0, warmup=3, phase=3,
                         n_phases=2, seed=3)
    WorkloadDriver(system, spec).run()
    return system


@pytest.mark.benchmark(group="micro")
def test_micro_route_decision(benchmark, warm_system):
    """Cost of one greedy routing step on a warmed-up peer."""
    peer = warm_system.peers[7]
    rng = random.Random(5)
    n = len(warm_system.ns)
    dests = [rng.randrange(n) for _ in range(256)]
    it = iter(range(1 << 30))

    def step():
        return routing.decide(peer, dests[next(it) % 256])

    result = benchmark(step)
    assert result.action in (routing.RouteAction.FORWARD,
                             routing.RouteAction.RESOLVED)


@pytest.mark.benchmark(group="micro")
def test_micro_namespace_distance(benchmark):
    ns = balanced_tree(levels=14)  # the paper's full N_S
    rng = random.Random(1)
    pairs = [(rng.randrange(len(ns)), rng.randrange(len(ns)))
             for _ in range(512)]
    it = iter(range(1 << 30))

    def dist():
        a, b = pairs[next(it) % 512]
        return ns.distance(a, b)

    result = benchmark(dist)
    assert result >= 0


@pytest.mark.benchmark(group="micro")
def test_micro_bloom_snapshot_test(benchmark):
    bf = BloomFilter.with_capacity(128, fp_rate=0.02)
    bf.update(range(0, 256, 2))
    snap = bf.snapshot()
    it = iter(range(1 << 30))

    def probe():
        return bf.test_snapshot(snap, next(it) % 256)

    benchmark(probe)


@pytest.mark.benchmark(group="micro")
def test_micro_bloom_add(benchmark):
    bf = BloomFilter.with_capacity(100_000, fp_rate=0.02)
    it = iter(range(1 << 30))

    def add():
        bf.add(next(it))

    benchmark(add)


@pytest.mark.benchmark(group="micro")
def test_micro_engine_schedule_dispatch(benchmark):
    """Schedule + dispatch one no-op event (the engine's unit cost)."""
    eng = Engine()

    def cycle():
        eng.schedule(eng.now + 0.001, _noop)
        eng.run(max_events=1)

    benchmark(cycle)


def _noop() -> None:
    pass


@pytest.mark.benchmark(group="micro")
def test_micro_run_null_sink(benchmark):
    """A short end-to-end burst with stats collection disabled.

    Tracks the floor cost of the message pipeline itself: every
    component records through the StatsSink protocol, and with the
    NullSink those calls must stay cheap enough that a hot benchmark
    run is not paying for bookkeeping nobody reads.
    """
    from repro.sim.stats import NullSink
    from repro.workload.arrivals import WorkloadDriver
    from repro.workload.streams import uzipf_stream

    ns = balanced_tree(levels=8)
    cfg = SystemConfig.replicated(n_servers=16, seed=9, cache_slots=16)

    def burst():
        system = build_system(ns, cfg, stats=NullSink())
        spec = uzipf_stream(rate=400.0, duration=2.0, alpha=1.0, seed=9)
        WorkloadDriver(system, spec).run()
        return sum(p.n_processed for p in system.peers)

    processed = benchmark(burst)
    assert processed > 0


@pytest.mark.benchmark(group="micro")
def test_micro_zipf_sample(benchmark):
    z = ZipfSampler(32767, alpha=1.0)  # paper-size namespace
    rng = random.Random(2)

    def sample():
        return z.sample(rng)

    result = benchmark(sample)
    assert 0 <= result < 32767
