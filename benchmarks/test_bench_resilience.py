"""Resilience benchmark: fail a quarter of the servers mid-run.

Paper claims asserted (sections 1, 2.4, 3.1):
* the failure epoch hurts but the system keeps serving a share of
  queries (caches and replicas route around dead servers),
* after recovery the completion rate returns near the pre-failure
  level,
* the protocol reacts to the post-failure load landscape by creating
  replicas again.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.resilience import run_resilience


@pytest.mark.benchmark(group="resilience")
def test_resilience_fail_and_recover(benchmark, scale):
    r = run_once(benchmark, run_resilience, scale=scale, seed=1)

    assert r["n_failed"] >= 1
    # healthy before
    assert r["completion_before"] > 0.9
    # hurt during, but not dead
    assert r["completion_during"] < r["completion_before"]
    assert r["completion_during"] > 0.05
    # healed after recovery
    assert r["completion_after"] > 0.9
    # black holes are bounded by the failed ownership share
    assert r["black_hole_nodes"] >= 0
