"""Static vs adaptive replication benchmark (section 2.3's argument).

Asserted shapes:
* during the uniform warm-up, static top-level replication holds its
  own (the hierarchical bottleneck is a static phenomenon),
* once hot-spots start shifting, the adaptive protocol clearly beats
  static-only replication,
* combining both is no worse than adaptive alone (static replicas are
  a strict superset of routing state).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.static_vs_adaptive import run_static_vs_adaptive


@pytest.mark.benchmark(group="static-vs-adaptive")
def test_static_vs_adaptive(benchmark, scale):
    results = run_once(benchmark, run_static_vs_adaptive, scale=scale, seed=1)

    assert set(results) == {"static", "adaptive", "both"}

    static = results["static"]
    adaptive = results["adaptive"]
    both = results["both"]

    # warm-up (uniform): static holds its own
    assert static["drop_warmup"] <= adaptive["drop_warmup"] + 0.02

    # shifting hot-spots: adaptive wins decisively
    assert adaptive["drop_shifting"] < 0.6 * static["drop_shifting"]

    # only the adaptive modes create replicas during the run
    assert static["replicas_created"] == 0
    assert adaptive["replicas_created"] > 0

    # static + adaptive combined is not materially worse than adaptive
    assert both["drop_shifting"] <= adaptive["drop_shifting"] + 0.03
