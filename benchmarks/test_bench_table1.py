"""Table 1 benchmark: live-system state audit.

Runs a workload until caches are warm and replicas exist, then audits
every server's per-node state against the paper's Table 1 matrix
(owned / replicated / neighboring / cached x name / map / data / meta /
context).  The audit itself raises on any deviation; the assertions
check the population makes sense.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table1_state import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_state_audit(benchmark, scale):
    counts = run_once(benchmark, run_table1, scale=scale, seed=1)

    n_nodes = 2 ** (scale.ns_levels + 1) - 1
    # every node owned exactly once across the system
    assert counts["owned"] == n_nodes
    # a warmed-up replicated system has replicas and cached pointers
    assert counts["replicated"] > 0
    assert counts["cached"] > 0
    # neighbor contexts outnumber owned nodes (every owned node pins
    # its neighbors; overlap only within a server)
    assert counts["neighboring"] > 0
    assert counts["none"] == 0
