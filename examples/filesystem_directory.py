#!/usr/bin/env python
"""A distributed file-system directory on TerraDir.

Builds a namespace from explicit file paths (the way TerraDir models a
file-sharing utility: one node per file, meta-data as attributes),
plus a large synthetic Coda-like volume, then serves lookups against
both.  Demonstrates:

* building namespaces from paths (``Namespace.from_names``),
* name-based lookups through the public API,
* owner-side meta-data updates with lazy replica convergence,
* cache/digest introspection after a run.

    python examples/filesystem_directory.py
"""

from repro import (
    SystemConfig,
    WorkloadDriver,
    build_system,
    coda_like_tree,
)
from repro.namespace.tree import Namespace
from repro.workload.streams import uzipf_stream


def tiny_volume() -> Namespace:
    """A hand-written project tree."""
    return Namespace.from_names(
        [
            "/src/core/engine.py",
            "/src/core/routing.py",
            "/src/net/transport.py",
            "/docs/design.md",
            "/docs/api/reference.md",
            "/release/v1.0/archive.tar.gz",
        ]
    )


def main() -> None:
    # --- explicit paths --------------------------------------------------
    ns = tiny_volume()
    cfg = SystemConfig.replicated(n_servers=4, seed=1, digest_probe_limit=1)
    system = build_system(ns, cfg)

    target = "/release/v1.0/archive.tar.gz"
    print(f"{len(ns)} nodes; looking up {target!r} from every server ...")
    for src in range(4):
        system.lookup_name(src, target)
    system.run_until(2.0)
    print(f"  completions: {system.stats.n_completed}, "
          f"mean hops {system.stats.mean_hops:.2f}")

    # owner-side meta-data update (version propagates lazily to replicas)
    node = ns.id_of(target)
    owner = system.peers[system.owner[node]]
    version = owner.bump_meta(node)
    print(f"  owner server {owner.sid} bumped meta-data of {target!r} "
          f"to v{version}\n")

    # --- Coda-like volume under skewed access -----------------------------
    volume = coda_like_tree(n_nodes=3000, seed=1993)
    cfg = SystemConfig.replicated(
        n_servers=24, seed=5, cache_slots=12, digest_probe_limit=1
    )
    system = build_system(volume, cfg)
    rate = 0.4 * cfg.n_servers / (0.005 * 3.5)
    print(f"synthetic file server: {len(volume)} nodes "
          f"({volume.n_leaves} files), depth {volume.max_depth}; "
          f"running Zipf(1.25) lookups at {rate:.0f}/s ...")
    WorkloadDriver(system, uzipf_stream(rate, 15.0, alpha=1.25, seed=2)).run()

    s = system.stats
    print(f"  completed {s.n_completed}/{s.n_injected} "
          f"(drop {100 * s.drop_fraction:.2f}%), "
          f"mean latency {s.latency.mean * 1000:.0f} ms, "
          f"mean hops {s.mean_hops:.2f}")
    print(f"  replicas created: {s.n_replicas_created}; "
          f"live: {system.total_replicas()}")
    hits = sum(p.cache.hits for p in system.peers)
    misses = sum(p.cache.misses for p in system.peers)
    print(f"  cache hit rate: {hits / (hits + misses):.2%}" if hits + misses
          else "  cache unused")
    digests = sum(len(p.digest_dir) for p in system.peers) / len(system.peers)
    print(f"  digest snapshots known per server (avg): {digests:.1f}")


if __name__ == "__main__":
    main()
