#!/usr/bin/env python
"""Flash crowd: a sudden, extreme hot-spot and how replication absorbs it.

Scenario: a P2P directory serves a software archive.  At t=8s a release
announcement makes one deep subtree extremely popular (Zipf 1.5 over a
fresh random ranking).  We run the same scenario twice -- with and
without the adaptive replication protocol -- and compare drops, the
paper's Fig. 3/Fig. 5 story in miniature.

    python examples/flash_crowd.py
"""

from repro import (
    SystemConfig,
    WorkloadDriver,
    balanced_tree,
    build_system,
)
from repro.experiments.report import sparkline
from repro.workload.streams import flash_crowd_stream


def run(replication: bool):
    ns = balanced_tree(levels=10)
    if replication:
        cfg = SystemConfig.replicated(
            n_servers=32, seed=3, cache_slots=12, digest_probe_limit=1
        )
    else:
        cfg = SystemConfig.caching(n_servers=32, seed=3, cache_slots=12)
    system = build_system(ns, cfg)
    rate = 0.4 * cfg.n_servers / (0.005 * 3.5)
    # 8 s of normal traffic, then the announcement hits (alpha=1.5 over
    # a fresh random ranking); surge=1.0 keeps offered load flat so the
    # comparison isolates the *concentration* effect
    spec = flash_crowd_stream(rate, normal=8.0, crowd=12.0, alpha=1.5,
                              seed=99)
    WorkloadDriver(system, spec).run()
    return system, spec


def main() -> None:
    for label, repl in (("caching only (BC)", False),
                        ("adaptive replication (BCR)", True)):
        system, spec = run(repl)
        n = int(spec.duration) + 1
        drops = system.stats.drops.totals(n)
        print(f"=== {label} ===")
        print(f"  drops/s   {sparkline(drops)}")
        print(f"  dropped   {system.stats.n_dropped} of "
              f"{system.stats.n_injected} "
              f"({100 * system.stats.drop_fraction:.2f}%)")
        print(f"  replicas  {system.stats.n_replicas_created} created")
        crowd_drops = sum(drops[8:])
        print(f"  drops during the crowd: {crowd_drops:.0f}\n")
    print("The replicated system sheds the hot subtree onto idle servers\n"
          "within a couple of load windows; the cache-only system keeps\n"
          "funnelling the crowd into the hot nodes' owners.")


if __name__ == "__main__":
    main()
