#!/usr/bin/env python
"""Graph-rooted namespaces: cross links as extra routing context.

The paper's data model allows arbitrary graph-rooted topologies (it
evaluates trees). This example builds a "mesh of trees" -- a balanced
tree whose level-2 nodes are cross-linked -- and shows that the extra
edges ride along in routing contexts and replicas, shortening routes
without touching the tree-based progress guarantee.

    python examples/graph_topology.py
"""

from repro import SystemConfig, WorkloadDriver, balanced_tree, build_system
from repro.namespace.graph import mesh_of_trees
from repro.workload.streams import unif_stream


def run(ns, label):
    cfg = SystemConfig.replicated(n_servers=16, seed=9, cache_slots=10,
                                  digest_probe_limit=1)
    system = build_system(ns, cfg)
    rate = 0.35 * 16 / (0.005 * 3.5)
    WorkloadDriver(system, unif_stream(rate, 12.0, seed=4)).run()
    s = system.stats
    print(f"  {label:<22} hops {s.mean_hops:5.2f}   "
          f"latency {1000 * s.latency.mean:6.1f} ms   "
          f"drop {100 * s.drop_fraction:.2f}%")
    return system


def main() -> None:
    tree = balanced_tree(levels=8)
    graph = mesh_of_trees(levels=8, link_depth=2)
    print(f"tree: {len(tree)} nodes;  graph adds "
          f"{graph.n_cross_links} cross links at level 2\n")

    print("uniform lookups, identical workload seed:")
    run(tree, "plain tree")
    system = run(graph, "mesh of trees")

    # cross links live in routing contexts, so replicas carry them too
    ring = graph.nodes_at_depth(2)
    v = ring[0]
    owner = system.peers[system.owner[v]]
    cross = [u for u in graph.cross.get(v, ())]
    print(f"\nnode {graph.name_of(v)!r} context includes cross links to:")
    for u in cross:
        print(f"  {graph.name_of(u)!r} "
              f"(tree distance {graph.distance(v, u)}, graph distance "
              f"{graph.graph_distance(v, u)})")

    print("\nRouting still minimises spanning-tree distance (progress"
          "\nguarantee intact); the cross links only add shortcut"
          "\ncandidates -- graph distance <= tree distance everywhere.")


if __name__ == "__main__":
    main()
