#!/usr/bin/env python
"""Quickstart: build a TerraDir deployment, run a skewed workload,
inspect the outcome.

Runs in a few seconds:

    python examples/quickstart.py
"""

from repro import (
    SystemConfig,
    WorkloadDriver,
    balanced_tree,
    build_system,
    cuzipf_stream,
)
from repro.analysis.summary import run_summary
from repro.experiments.report import format_summary, sparkline


def main() -> None:
    # a 2047-node hierarchical namespace on 32 servers
    ns = balanced_tree(levels=10)
    cfg = SystemConfig.replicated(
        n_servers=32, seed=7, cache_slots=12, digest_probe_limit=1
    )
    system = build_system(ns, cfg)

    # one lookup by name, end to end
    root_neighbourhood = ns.name_of(ns.children[0][0])
    print(f"looking up {root_neighbourhood!r} from server 5 ...")
    system.lookup_name(5, root_neighbourhood)
    system.run_until(1.0)
    print(f"  completed={system.stats.n_completed} "
          f"latency={system.stats.latency.mean * 1000:.1f} ms\n")

    # a Zipf(1.0) workload with two instantaneous hot-spot shifts
    rate = 0.4 * cfg.n_servers / (0.005 * 3.5)  # ~40% mean utilisation
    spec = cuzipf_stream(rate=rate, alpha=1.0, warmup=5, phase=5,
                         n_phases=2, seed=42)
    print(f"running {spec.name}: {rate:.0f} queries/s for "
          f"{spec.duration:.0f} s with hot-spot shifts at 5 s and 10 s ...")
    WorkloadDriver(system, spec).run()

    print(format_summary(run_summary(system), title="\nrun summary"))
    created = system.stats.replicas_created.totals(int(spec.duration) + 1)
    print(f"\nreplica creations/s: {sparkline(created)}")
    drops = system.stats.drops.totals(int(spec.duration) + 1)
    print(f"query drops/s:       {sparkline(drops)}")
    print(f"\nlive replicas: {system.total_replicas()} across "
          f"{sum(1 for p in system.peers if p.replicas)} servers")


if __name__ == "__main__":
    main()
