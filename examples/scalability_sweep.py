#!/usr/bin/env python
"""Mini scalability study (the paper's Fig. 9 at example size).

Doubles the server count across a sweep while holding utilisation and
nodes-per-server constant, and prints how latency, replication events,
and drops scale.

    python examples/scalability_sweep.py
"""


from repro.experiments.common import Scale
from repro.experiments.fig9_scalability import run_fig9

EXAMPLE = Scale(
    name="tiny", ns_levels=0, nc_nodes=0,  # unused by fig9
    n_servers=0, warmup=3.0, phase=3.0, drain=3.0,
    cache_slots=8, digest_probe_limit=1,
)


def main() -> None:
    results = run_fig9(scale=EXAMPLE, duration=9.0, seed=4)
    print(f"{'servers':>8} {'nodes':>7} {'rate/s':>8} {'hops':>6} "
          f"{'latency(ms)':>12} {'replications':>13} {'drops':>7}")
    for n, s in results.items():
        print(
            f"{n:>8} {s['nodes']:>7.0f} {s['rate']:>8.0f} "
            f"{s['mean_hops']:>6.2f} {s['mean_latency'] * 1000:>12.1f} "
            f"{s['replicas_created']:>13.0f} {s['dropped']:>7.0f}"
        )
    ns = list(results)
    lat = [results[n]["mean_latency"] for n in ns]
    print(
        "\nlatency grows by "
        f"{lat[-1] / lat[0]:.2f}x while the system grows "
        f"{ns[-1] // ns[0]}x -- logarithmic-ish, as the paper reports."
    )


if __name__ == "__main__":
    main()
