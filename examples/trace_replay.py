#!/usr/bin/env python
"""Trace-driven workloads and record/replay A/B experiments.

Demonstrates the empirical pipeline the paper used with its Coda trace:

1. build a namespace + access counts from a ``[count] /path`` listing,
2. drive lookups whose popularity follows the empirical counts,
3. record the exact query sequence, and
4. replay it against a differently configured system (replication
   disabled) for a controlled comparison on identical input.

    python examples/trace_replay.py
"""

import io
import random

from repro import SystemConfig, build_system
from repro.workload.trace import (
    EmpiricalWorkloadDriver,
    TraceRecorder,
    namespace_from_paths,
    replay_trace,
)


def synthetic_listing(n_files: int = 900, seed: int = 7) -> str:
    """A fake file-server accounting log: 'count /path' lines."""
    rng = random.Random(seed)
    lines = []
    for i in range(n_files):
        depth = rng.randint(2, 5)
        parts = [f"d{rng.randint(0, 4)}" for _ in range(depth - 1)]
        path = "/" + "/".join(parts + [f"file{i}"])
        count = int(rng.paretovariate(1.2))  # heavy-tailed popularity
        lines.append(f"{count} {path}")
    return "\n".join(lines)


def main() -> None:
    ns, counts = namespace_from_paths(io.StringIO(synthetic_listing()))
    print(f"namespace from listing: {len(ns)} nodes "
          f"({ns.n_leaves} files, depth {ns.max_depth}); "
          f"{len(counts)} nodes with access counts")

    def fresh(replication: bool):
        maker = (SystemConfig.replicated if replication
                 else SystemConfig.caching)
        cfg = maker(n_servers=16, seed=5, cache_slots=10,
                    digest_probe_limit=1)
        return build_system(ns, cfg)

    # record a trace-driven run on the full system
    system = fresh(replication=True)
    recorder = TraceRecorder(system)
    rate = 0.4 * 16 / (0.005 * 3.5)
    drv = EmpiricalWorkloadDriver(system, rate=rate, duration=15.0,
                                  weights=dict(counts), seed=11)
    drv.run()
    trace = recorder.trace
    print(f"\nrecorded {len(trace)} queries over {trace.duration:.1f} s")
    print(f"  with replication:    drop "
          f"{100 * system.stats.drop_fraction:.2f}%  "
          f"mean hops {system.stats.mean_hops:.2f}  "
          f"replicas {system.stats.n_replicas_created}")

    # replay the *identical* sequence without replication
    other = fresh(replication=False)
    replay_trace(other, trace)
    other.run_until(trace.duration + 5.0)
    print(f"  replayed, no repl.:  drop "
          f"{100 * other.stats.drop_fraction:.2f}%  "
          f"mean hops {other.stats.mean_hops:.2f}")
    print("\nSame queries, same arrival times -- the only variable is the"
          "\nreplication protocol. That is what record/replay is for.")


if __name__ == "__main__":
    main()
