"""Legacy shim so `pip install -e .` works on toolchains without PEP 517."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TerraDir hierarchical routing with adaptive soft-state replica "
        "management (IPPS 2004 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
