"""TerraDir: hierarchical P2P routing with adaptive soft-state replicas.

A full reproduction of *"Hierarchical Routing with Soft-State Replicas
in TerraDir"* (Silaghi, Gopalakrishnan, Bhattacharjee, Keleher --
IPPS 2004): the hierarchical routing protocol, path-propagating caches,
inverse-mapping Bloom digests, the adaptive replication protocol, and
the discrete-event simulation environment the paper evaluates them in.

Quickstart::

    from repro import (
        SystemConfig, build_system, balanced_tree,
        WorkloadDriver, cuzipf_stream,
    )

    ns = balanced_tree(levels=10)           # 2047-node namespace
    cfg = SystemConfig.replicated(n_servers=64, seed=7)
    system = build_system(ns, cfg)
    spec = cuzipf_stream(rate=800, alpha=1.0, warmup=5, phase=10)
    WorkloadDriver(system, spec).run()
    print(system.stats.summary())
"""

from repro.client.client import TerraDirClient
from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.cluster.failures import FailureInjector
from repro.cluster.system import System, SystemStats
from repro.core.static_replication import replicate_top_levels
from repro.filters.bloom import BloomFilter
from repro.filters.digest import Digest, DigestDirectory
from repro.namespace.generators import (
    balanced_tree,
    coda_like_tree,
    random_tree,
    university_tree,
)
from repro.namespace.tree import Namespace, NamespaceBuilder
from repro.server.peer import Peer
from repro.sim.engine import Engine
from repro.sim.stats import MultiSink, NullSink, StatsSink
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import (
    StreamSegment,
    WorkloadSpec,
    cuzipf_stream,
    unif_stream,
    uzipf_stream,
)
from repro.workload.trace import (
    EmpiricalWorkloadDriver,
    QueryTrace,
    TraceRecorder,
    namespace_from_paths,
    replay_trace,
)

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "Digest",
    "DigestDirectory",
    "EmpiricalWorkloadDriver",
    "Engine",
    "FailureInjector",
    "QueryTrace",
    "TerraDirClient",
    "TraceRecorder",
    "MultiSink",
    "Namespace",
    "NamespaceBuilder",
    "NullSink",
    "Peer",
    "StatsSink",
    "StreamSegment",
    "System",
    "SystemConfig",
    "SystemStats",
    "WorkloadDriver",
    "WorkloadSpec",
    "balanced_tree",
    "build_system",
    "coda_like_tree",
    "cuzipf_stream",
    "namespace_from_paths",
    "random_tree",
    "replay_trace",
    "replicate_top_levels",
    "unif_stream",
    "university_tree",
    "uzipf_stream",
]
