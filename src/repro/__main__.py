"""``python -m repro`` -- run experiments, campaigns, or profiles.

* ``python -m repro [fig ...]`` -- the experiment suite
  (see :mod:`repro.experiments.runner`);
* ``python -m repro run [fig ...] [--jobs N] [--resume] [--no-cache]
  [--out DIR]`` -- the same experiments as a cached, resumable campaign
  writing per-run artifacts (see :mod:`repro.experiments.campaign`);
* ``python -m repro profile <fig> [...]`` -- the same experiments under
  the event-loop profiler (see :mod:`repro.sim.profile`);
* ``python -m repro bench-micro [--out F] [--check BASELINE]`` -- the
  NullSink micro-benchmark (see :mod:`repro.experiments.bench_micro`);
* ``python -m repro mem-smoke [--nodes N] [--budget-mb MB]`` -- the
  million-node namespace build smoke under an RSS budget
  (see :mod:`repro.experiments.mem_smoke`);
* ``python -m repro shard-check [--shards 1,4]`` -- verify sharded
  windowed runs are bit-identical to the serial engine
  (see :mod:`repro.sim.shard`);
* ``python -m repro lint [paths] [--format json]`` -- determinism &
  shard-safety static analysis (see :mod:`repro.tools.detlint`);
* ``python -m repro serve [--servers N] [--transport uds|tcp]
  [--drive adaptive]`` -- host a live cluster over real sockets and
  (optionally) discover its capacity with the closed-loop AIMD client
  (see :mod:`repro.runtime.async_serve`).
"""

import sys


def main(argv) -> int:
    if argv and argv[0] == "run":
        from repro.experiments.campaign import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.sim.profile import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "bench-micro":
        from repro.experiments.bench_micro import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "mem-smoke":
        from repro.experiments.mem_smoke import main as mem_main

        return mem_main(argv[1:])
    if argv and argv[0] == "shard-check":
        from repro.sim.shard import main as shard_main

        return shard_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.tools.detlint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.runtime.async_serve import main as serve_main

        return serve_main(argv[1:])
    from repro.experiments.runner import main as runner_main

    runner_main(argv)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
