"""``python -m repro`` -- run the experiment suite (see experiments.runner)."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    main(sys.argv[1:])
