"""Post-run analysis: series shaping, per-level aggregation, summaries."""

from repro.analysis.export import (
    fig5_to_csv,
    matrix_to_csv,
    series_to_csv,
    summary_to_json,
    system_series_to_csv,
)
from repro.analysis.fairness import (
    jain_index,
    load_imbalance,
    spike_recovery_times,
    utilization_fairness,
)
from repro.analysis.levels import replicas_per_level
from repro.analysis.series import (
    drop_fraction_series,
    minute_buckets,
    rate_series,
)
from repro.analysis.summary import compare_drop_fractions, run_summary

__all__ = [
    "compare_drop_fractions",
    "fig5_to_csv",
    "matrix_to_csv",
    "series_to_csv",
    "summary_to_json",
    "system_series_to_csv",
    "jain_index",
    "load_imbalance",
    "spike_recovery_times",
    "utilization_fairness",
    "drop_fraction_series",
    "minute_buckets",
    "rate_series",
    "replicas_per_level",
    "run_summary",
]
