"""Export run metrics to CSV/JSON for external plotting tools.

The experiment harness prints text reports; anyone regenerating the
paper's figures in matplotlib/gnuplot/R wants the raw series instead.
These helpers write plain CSV (no third-party dependency) and plain
JSON from a finished :class:`~repro.cluster.system.System` or from the
dict/series structures the ``run_*`` functions return.
"""

from __future__ import annotations

import csv
import json
from typing import List, Mapping, Sequence, TextIO

from repro.cluster.system import System


def series_to_csv(
    fh: TextIO,
    series: Mapping[str, Sequence[float]],
    index_label: str = "bin",
) -> int:
    """Write named series as columns; returns the number of data rows.

    Shorter series are padded with empty cells, so differently sized
    series can share a file.
    """
    names = list(series)
    n = max((len(v) for v in series.values()), default=0)
    writer = csv.writer(fh)
    writer.writerow([index_label] + names)
    for i in range(n):
        row: List[object] = [i]
        for nm in names:
            vals = series[nm]
            row.append(vals[i] if i < len(vals) else "")
        writer.writerow(row)
    return n


def system_series_to_csv(fh: TextIO, system: System) -> int:
    """Dump a system's per-second series (drops, completions, replica
    creations/evictions, mean/max load) as one CSV."""
    n_bins = int(system.engine.now) + 1
    return series_to_csv(
        fh,
        {
            "injected": system.stats.injected.totals(n_bins),
            "completions": system.stats.completions.totals(n_bins),
            "drops": system.stats.drops.totals(n_bins),
            "replicas_created": system.stats.replicas_created.totals(n_bins),
            "replicas_evicted": system.stats.replicas_evicted.totals(n_bins),
            "load_mean": system.stats.loads.means(n_bins),
            "load_max": system.stats.loads.maxima(n_bins),
        },
        index_label="second",
    )


def summary_to_json(fh: TextIO, summary: Mapping[str, float],
                    indent: int = 2) -> None:
    """Write a flat summary dict as JSON."""
    json.dump(dict(summary), fh, indent=indent, sort_keys=True)
    fh.write("\n")


def matrix_to_csv(
    fh: TextIO,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    corner: str = "",
) -> None:
    """Write a labelled matrix (e.g. the Fig. 5 drop table)."""
    if len(values) != len(row_labels):
        raise ValueError("values must have one row per row label")
    writer = csv.writer(fh)
    writer.writerow([corner] + list(col_labels))
    for label, row in zip(row_labels, values):
        if len(row) != len(col_labels):
            raise ValueError("row width must match column labels")
        writer.writerow([label] + list(row))


def fig5_to_csv(fh: TextIO, drop_table: Mapping[str, Mapping[str, float]]) -> None:
    """Write a ``{preset: {stream: drop}}`` table (run_fig5 output)."""
    presets = list(drop_table)
    streams = list(next(iter(drop_table.values())).keys())
    matrix_to_csv(
        fh,
        row_labels=presets,
        col_labels=streams,
        values=[[drop_table[p][s] for s in streams] for p in presets],
        corner="preset",
    )
