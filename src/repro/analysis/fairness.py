"""Load-balance fairness and adaptation-speed metrics.

The paper's first fairness criterion is the *utilisation distribution*
(section 4.3) and its adaptation claims are about how fast drop/load
spikes decay after a popularity change (section 4.2).  This module
quantifies both:

* :func:`jain_index` -- the classic fairness index in [1/n, 1];
* :func:`load_imbalance` -- max/mean load ratio;
* :func:`spike_recovery_times` -- per disturbance, how long a series
  stays above a threshold before settling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly balanced; ``1/n`` means one server carries
    everything.  Zero-load populations return 1.0 (trivially fair).
    """
    n = len(values)
    if n == 0:
        raise ValueError("need at least one value")
    total = sum(values)
    if total == 0:
        return 1.0
    sq = sum(v * v for v in values)
    return (total * total) / (n * sq)


def load_imbalance(values: Sequence[float]) -> float:
    """Max-to-mean ratio (1.0 = perfectly balanced)."""
    n = len(values)
    if n == 0:
        raise ValueError("need at least one value")
    mean = sum(values) / n
    if mean == 0:
        return 1.0
    return max(values) / mean


def spike_recovery_times(
    series: Sequence[float],
    events: Sequence[float],
    threshold: float,
    bin_width: float = 1.0,
) -> List[Optional[float]]:
    """For each disturbance instant, how long the series stayed above
    ``threshold`` afterwards (the paper's "spikes decay within seconds").

    Args:
        series: per-bin values (e.g. drops per second).
        events: disturbance times (e.g. popularity reshuffles).
        threshold: the "recovered" level.
        bin_width: seconds per series bin.

    Returns:
        One entry per event: seconds from the event until the series
        first returns to <= threshold (and the *next* bin is also at or
        below it, to skip single-bin dips), or None if it never
        recovers within the series.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    out: List[Optional[float]] = []
    n = len(series)
    for ev in events:
        start = int(ev / bin_width)
        if start >= n:
            out.append(None)
            continue
        recovered = None
        for i in range(start, n):
            if series[i] <= threshold and (
                i + 1 >= n or series[i + 1] <= threshold
            ):
                recovered = (i - start) * bin_width
                break
        out.append(recovered)
    return out


def utilization_fairness(system) -> dict:
    """Summary fairness numbers for a finished run."""
    means = system.stats.loads.means()
    maxima = system.stats.loads.maxima()
    steady = [m for m in means if m > 0]
    return {
        "jain_of_mean_series": jain_index(steady) if steady else 1.0,
        "peak_imbalance": (
            max(M / m for m, M in zip(means, maxima) if m > 0)
            if any(m > 0 for m in means)
            else 1.0
        ),
    }
