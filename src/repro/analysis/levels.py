"""Per-namespace-level replica aggregation (paper Fig. 7)."""

from __future__ import annotations

from typing import List

from repro.cluster.system import System


def replicas_per_level(system: System, average: bool = True) -> List[float]:
    """Replicas created per tree level, optionally averaged per node.

    Fig. 7 plots, for each level of N_S, the *average number of
    replicas created for nodes on that level*: total creations at the
    level divided by the node count of the level.
    """
    sizes = system.ns.level_sizes()
    created = system.stats.level_replicas
    out: List[float] = []
    for level, total in enumerate(created):
        n = sizes[level] if level < len(sizes) else 0
        if average:
            out.append(total / n if n else 0.0)
        else:
            out.append(float(total))
    return out


def current_replicas_per_level(system: System, average: bool = True) -> List[float]:
    """Replicas *currently hosted* per level (creations minus evictions
    observable on the live system)."""
    sizes = system.ns.level_sizes()
    counts = [0] * (system.ns.max_depth + 1)
    depth = system.ns.depth
    for p in system.peers:
        for v in p.replicas:
            counts[depth[v]] += 1
    if not average:
        return [float(c) for c in counts]
    return [c / sizes[lvl] if sizes[lvl] else 0.0 for lvl, c in enumerate(counts)]
