"""Time-series shaping for the paper's per-second / per-minute plots."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.system import System


def rate_series(system: System, which: str, n_bins: Optional[int] = None) -> List[float]:
    """Per-second counts for one of the system's event series.

    Args:
        which: "drops", "injected", "completions", "replicas_created",
            or "replicas_evicted".
    """
    series = {
        "drops": system.stats.drops,
        "injected": system.stats.injected,
        "completions": system.stats.completions,
        "replicas_created": system.stats.replicas_created,
        "replicas_evicted": system.stats.replicas_evicted,
    }[which]
    if n_bins is None:
        n_bins = int(system.engine.now) + 1
    return series.totals(n_bins)


def drop_fraction_series(
    system: System, rate: float, n_bins: Optional[int] = None
) -> List[float]:
    """Fraction of queries dropped each second *relative to the
    insertion rate* -- the exact y-axis of the paper's Fig. 3."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    return [d / rate for d in rate_series(system, "drops", n_bins)]


def replica_fraction_series(
    system: System, rate: float, n_bins: Optional[int] = None
) -> List[float]:
    """Replicas created per second relative to the insertion rate
    (the y-axis of the paper's Fig. 4)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    return [r / rate for r in rate_series(system, "replicas_created", n_bins)]


def minute_buckets(per_second: Sequence[float], seconds_per_bucket: int = 60) -> List[float]:
    """Aggregate a per-second series into coarser buckets (Fig. 8's
    per-minute replica creation counts)."""
    if seconds_per_bucket < 1:
        raise ValueError("seconds_per_bucket must be >= 1")
    out: List[float] = []
    for i in range(0, len(per_second), seconds_per_bucket):
        out.append(sum(per_second[i : i + seconds_per_bucket]))
    return out


def load_series(system: System, n_bins: Optional[int] = None):
    """(mean, max) per-second server-load series (Fig. 6 left)."""
    if n_bins is None:
        n_bins = int(system.engine.now) + 1
    return (
        system.stats.loads.means(n_bins),
        system.stats.loads.maxima(n_bins),
    )
