"""Run summaries and cross-run comparisons."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.cluster.system import System


def run_summary(system: System) -> Dict[str, float]:
    """Headline aggregates plus protocol-health indicators."""
    s = system.stats.summary()
    forwards = sum(system.stats.route_sources.values())
    s["forwards"] = float(forwards)
    s["stale_hop_rate"] = (
        system.stats.n_stale_hops / forwards if forwards else 0.0
    )
    s["control_messages"] = float(system.transport.n_control_sent)
    s["query_messages"] = float(system.transport.n_sent)
    s["control_to_query_ratio"] = (
        system.transport.n_control_sent / system.transport.n_sent
        if system.transport.n_sent
        else 0.0
    )
    s["replicas_live"] = float(system.total_replicas())
    s["utilization_mean"] = _mean_utilization(system)
    s["latency_p50"] = system.stats.latency.percentile(0.50)
    s["latency_p95"] = system.stats.latency.percentile(0.95)
    return s


def _mean_utilization(system: System) -> float:
    means = system.stats.loads.means()
    return sum(means) / len(means) if means else 0.0


def compare_drop_fractions(
    results: Mapping[str, Mapping[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Shape a {system: {stream: drop_fraction}} table (Fig. 5 layout).

    ``results`` maps system label (B/BC/BCR) to per-stream summaries;
    returns the same nesting restricted to drop fractions, which is the
    quantity Fig. 5 plots.
    """
    return {
        sys_label: {stream: v["drop_fraction"] for stream, v in streams.items()}
        for sys_label, streams in results.items()
    }
