"""Application-facing client API: lookup, two-step retrieval, search."""

from repro.client.client import TerraDirClient
from repro.client.results import (
    Future,
    LookupResult,
    RetrievalResult,
    SearchResult,
)

__all__ = [
    "Future",
    "LookupResult",
    "RetrievalResult",
    "SearchResult",
    "TerraDirClient",
]
