"""The TerraDir client: the application API on top of one home server.

Implements the access model of paper section 2.1:

* ``lookup(name)`` -- resolve a name to meta-data version + host map;
* ``retrieve(name)`` -- the two-step process: a lookup followed by the
  actual data retrieval from one of the mapped servers (with redirect
  handling, since routing replicas do not export data);
* ``search(root, ...)`` -- a complex query decomposed hierarchically
  into individual lookups over a subtree, whose results are aggregated
  and optionally filtered by meta-data predicates at the client.

All operations are asynchronous (they return
:class:`~repro.client.results.Future`); ``wait`` drives the simulation
until completion, which is what examples and tests use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.client.results import (
    Future,
    LookupResult,
    RetrievalResult,
    SearchResult,
)
from repro.cluster.system import System
from repro.net.message import DataRequest


class TerraDirClient:
    """A client application attached to one (home) server."""

    def __init__(
        self,
        system: System,
        home_server: int,
        lookup_timeout: float = 10.0,
        retrieve_attempts: int = 3,
        lookup_retries: int = 0,
    ) -> None:
        if not 0 <= home_server < len(system.peers):
            raise ValueError(f"no server {home_server}")
        if lookup_timeout <= 0:
            raise ValueError("lookup_timeout must be > 0")
        if lookup_retries < 0:
            raise ValueError("lookup_retries must be >= 0")
        self.system = system
        self.home = system.peers[home_server]
        self.lookup_timeout = lookup_timeout
        self.retrieve_attempts = retrieve_attempts
        self.lookup_retries = lookup_retries
        # hot-path plumbing, bound once: the per-lookup timeout goes
        # through the runtime's cancel-cheap timer path (under the
        # simulator, the timer-wheel -- keeps the engine heap free of
        # dead timeout entries), and sink hooks are cached so each
        # recording is one call, not an attribute chain
        self._rt = system.runtime
        self._record_lookup = system.stats.record_client_lookup
        self._record_timeout = system.stats.record_client_timeout
        self._record_retry = system.stats.record_client_retry
        self._rid = 0
        self.n_lookups = 0
        self.n_retrievals = 0
        self.n_timeouts = 0
        self.n_retries = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> Future:
        """Resolve a fully-qualified name; future yields a LookupResult."""
        node = self.system.ns.id_of(name)
        return self.lookup_node(node)

    def lookup_node(self, node: int) -> Future:
        future = Future()
        self._issue_lookup(node, future, retries_left=self.lookup_retries)
        return future

    def _issue_lookup(self, node: int, future: Future,
                      retries_left: int) -> None:
        """One lookup attempt; a timeout reissues until retries run out.

        Lookups are idempotent (a drop leaves no state to undo), so
        retrying after a timeout is safe and is how a real client masks
        queue drops and failures.
        """
        self.n_lookups += 1
        self._record_lookup(self._rt.now)
        qid = self.system.inject(self.home.sid, node)
        timeout = self._rt.timer_after(
            self.lookup_timeout, self._on_lookup_timeout,
            qid, node, future, retries_left,
        )

        def on_response(resp) -> None:
            timeout.cancel()
            future.resolve(
                LookupResult(
                    node=resp.dest,
                    name=self.system.ns.name_of(resp.dest),
                    servers=list(resp.dest_map),
                    meta_version=resp.meta_version,
                    latency=self._rt.now - resp.created_at,
                    hops=resp.hops,
                )
            )

        self.home.client_hooks[("lookup", qid)] = on_response

    def _on_lookup_timeout(self, qid: int, node: int, future: Future,
                           retries_left: int) -> None:
        self.home.client_hooks.pop(("lookup", qid), None)
        self.n_timeouts += 1
        self._record_timeout(self._rt.now)
        if retries_left > 0:
            self.n_retries += 1
            self._record_retry(self._rt.now)
            self._issue_lookup(node, future, retries_left - 1)
            return
        future.fail("lookup timed out (query dropped or still queued)")

    # ------------------------------------------------------------------
    # two-step retrieval
    # ------------------------------------------------------------------

    def retrieve(self, name: str, want_meta: bool = False) -> Future:
        """Look the name up, then fetch data (or fresh meta) from a host.

        Handles redirects: routing replicas hold no data and answer
        with their map; the client retries up to ``retrieve_attempts``
        servers before failing.
        """
        future = Future()
        lookup_future = self.lookup(name)

        def after_lookup(lf: Future) -> None:
            if not lf.ok:
                future.fail(f"lookup failed: {lf.error}")
                return
            result: LookupResult = lf.value
            candidates = [s for s in result.servers if s != self.home.sid]
            if not candidates and self.home.hosts(result.node):
                # served locally
                self._finish_local_retrieval(future, result, want_meta)
                return
            self._request_data(
                future, result, list(candidates), attempts=0,
                want_meta=want_meta,
            )

        lookup_future.on_done(after_lookup)
        return future

    def _finish_local_retrieval(
        self, future: Future, result: LookupResult, want_meta: bool
    ) -> None:
        peer = self.home
        if result.node in peer.owned:
            meta = peer.metadata.meta(result.node).snapshot()
            data = None if want_meta else peer.metadata.get_data(result.node)
            self.n_retrievals += 1
            future.resolve(
                RetrievalResult(
                    result.node, result.name, data, meta, peer.sid, 0, result
                )
            )
        else:
            future.fail("home server no longer hosts the node's data")

    def _request_data(
        self,
        future: Future,
        result: LookupResult,
        candidates: List[int],
        attempts: int,
        want_meta: bool,
        tried: Optional[set] = None,
    ) -> None:
        if tried is None:
            tried = set()
        candidates = [s for s in candidates if s not in tried]
        if attempts >= self.retrieve_attempts or not candidates:
            future.fail("no data host reachable from the lookup map")
            return
        target = candidates[0]
        tried.add(target)
        self._rid += 1
        rid = self._rid
        req = DataRequest(rid, result.node, self.home.sid, want_meta=want_meta)

        def on_reply(reply) -> None:
            if reply.meta is not None or reply.data is not None:
                self.n_retrievals += 1
                future.resolve(
                    RetrievalResult(
                        result.node, result.name, reply.data, reply.meta,
                        reply.responder, attempts + 1, result,
                    )
                )
                return
            # redirect: merge the responder's map into our candidates
            merged = candidates[1:] + [
                s for s in reply.redirect_map
                if s != self.home.sid and s not in tried
            ]
            self._request_data(
                future, result, merged, attempts + 1, want_meta, tried
            )

        self.home.client_hooks[("data", rid)] = on_reply
        self._rt.send(target, req)

    # ------------------------------------------------------------------
    # hierarchical search
    # ------------------------------------------------------------------

    def search(
        self,
        root: str,
        keyword: Optional[str] = None,
        attribute: Optional[Tuple[str, str]] = None,
        max_nodes: int = 0,
    ) -> Future:
        """Search a subtree, hierarchically decomposed into lookups.

        Every node under ``root`` (inclusive) is resolved individually;
        results are aggregated at the client.  With a ``keyword`` or
        ``attribute`` predicate, fresh meta-data is fetched from each
        resolved node's owner and filtered client-side; without one,
        all resolved names match.

        Args:
            max_nodes: cap on subtree size (0 = unlimited).

        The future yields a :class:`SearchResult`.
        """
        ns = self.system.ns
        root_id = ns.id_of(root)
        nodes = ns.subtree(root_id)
        if max_nodes and len(nodes) > max_nodes:
            nodes = nodes[:max_nodes]
        future = Future()
        result = SearchResult(root)
        pending = {"count": len(nodes)}
        need_meta = keyword is not None or attribute is not None

        def finish_one() -> None:
            pending["count"] -= 1
            if pending["count"] == 0:
                future.resolve(result)

        def make_meta_handler(name: str):
            def on_meta(rf: Future) -> None:
                if rf.ok and rf.value.meta is not None and rf.value.meta.matches(
                    keyword, attribute
                ):
                    result.matches.append(name)
                finish_one()

            return on_meta

        def make_lookup_handler(node: int, name: str):
            def on_lookup(lf: Future) -> None:
                if not lf.ok:
                    result.failed.append(name)
                    finish_one()
                    return
                result.resolved[name] = lf.value
                if not need_meta:
                    result.matches.append(name)
                    finish_one()
                    return
                self.retrieve(name, want_meta=True).on_done(
                    make_meta_handler(name)
                )

            return on_lookup

        if not nodes:
            future.resolve(result)
            return future
        for node in nodes:
            name = ns.name_of(node)
            self.lookup_node(node).on_done(make_lookup_handler(node, name))
        return future

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def wait(self, future: Future, timeout: float = 60.0):
        """Advance the simulation until ``future`` resolves.

        Returns the future's value.

        Raises:
            TimeoutError: the deadline passed without resolution.
            RuntimeError: the operation failed.
        """
        engine = self.system.engine
        deadline = engine.now + timeout
        self.system.start_maintenance()
        while not future.done and engine.now < deadline:
            nxt = engine.peek_time()
            if nxt is None:
                break
            engine.run(until=min(nxt, deadline), max_events=256)
        if not future.done:
            raise TimeoutError("operation did not complete in time")
        if future.error is not None:
            raise RuntimeError(future.error)
        return future.value
