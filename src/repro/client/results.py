"""Client-visible result types and a minimal simulation future."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Future:
    """Completion placeholder for an asynchronous client operation.

    The simulation is single-threaded, so this is just a slot the
    message handlers fill in; ``TerraDirClient.wait`` advances the
    engine until it resolves (or the deadline passes).
    """

    __slots__ = ("done", "value", "error", "_callbacks")

    def __init__(self) -> None:
        self.done = False
        self.value = None
        self.error: Optional[str] = None
        self._callbacks: List[Callable] = []

    def resolve(self, value) -> None:
        if self.done:
            return
        self.done = True
        self.value = value
        for cb in self._callbacks:
            cb(self)

    def fail(self, error: str) -> None:
        if self.done:
            return
        self.done = True
        self.error = error
        for cb in self._callbacks:
            cb(self)

    def on_done(self, cb: Callable) -> None:
        if self.done:
            cb(self)
        else:
            self._callbacks.append(cb)

    @property
    def ok(self) -> bool:
        return self.done and self.error is None


class LookupResult:
    """What a lookup returns (paper section 2.1): the node's name, its
    meta-data version, and a mapping of servers hosting the node."""

    __slots__ = ("node", "name", "servers", "meta_version", "latency", "hops")

    def __init__(
        self,
        node: int,
        name: str,
        servers: List[int],
        meta_version: int,
        latency: float,
        hops: int,
    ) -> None:
        self.node = node
        self.name = name
        self.servers = servers
        self.meta_version = meta_version
        self.latency = latency
        self.hops = hops

    def __repr__(self) -> str:
        return (
            f"LookupResult({self.name!r}, servers={self.servers}, "
            f"v{self.meta_version}, {self.hops} hops)"
        )


class RetrievalResult:
    """Outcome of the two-step access: lookup plus data retrieval."""

    __slots__ = ("node", "name", "data", "meta", "served_by", "attempts",
                 "lookup")

    def __init__(
        self,
        node: int,
        name: str,
        data,
        meta,
        served_by: int,
        attempts: int,
        lookup: LookupResult,
    ) -> None:
        self.node = node
        self.name = name
        self.data = data
        self.meta = meta
        self.served_by = served_by
        self.attempts = attempts
        self.lookup = lookup


class SearchResult:
    """Aggregated outcome of a hierarchically decomposed search."""

    __slots__ = ("root", "matches", "resolved", "failed")

    def __init__(self, root: str) -> None:
        self.root = root
        self.matches: List[str] = []
        self.resolved: Dict[str, LookupResult] = {}
        self.failed: List[str] = []

    def __len__(self) -> int:
        return len(self.matches)
