"""System assembly: configuration, builder, and the simulated system."""

from repro.cluster.config import SystemConfig
from repro.cluster.builder import build_system
from repro.cluster.system import System, SystemStats

__all__ = ["System", "SystemConfig", "SystemStats", "build_system"]
