"""System assembly: nodes to servers, neighbor wiring, digests, bootstrap.

The paper's methodology maps both namespaces uniformly at random onto
the participating servers; every server then pins a map for each
neighbor of each node it owns (its routing contexts), seeds its own
digest with its owned nodes, and learns the loads of a few random peers
so replication has somewhere to start before in-band dissemination
takes over.

Sharded construction (:func:`build_shard_system`) wires the same
deployment one shard at a time: only the shard's own servers are
materialised, but every *global* random draw of the serial build (the
uniform node assignment, the heterogeneity sample, the per-server
bootstrap samples) is replayed identically in each shard and applied
only where it lands locally -- so the union of the shards is, state
for state, the serial system.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.config import SystemConfig
from repro.cluster.system import ShardSystem, System
from repro.filters.digest import Digest, DigestDirectory
from repro.namespace.generators import assign_nodes_to_servers
from repro.namespace.tree import Namespace
from repro.server.peer import Peer
from repro.sim.engine import Engine, ShardError
from repro.sim.profile import make_engine, note_system
from repro.sim.stats import StatsSink


def _resolve_owner(
    ns: Namespace, cfg: SystemConfig, owner: Optional[Sequence[int]]
) -> Sequence[int]:
    """Validate or default the node-to-server assignment.

    An explicit ``owner`` is validated *in place* and returned as-is:
    shard workers pass a read-only ``memoryview`` into the shared
    arena block, and copying it to a list would re-materialise one
    boxed int per node per worker -- exactly the per-worker RSS the
    shared arenas exist to eliminate.
    """
    if cfg.n_servers > len(ns):
        raise ValueError(
            f"n_servers ({cfg.n_servers}) exceeds node count ({len(ns)}); "
            "every server must own at least one node"
        )
    if owner is None:
        return assign_nodes_to_servers(ns, cfg.n_servers, seed=cfg.seed)
    if len(owner) != len(ns):
        raise ValueError("owner assignment length must equal node count")
    n_servers = cfg.n_servers
    if any(not 0 <= o < n_servers for o in owner):
        raise ValueError("owner ids out of range")
    return owner


def _populate_system(
    system: System, owner_list: Sequence[int], sids: Iterable[int]
) -> None:
    """Construct and wire the peers for ``sids`` into ``system``.

    The serial build passes every sid; a shard build passes its local
    subset.  Global RNG draws (heterogeneity, bootstrap) are replayed
    in full either way so any subset of servers sees exactly the draws
    the serial build would have dealt it.
    """
    ns, cfg = system.ns, system.cfg
    sids = list(sids)
    sparse = getattr(system, "local_peers", None) is not None

    # shared Bloom geometry for all digests: capacity sized to the
    # worst-case hosted set (owned + replica allowance), so snapshots
    # are cross-evaluable and the FP rate holds under replication.
    per_server = max(1, math.ceil(len(ns) / cfg.n_servers))
    digest_capacity = max(16, math.ceil(per_server * (1.0 + max(cfg.rfact, 1.0))))

    owned_by: Dict[int, List[int]] = {sid: [] for sid in sids}
    for node, srv in enumerate(owner_list):
        nodes = owned_by.get(srv)
        if nodes is not None:
            nodes.append(node)

    shared_pos_cache = None
    for sid in sids:
        peer = Peer(sid, system, owned=())
        peer.digest = Digest(
            digest_capacity, fp_rate=cfg.digest_fp_rate, owner_server=sid
        )
        # all digests share geometry; share the hash-position cache so
        # each node id is hashed once per process, not once per filter
        if shared_pos_cache is None:
            shared_pos_cache = peer.digest.bloom.pos_cache
        else:
            peer.digest.bloom.pos_cache = shared_pos_cache
        peer.digest_dir = DigestDirectory(
            peer.digest, max_peers=cfg.digest_dir_max
        )
        if sparse:
            system.peers[sid] = peer
            system.local_peers.append(peer)
        else:
            system.peers.append(peer)
        system.transport.register(sid, peer.deliver)

    # ownership and routing contexts
    for sid in sids:
        peer = system.peers[sid]
        for node in owned_by[sid]:
            peer.adopt_node(node)
        for node in owned_by[sid]:
            for nbr in ns.neighbors(node):
                peer.pin(nbr, (owner_list[nbr],))

    # heterogeneity: mark a fraction of servers slow (locally
    # normalized load metric absorbs the difference, section 3.1);
    # one global draw, applied wherever it lands locally
    if cfg.slow_server_fraction > 0.0 and cfg.slow_factor > 1.0:
        het_rng = random.Random(cfg.seed ^ 0x51095109)
        n_slow = int(round(cfg.slow_server_fraction * cfg.n_servers))
        for sid in het_rng.sample(range(cfg.n_servers), n_slow):
            peer = system.peers[sid] if sid < len(system.peers) else None
            if peer is not None:
                peer.service_mean = cfg.service_mean * cfg.slow_factor

    # bootstrap load knowledge: a few random peers, believed idle.
    # Draws are replayed for *every* server in sid order -- skipping
    # remote sids would shift the stream and desynchronise shards.
    if cfg.bootstrap_known_peers > 0 and cfg.n_servers > 1:
        boot_rng = random.Random(cfg.seed ^ 0x5EED0B00)
        k = min(cfg.bootstrap_known_peers, cfg.n_servers - 1)
        for sid in range(cfg.n_servers):
            others = [s for s in range(cfg.n_servers) if s != sid]
            picks = boot_rng.sample(others, k)
            peer = system.peers[sid] if sid < len(system.peers) else None
            if peer is not None:
                for s in picks:
                    peer.known_loads[s] = (0.0, 0.0)


def build_system(
    ns: Namespace,
    cfg: SystemConfig,
    owner: Optional[Sequence[int]] = None,
    engine: Optional[Engine] = None,
    stats: Optional[StatsSink] = None,
) -> System:
    """Wire a complete simulated system.

    Args:
        ns: the namespace tree.
        cfg: all protocol/simulation knobs.
        owner: optional explicit node-to-server assignment; defaults to
            the uniform random balanced partition of the paper.
        engine: optional externally owned event engine.
        stats: optional stats sink; defaults to a full
            :class:`~repro.sim.stats.SystemStats` collector.

    Raises:
        ValueError: when there are more servers than nodes (every
            server must own at least one node for routing progress).
    """
    owner_list = _resolve_owner(ns, cfg, owner)
    # the profile module hands out ProfiledEngines when profiling is
    # enabled (python -m repro profile ...), plain Engines otherwise.
    # Explicit None check: an empty Engine is falsy (len() == 0), so
    # ``engine or make_engine()`` would drop a caller's fresh engine.
    if engine is None:
        engine = make_engine()
    system = System(ns, cfg, engine, owner_list, stats=stats)
    _populate_system(system, owner_list, range(cfg.n_servers))
    # register with the profiler (no-op unless profiling is active) so
    # per-peer routing-decision counters appear in the profile report
    note_system(system)
    return system


def build_shard_system(
    ns: Namespace,
    cfg: SystemConfig,
    shard_id: int,
    n_shards: int,
    owner: Optional[Sequence[int]] = None,
    engine: Optional[Engine] = None,
    stats: Optional[StatsSink] = None,
) -> ShardSystem:
    """Wire one shard's slice of a sharded deployment.

    Servers are partitioned across shards in contiguous balanced
    blocks (:func:`repro.net.transport.shard_of_sid`) over the same
    uniform node-to-server assignment the serial build uses; only this
    shard's servers are constructed.

    Raises:
        ShardError: when the config cannot run sharded --
            ``oracle_maps`` reads other peers' state directly, and the
            transport additionally rejects ``net_jitter > 0`` and
            ``net_delay == 0`` (no constant lookahead).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards > cfg.n_servers:
        raise ValueError(
            f"n_shards ({n_shards}) exceeds n_servers ({cfg.n_servers})"
        )
    if cfg.oracle_maps:
        raise ShardError(
            "oracle_maps consults ground-truth peer state across shards; "
            "run oracle comparisons on the serial engine"
        )
    owner_list = _resolve_owner(ns, cfg, owner)
    if engine is None:
        engine = make_engine(label=f"shard{shard_id}")
    system = ShardSystem(
        ns, cfg, engine, owner_list, shard_id, n_shards, stats=stats
    )
    _populate_system(system, owner_list, system.local_sids)
    note_system(system)
    return system
