"""System assembly: nodes to servers, neighbor wiring, digests, bootstrap.

The paper's methodology maps both namespaces uniformly at random onto
the participating servers; every server then pins a map for each
neighbor of each node it owns (its routing contexts), seeds its own
digest with its owned nodes, and learns the loads of a few random peers
so replication has somewhere to start before in-band dissemination
takes over.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.cluster.config import SystemConfig
from repro.cluster.system import System
from repro.filters.digest import Digest, DigestDirectory
from repro.namespace.generators import assign_nodes_to_servers
from repro.namespace.tree import Namespace
from repro.server.peer import Peer
from repro.sim.engine import Engine
from repro.sim.profile import make_engine, note_system
from repro.sim.stats import StatsSink


def build_system(
    ns: Namespace,
    cfg: SystemConfig,
    owner: Optional[Sequence[int]] = None,
    engine: Optional[Engine] = None,
    stats: Optional[StatsSink] = None,
) -> System:
    """Wire a complete simulated system.

    Args:
        ns: the namespace tree.
        cfg: all protocol/simulation knobs.
        owner: optional explicit node-to-server assignment; defaults to
            the uniform random balanced partition of the paper.
        engine: optional externally owned event engine.
        stats: optional stats sink; defaults to a full
            :class:`~repro.sim.stats.SystemStats` collector.

    Raises:
        ValueError: when there are more servers than nodes (every
            server must own at least one node for routing progress).
    """
    if cfg.n_servers > len(ns):
        raise ValueError(
            f"n_servers ({cfg.n_servers}) exceeds node count ({len(ns)}); "
            "every server must own at least one node"
        )
    if owner is None:
        owner_list = assign_nodes_to_servers(ns, cfg.n_servers, seed=cfg.seed)
    else:
        owner_list = list(owner)
        if len(owner_list) != len(ns):
            raise ValueError("owner assignment length must equal node count")
        if any(not 0 <= o < cfg.n_servers for o in owner_list):
            raise ValueError("owner ids out of range")

    # the profile module hands out ProfiledEngines when profiling is
    # enabled (python -m repro profile ...), plain Engines otherwise
    engine = engine or make_engine()
    system = System(ns, cfg, engine, owner_list, stats=stats)

    # shared Bloom geometry for all digests: capacity sized to the
    # worst-case hosted set (owned + replica allowance), so snapshots
    # are cross-evaluable and the FP rate holds under replication.
    per_server = max(1, math.ceil(len(ns) / cfg.n_servers))
    digest_capacity = max(16, math.ceil(per_server * (1.0 + max(cfg.rfact, 1.0))))

    owned_by: List[List[int]] = [[] for _ in range(cfg.n_servers)]
    for node, srv in enumerate(owner_list):
        owned_by[srv].append(node)

    shared_pos_cache = None
    for sid in range(cfg.n_servers):
        peer = Peer(sid, system, owned=())
        peer.digest = Digest(
            digest_capacity, fp_rate=cfg.digest_fp_rate, owner_server=sid
        )
        # all digests share geometry; share the hash-position cache so
        # each node id is hashed once per process, not once per filter
        if shared_pos_cache is None:
            shared_pos_cache = peer.digest.bloom.pos_cache
        else:
            peer.digest.bloom.pos_cache = shared_pos_cache
        peer.digest_dir = DigestDirectory(
            peer.digest, max_peers=cfg.digest_dir_max
        )
        system.peers.append(peer)
        system.transport.register(sid, peer.deliver)

    # ownership and routing contexts
    for sid, peer in enumerate(system.peers):
        for node in owned_by[sid]:
            peer.adopt_node(node)
        for node in owned_by[sid]:
            for nbr in ns.neighbors(node):
                peer.pin(nbr, (owner_list[nbr],))

    # heterogeneity: mark a fraction of servers slow (locally
    # normalized load metric absorbs the difference, section 3.1)
    if cfg.slow_server_fraction > 0.0 and cfg.slow_factor > 1.0:
        het_rng = random.Random(cfg.seed ^ 0x51095109)
        n_slow = int(round(cfg.slow_server_fraction * cfg.n_servers))
        for sid in het_rng.sample(range(cfg.n_servers), n_slow):
            system.peers[sid].service_mean = cfg.service_mean * cfg.slow_factor

    # bootstrap load knowledge: a few random peers, believed idle
    if cfg.bootstrap_known_peers > 0 and cfg.n_servers > 1:
        boot_rng = random.Random(cfg.seed ^ 0x5EED0B00)
        k = min(cfg.bootstrap_known_peers, cfg.n_servers - 1)
        for peer in system.peers:
            others = [s for s in range(cfg.n_servers) if s != peer.sid]
            for s in boot_rng.sample(others, k):
                peer.known_loads[s] = (0.0, 0.0)

    # register with the profiler (no-op unless profiling is active) so
    # per-peer routing-decision counters appear in the profile report
    note_system(system)
    return system
