"""All knobs of the simulated TerraDir system in one dataclass.

Defaults follow the paper's methodology section (as reconstructed in
DESIGN.md): 20 ms mean exponential service time, 25 ms constant
application-layer network time, request queues of 12, 0.5 s load
windows, high-water threshold 0.7, replication factor 2, map bound 4.

Three presets mirror the systems compared in Fig. 5:

* ``SystemConfig.base()``       -- B:   hierarchical routing only,
* ``SystemConfig.caching()``    -- BC:  B + path-propagating caches,
* ``SystemConfig.replicated()`` -- BCR: BC + adaptive replication
  (+ inverse-mapping digests).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class SystemConfig:
    """Configuration for one simulated TerraDir deployment."""

    # --- population -----------------------------------------------------
    n_servers: int = 100
    seed: int = 0

    # --- queueing model (paper section 4.1) ------------------------------
    service_mean: float = 0.005
    """Mean exponential service time per processed message, seconds.

    The paper quotes a 20 ms mean per query; since every routing hop
    occupies a server, we amortise that budget over the ~4 hops a
    steady-state lookup takes (see DESIGN.md, parameter reconstruction).
    Utilisation-targeted experiments derive their arrival rates from
    this value times the expected hop count.
    """
    net_delay: float = 0.025
    """Constant application-layer network time per hop, seconds."""
    net_jitter: float = 0.0
    """Mean of an exponential jitter added to every hop's delay
    (0 reproduces the paper's constant-latency model)."""
    queue_size: int = 12
    """Request-queue slots per server; arrivals in excess are dropped."""
    slow_server_fraction: float = 0.0
    """Fraction of servers that are 'slow' (heterogeneity model).

    The paper's closing argument (section 5) nominates the adaptive
    protocol for exploiting P2P heterogeneity: the load metric is
    locally normalized, so slow servers report full capacity sooner and
    shed work to fast ones.  A slow server's mean service time is
    ``service_mean * slow_factor``.
    """
    slow_factor: float = 1.0
    """Service-time multiplier for slow servers (>= 1)."""

    # --- load metric (section 3.1) ---------------------------------------
    load_window: float = 0.5
    """Busy-fraction window w, seconds."""
    l_high: float = 0.7
    """High-water load threshold triggering replication."""
    l_high_auto: bool = False
    """Set the high-water threshold automatically, in proportion to the
    (locally estimated) overall system utilisation -- the alternative
    the paper names in section 3.1.  Each server estimates system
    utilisation as the mean of its own load and the loads it has heard
    in-band, and uses ``clamp(l_high_factor * estimate, l_high_floor,
    0.95)`` as its threshold; ``l_high`` is ignored."""
    l_high_factor: float = 1.75
    """Multiple of estimated system utilisation used when auto is on."""
    l_high_floor: float = 0.3
    """Lower clamp for the automatic threshold."""
    delta_min: float = 0.2
    """Minimum source-target load gap to ship replicas."""

    # --- caching (section 2.4) -------------------------------------------
    caching_enabled: bool = True
    cache_slots: int = 16
    """LRU cache entries per server."""
    path_propagation: bool = True
    """Cache the path-so-far at every hop (vs. query endpoints only)."""

    # --- replication (section 3) -----------------------------------------
    replication_enabled: bool = True
    rfact: float = 2.0
    """Replication factor: max replicas per server = rfact * |owned|."""
    rmap: int = 4
    """Maximum node-map entries, at rest and in flight."""
    max_attempts: int = 3
    """Probe attempts per load-balancing session before aborting."""
    session_backoff: float = 0.5
    """Delay before a new session after an aborted one, seconds."""
    session_timeout: float = 2.0
    """Abort a session whose probe/transfer/ack never arrives, seconds."""
    success_cooldown: float = 0.05
    """Minimum gap between successful sessions, seconds."""
    hysteresis_enabled: bool = True
    """Book ideal post-transfer loads immediately (creation step 4)."""
    advertisement_enabled: bool = True
    """Advertise recently created replicas in outgoing node maps."""
    rank_rescale_interval: float = 5.0
    """Seconds between node-weight decays."""
    rank_decay: float = 0.5
    """Multiplier applied to node weights at each rescale."""
    replica_idle_timeout: float = 0.0
    """Evict replicas unused this long; 0 disables timed eviction."""

    # --- inverse-mapping digests (section 3.6) ----------------------------
    digests_enabled: bool = True
    digest_fp_rate: float = 0.02
    """Bloom false-positive rate at nominal per-server capacity."""
    digest_probe_limit: int = 8
    """Digest snapshots probed per routing step (0 = all known)."""
    digest_dir_max: int = 64
    """Digest snapshots retained per server (0 = unbounded)."""
    oracle_maps: bool = False
    """Filter node maps against ground truth instead of digests.

    Models the paper's "oracle" comparison point in section 4.4:
    routing with perfectly accurate host information.  Simulation-only
    device; a real deployment has no oracle.
    """

    # --- bootstrap / safety ----------------------------------------------
    bootstrap_known_peers: int = 8
    """Random peers each server initially knows load info for."""
    max_hops: int = 64
    """TTL guard against routing loops from stale state."""

    # --- instrumentation --------------------------------------------------
    sample_loads_every: float = 1.0
    """Seconds between system-wide load samples (0 disables sampling)."""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ValueError on out-of-range parameters."""
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if self.service_mean <= 0:
            raise ValueError("service_mean must be > 0")
        if self.net_delay < 0:
            raise ValueError("net_delay must be >= 0")
        if self.net_jitter < 0:
            raise ValueError("net_jitter must be >= 0")
        if self.queue_size < 0:
            raise ValueError("queue_size must be >= 0")
        if not 0.0 <= self.slow_server_fraction <= 1.0:
            raise ValueError("slow_server_fraction must be in [0, 1]")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        if self.load_window <= 0:
            raise ValueError("load_window must be > 0")
        if not 0.0 < self.l_high <= 1.0:
            raise ValueError("l_high must be in (0, 1]")
        if self.l_high_factor <= 0:
            raise ValueError("l_high_factor must be > 0")
        if not 0.0 < self.l_high_floor <= 1.0:
            raise ValueError("l_high_floor must be in (0, 1]")
        if not 0.0 <= self.delta_min <= 1.0:
            raise ValueError("delta_min must be in [0, 1]")
        if self.cache_slots < 0:
            raise ValueError("cache_slots must be >= 0")
        if self.rfact < 0:
            raise ValueError("rfact must be >= 0")
        if self.rmap < 1:
            raise ValueError("rmap must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")

    # ------------------------------------------------------------------
    # Fig. 5 presets
    # ------------------------------------------------------------------

    @classmethod
    def base(cls, **overrides) -> "SystemConfig":
        """B: plain hierarchical routing, no caches/replicas/digests."""
        merged = dict(
            caching_enabled=False,
            replication_enabled=False,
            digests_enabled=False,
        )
        merged.update(overrides)
        return cls(**merged)

    @classmethod
    def caching(cls, **overrides) -> "SystemConfig":
        """BC: base system plus path-propagating LRU caches."""
        merged = dict(
            caching_enabled=True,
            replication_enabled=False,
            digests_enabled=False,
        )
        merged.update(overrides)
        return cls(**merged)

    @classmethod
    def replicated(cls, **overrides) -> "SystemConfig":
        """BCR: caching plus adaptive replication plus digests."""
        merged = dict(
            caching_enabled=True,
            replication_enabled=True,
            digests_enabled=True,
        )
        merged.update(overrides)
        return cls(**merged)

    def replace(self, **overrides) -> "SystemConfig":
        """A modified copy (dataclasses.replace with validation)."""
        return dataclasses.replace(self, **overrides)
