"""Fail-stop server failures and recovery.

The paper's fault-tolerance story is indirect but explicit (section
3.1): replication is driven by load, and "hosting servers for nodes
with failed replicas will incur more load after failure than before,
and will replicate again to meet new load conditions."  Caches likewise
let routing "jump over namespace partitions induced by network
failures" (section 2.4).

:class:`FailureInjector` implements the fail-stop model needed to
exercise those claims:

* a failed server neither receives nor sends -- all messages addressed
  to it (including ones already in flight) are lost;
* queries lost to a failure are accounted as drops (reason
  ``failure``), responses as drops too (the client never learns);
* lost replication control messages abandon their session via the
  session timeout;
* recovery restores the server with its soft state intact (its queue
  is cleared -- those requests died with it).
"""

from __future__ import annotations

import logging
import random
from typing import Iterable, List, Optional, Set

from repro.cluster.system import System
from repro.net.message import QueryMessage, ResponseMessage

logger = logging.getLogger("repro.failures")


class FailureInjector:
    """Inject and heal fail-stop server failures in a running system."""

    def __init__(self, system: System) -> None:
        self.system = system
        system.transport.on_lost = self._on_lost
        self.n_failures = 0
        self.n_recoveries = 0

    @property
    def failed(self) -> Set[int]:
        return set(self.system.transport.failed)

    # ------------------------------------------------------------------

    def fail(self, sid: int) -> None:
        """Fail-stop one server."""
        if sid in self.system.transport.failed:
            return
        self.system.transport.fail_server(sid)
        peer = self.system.peers[sid]
        peer.failed = True
        self.n_failures += 1
        logger.info(
            "t=%.3f server %d failed (%d owned nodes, %d replicas)",
            self.system.engine.now, sid, len(peer.owned), len(peer.replicas),
        )

    def fail_random(self, count: int, rng: Optional[random.Random] = None,
                    protect: Iterable[int] = ()) -> List[int]:
        """Fail ``count`` random live servers (never those in ``protect``)."""
        rng = rng or random.Random(0)
        protected = set(protect)
        alive = [
            p.sid for p in self.system.peers
            if p.sid not in self.system.transport.failed
            and p.sid not in protected
        ]
        victims = rng.sample(alive, min(count, len(alive)))
        for sid in victims:
            self.fail(sid)
        return victims

    def recover(self, sid: int) -> None:
        """Bring a failed server back with its soft state intact.

        Its request queue died with it; any interrupted service slot is
        abandoned (the meter is told the service ended at recovery)."""
        if sid not in self.system.transport.failed:
            return
        self.system.transport.recover_server(sid)
        peer = self.system.peers[sid]
        peer.failed = False
        peer.queue.clear()
        if peer.in_service:
            # the in-flight service completion event was suppressed;
            # release the service slot cleanly
            peer.in_service = False
            if peer.meter.busy:
                peer.meter.service_finished(self.system.engine.now)
        self.n_recoveries += 1
        logger.info("t=%.3f server %d recovered",
                    self.system.engine.now, sid)

    def recover_all(self) -> None:
        for sid in list(self.system.transport.failed):
            self.recover(sid)

    # ------------------------------------------------------------------

    def _on_lost(self, dest: int, msg) -> None:
        """Account for messages swallowed by a failure."""
        now = self.system.engine.now
        kind = msg.__class__
        if kind is QueryMessage or kind is ResponseMessage:
            # the query can never complete: record it as dropped
            self.system.stats.record_drop(now, reason="failure")


def unreachable_nodes(system: System) -> List[int]:
    """Nodes whose every host is currently failed (lookup black holes)."""
    failed = system.transport.failed
    out = []
    for node in range(len(system.ns)):
        hosts = [p.sid for p in system.peers if p.hosts(node)]
        if hosts and all(h in failed for h in hosts):
            out.append(node)
    return out
