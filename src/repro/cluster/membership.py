"""Ownership transfer and server membership changes.

Section 2.3: "Inconsistent routing state (nodes leaving or joining the
system) will manifest in less precise forwarding steps" -- the protocol
tolerates ownership moving between servers because maps are soft state:
queries that land on the old owner take a stale hop and recover.

This module implements the mechanics that create such inconsistency:

* :func:`transfer_ownership` -- move one node (data + meta + context)
  to a new owner; old maps around the network go stale and are
  corrected lazily (digests, map filtering, stale-hop recovery);
* :func:`retire_server` -- a server leaves gracefully: every owned
  node is transferred to designated (or round-robin) heirs, replicas
  are dropped;
* :func:`add_server` -- a new server joins and receives ownership of a
  set of nodes.

None of these notify other servers: dissemination is strictly in-band,
matching the protocol's soft-state philosophy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.cluster.system import System
from repro.server.peer import Peer


def transfer_ownership(system: System, node: int, new_owner: int) -> None:
    """Move ``node``'s ownership (data, meta, context) to ``new_owner``.

    The old owner forgets the node entirely; the new owner adopts it
    with full routing context.  Nobody else is told -- their maps now
    contain a stale entry that the soft-state machinery will launder.

    Raises:
        ValueError: if ``new_owner`` is invalid or already owns the node.
    """
    if not 0 <= new_owner < len(system.peers):
        raise ValueError(f"no server {new_owner}")
    old_owner = system.owner[node]
    if old_owner == new_owner:
        raise ValueError(f"server {new_owner} already owns node {node}")
    src = system.peers[old_owner]
    dst = system.peers[new_owner]

    # capture state to move before tearing down the source
    meta = src.metadata.meta(node)
    data = src.metadata.get_data(node)
    context = {
        nbr: list(src.maps.get(nbr, ())) for nbr in system.ns.neighbors(node)
    }
    node_map = [s for s in src.maps.get(node, ()) if s != src.sid]

    _drop_owned(src, node)

    # install at the destination (replica first if it held one)
    if node in dst.replicas:
        dst.evict_replica(node, system.engine.now)
    dst.adopt_node(node)
    dst.metadata._meta[node] = meta  # move, not copy: owner-only state
    if data is not None:
        dst.metadata.set_data(node, data)
    for s in node_map:
        entry = dst.maps[node]
        if s not in entry and len(entry) < dst.cfg.rmap:
            entry.append(s)
    for nbr, nbr_map in context.items():
        dst.pin(nbr, nbr_map)
    system.owner[node] = new_owner

    # The transfer handshake also refreshes the node's *context
    # holders*: every server keeping a topology-imposed (pinned) map
    # for this node -- the hosts of its namespace neighbors -- learns
    # the new owner, exactly as a real ownership hand-off would notify
    # them.  Ad-hoc state (caches) stays stale: that is soft state.
    for p in system.peers:
        if p.sid == new_owner:
            continue
        if node not in p.pin_refs:
            continue
        entry = p.maps.get(node)
        if entry is None:
            continue
        if old_owner in entry:
            entry.remove(old_owner)
        if new_owner not in entry:
            if len(entry) >= p.cfg.rmap:
                entry.pop()
            entry.insert(0, new_owner)


def _drop_owned(peer: Peer, node: int) -> None:
    """Remove an owned node and its pins from ``peer``."""
    peer.owned.discard(node)
    peer.store.untrack_owned(node)
    peer.ranking.forget(node)
    peer.metadata._meta.pop(node, None)
    peer.metadata._data.pop(node, None)
    peer.adverts_recent.pop(node, None)
    for nbr in peer.ns.neighbors(node):
        peer.unpin(nbr)
    refs = peer.pin_refs.get(node, 0)
    entry = peer.maps.get(node)
    if entry is not None:
        entry[:] = [s for s in entry if s != peer.sid]
        if refs == 0 and not entry:
            peer.maps.pop(node, None)
    if peer.digest is not None:
        peer.digest.rebuild(peer.iter_hosted())


def retire_server(
    system: System,
    sid: int,
    heirs: Optional[Sequence[int]] = None,
) -> Dict[int, int]:
    """Gracefully remove a server: hand every owned node to an heir.

    Args:
        heirs: candidate new owners (default: every other server),
            assigned round-robin.

    Returns:
        ``{node: new_owner}`` for every transferred node.

    The retired server keeps running (it can still route/forward on
    stale inbound traffic) but owns nothing and drops its replicas; to
    take it off the network entirely, combine with
    :class:`repro.cluster.failures.FailureInjector`.
    """
    peer = system.peers[sid]
    if heirs is None:
        heirs = [p.sid for p in system.peers if p.sid != sid]
    heirs = [h for h in heirs if h != sid]
    if not heirs:
        raise ValueError("no heirs available")
    moved: Dict[int, int] = {}
    now = system.engine.now
    for node in list(peer.replicas):
        peer.evict_replica(node, now)
    for i, node in enumerate(sorted(peer.owned)):
        heir = heirs[i % len(heirs)]
        transfer_ownership(system, node, heir)
        moved[node] = heir
    return moved


def add_server(system: System, take_nodes: Iterable[int]) -> int:
    """Join a new server and transfer it ownership of ``take_nodes``.

    Returns the new server id.  The newcomer learns bootstrap load
    info for a few random peers, mirroring initial wiring.
    """
    from repro.filters.digest import Digest, DigestDirectory

    sid = len(system.peers)
    peer = Peer(sid, system, owned=())
    template = system.peers[0].digest
    peer.digest = Digest(
        capacity=max(16, template.bloom.n_bits // 8),
        owner_server=sid,
    )
    # share geometry with the fleet so snapshots stay cross-evaluable
    peer.digest._bloom = template.bloom.__class__(
        template.bloom.n_bits, template.bloom.n_hashes,
        salt=template.bloom._salt,
    )
    peer.digest.bloom.pos_cache = template.bloom.pos_cache
    peer.digest_dir = DigestDirectory(
        peer.digest, max_peers=system.cfg.digest_dir_max
    )
    system.peers.append(peer)
    system.transport.register(sid, peer.deliver)

    rng = system.rng_streams.stream(f"join-{sid}")
    k = min(system.cfg.bootstrap_known_peers, sid)
    if k > 0:
        for s in rng.sample(range(sid), k):
            peer.known_loads[s] = (0.0, system.engine.now)

    for node in take_nodes:
        transfer_ownership(system, node, sid)
    return sid
