"""The assembled simulated TerraDir system.

:class:`System` owns the engine, transport, namespace, peers, and the
:class:`SystemStats` collector every component reports into.  It also
drives periodic maintenance (load-window rolls, ranking rescales, load
sampling, idle-replica eviction) as a single global process to keep
event-heap pressure low.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.config import SystemConfig
from repro.namespace.tree import Namespace
from repro.net.transport import Transport
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.stats import LatencyStats, TimeSeries


class SystemStats:
    """All metrics the paper's evaluation section reports.

    Time series use 1-second bins to match the paper's per-second plots.
    """

    __slots__ = (
        "injected",
        "drops",
        "completions",
        "replicas_created",
        "replicas_evicted",
        "loads",
        "latency",
        "n_injected",
        "n_completed",
        "n_dropped",
        "drop_reasons",
        "n_stale_hops",
        "hops_sum",
        "route_sources",
        "level_replicas",
        "level_evictions",
    )

    def __init__(self, max_depth: int) -> None:
        self.injected = TimeSeries()
        self.drops = TimeSeries()
        self.completions = TimeSeries()
        self.replicas_created = TimeSeries()
        self.replicas_evicted = TimeSeries()
        self.loads = TimeSeries()
        self.latency = LatencyStats()
        self.n_injected = 0
        self.n_completed = 0
        self.n_dropped = 0
        self.drop_reasons: Dict[str, int] = {}
        self.n_stale_hops = 0
        self.hops_sum = 0
        self.route_sources: Dict[str, int] = {}
        self.level_replicas = [0] * (max_depth + 1)
        self.level_evictions = [0] * (max_depth + 1)

    # -- recording hooks (called from peers) -----------------------------

    def record_injected(self, now: float) -> None:
        self.n_injected += 1
        self.injected.add(now)

    def record_drop(self, now: float, reason: str = "queue") -> None:
        self.n_dropped += 1
        self.drops.add(now)
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def record_completion(
        self, now: float, latency: float, hops: int, stale_hops: int
    ) -> None:
        self.n_completed += 1
        self.completions.add(now)
        self.latency.record(latency)
        self.hops_sum += hops

    def record_forward(self, source: str) -> None:
        self.route_sources[source] = self.route_sources.get(source, 0) + 1

    def record_stale_hop(self, now: float) -> None:
        self.n_stale_hops += 1

    def record_replica_created(self, now: float, level: int) -> None:
        self.replicas_created.add(now)
        self.level_replicas[level] += 1

    def record_replica_evicted(self, now: float, level: int) -> None:
        self.replicas_evicted.add(now)
        self.level_evictions[level] += 1

    def sample_load(self, now: float, load: float) -> None:
        self.loads.observe(now, load)

    # -- derived metrics ---------------------------------------------------

    @property
    def drop_fraction(self) -> float:
        return self.n_dropped / self.n_injected if self.n_injected else 0.0

    @property
    def completion_fraction(self) -> float:
        return self.n_completed / self.n_injected if self.n_injected else 0.0

    @property
    def mean_hops(self) -> float:
        return self.hops_sum / self.n_completed if self.n_completed else 0.0

    @property
    def n_replicas_created(self) -> int:
        return sum(self.level_replicas)

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline aggregates (handy for tables/tests)."""
        return {
            "injected": float(self.n_injected),
            "completed": float(self.n_completed),
            "dropped": float(self.n_dropped),
            "drop_fraction": self.drop_fraction,
            "mean_latency": self.latency.mean,
            "mean_hops": self.mean_hops,
            "replicas_created": float(self.n_replicas_created),
            "stale_hops": float(self.n_stale_hops),
        }


class System:
    """A fully wired simulated TerraDir deployment.

    Build one with :func:`repro.cluster.builder.build_system`; drive it
    with a workload (:mod:`repro.workload`) and :meth:`run_until`.
    """

    __slots__ = (
        "ns",
        "cfg",
        "engine",
        "transport",
        "stats",
        "rng_streams",
        "peers",
        "owner",
        "_qid",
        "_maintenance_scheduled",
        "on_inject",
    )

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        engine: Engine,
        owner: List[int],
    ) -> None:
        self.ns = ns
        self.cfg = cfg
        self.engine = engine
        self.transport = Transport(
            engine, cfg.net_delay, net_jitter=cfg.net_jitter,
            jitter_seed=cfg.seed,
        )
        self.stats = SystemStats(ns.max_depth)
        self.rng_streams = RngStreams(cfg.seed)
        self.peers: List = []
        self.owner = owner
        self._qid = 0
        self._maintenance_scheduled = False
        self.on_inject = None  # optional (now, src, dest) tap for tracing

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def inject(self, src_server: int, dest_node: int) -> int:
        """Initiate a lookup for ``dest_node`` at ``src_server``."""
        self._qid += 1
        if self.on_inject is not None:
            self.on_inject(self.engine.now, src_server, dest_node)
        self.peers[src_server].inject(dest_node, self._qid)
        return self._qid

    def lookup_name(self, src_server: int, name: str) -> int:
        """Inject a lookup by fully-qualified name."""
        return self.inject(src_server, self.ns.id_of(name))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def start_maintenance(self) -> None:
        """Schedule the recurring maintenance tick (idempotent)."""
        if self._maintenance_scheduled:
            return
        self._maintenance_scheduled = True
        self.engine.schedule_after(self.cfg.load_window, self._tick_windows)
        self.engine.schedule_after(
            self.cfg.rank_rescale_interval, self._tick_ranking
        )
        if self.cfg.replica_idle_timeout > 0:
            self.engine.schedule_after(
                self.cfg.replica_idle_timeout, self._tick_idle_eviction
            )

    def _tick_windows(self) -> None:
        now = self.engine.now
        sample = (
            self.cfg.sample_loads_every > 0
            and int(now / self.cfg.load_window)
            % max(1, int(round(self.cfg.sample_loads_every / self.cfg.load_window)))
            == 0
        )
        stats = self.stats
        for peer in self.peers:
            if peer.failed:
                continue
            load = peer.roll_window(now)
            if sample:
                stats.sample_load(now, load)
        self.engine.schedule_after(self.cfg.load_window, self._tick_windows)

    def _tick_ranking(self) -> None:
        for peer in self.peers:
            peer.rescale_ranking()
        self.engine.schedule_after(
            self.cfg.rank_rescale_interval, self._tick_ranking
        )

    def _tick_idle_eviction(self) -> None:
        now = self.engine.now
        for peer in self.peers:
            peer.evict_idle_replicas(now)
        self.engine.schedule_after(
            self.cfg.replica_idle_timeout, self._tick_idle_eviction
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run_until(self, t: float, progress_every: float = 0.0) -> None:
        """Advance the simulation clock to ``t``.

        Args:
            progress_every: print a one-line progress report every this
                many simulated seconds (0 disables) -- handy for
                paper-scale runs that take minutes of wall time.
        """
        self.start_maintenance()
        if progress_every <= 0:
            self.engine.run(until=t)
            return
        next_mark = self.engine.now + progress_every
        while self.engine.now < t:
            self.engine.run(until=min(next_mark, t))
            if self.engine.now >= next_mark:
                s = self.stats
                print(
                    f"[t={self.engine.now:8.1f}s] injected={s.n_injected} "
                    f"completed={s.n_completed} dropped={s.n_dropped} "
                    f"replicas={s.n_replicas_created}",
                    flush=True,
                )
                next_mark += progress_every

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def total_replicas(self) -> int:
        """Replicas currently hosted across all servers."""
        return sum(len(p.replicas) for p in self.peers)

    def loads(self, now: Optional[float] = None) -> List[float]:
        t = self.engine.now if now is None else now
        return [p.meter.load(t) for p in self.peers]

    def hosted_counts(self) -> List[int]:
        return [p.n_hosted for p in self.peers]

    def hosts_of(self, node: int) -> List[int]:
        """Ground truth: every server currently hosting ``node``."""
        return [p.sid for p in self.peers if p.hosts(node)]

    def __repr__(self) -> str:
        return (
            f"System(servers={len(self.peers)}, nodes={len(self.ns)}, "
            f"t={self.engine.now:.2f})"
        )
