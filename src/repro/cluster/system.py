"""The assembled simulated TerraDir system.

:class:`System` owns the engine, transport, namespace, peers, and the
stats sink every component reports into -- a full
:class:`~repro.sim.stats.SystemStats` collector by default, or any
other :class:`~repro.sim.stats.StatsSink` (``NullSink`` for hot
benchmark runs, ``MultiSink`` for composition).  It also drives
periodic maintenance (load-window rolls, ranking rescales, load
sampling, idle-replica eviction) as a single global process to keep
event-heap pressure low.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.config import SystemConfig
from repro.namespace.tree import Namespace
from repro.net.transport import ShardTransport, Transport, shard_sids
from repro.runtime.sim_runtime import SimRuntime
from repro.sim.engine import Engine, ShardError
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsSink, SystemStats
from repro.sim.timerwheel import TimerWheel

__all__ = ["ShardSystem", "System", "SystemStats"]


class System:
    """A fully wired simulated TerraDir deployment.

    Build one with :func:`repro.cluster.builder.build_system`; drive it
    with a workload (:mod:`repro.workload`) and :meth:`run_until`.
    """

    __slots__ = (
        "ns",
        "cfg",
        "engine",
        "transport",
        "timers",
        "runtime",
        "stats",
        "rng_streams",
        "peers",
        "owner",
        "_qid",
        "_maintenance_scheduled",
        "on_inject",
    )

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        engine: Engine,
        owner: List[int],
        stats: Optional[StatsSink] = None,
    ) -> None:
        self.ns = ns
        self.cfg = cfg
        self.engine = engine
        self.transport = self._build_transport(engine, cfg)
        # cancel-heavy timers (client lookup timeouts) stay off the heap
        self.timers = TimerWheel(engine)
        # the seam protocol components schedule and send through; its
        # methods *are* the engine/transport/wheel bound methods, so
        # nothing observable changes versus the old direct reach-through
        self.runtime = SimRuntime(engine, self.transport, self.timers)
        self.stats = stats if stats is not None else SystemStats(ns.max_depth)
        self.rng_streams = RngStreams(cfg.seed)
        self.peers: List = []
        self.owner = owner
        self._qid = 0
        self._maintenance_scheduled = False
        self.on_inject = None  # optional (now, src, dest) tap for tracing

    def _build_transport(self, engine: Engine, cfg: SystemConfig) -> Transport:
        """Transport factory; :class:`ShardSystem` substitutes its own."""
        return Transport(
            engine, cfg.net_delay, net_jitter=cfg.net_jitter,
            jitter_seed=cfg.seed,
        )

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def inject(self, src_server: int, dest_node: int) -> int:
        """Initiate a lookup for ``dest_node`` at ``src_server``."""
        self._qid += 1
        if self.on_inject is not None:
            self.on_inject(self.engine.now, src_server, dest_node)
        self.peers[src_server].inject(dest_node, self._qid)
        return self._qid

    def lookup_name(self, src_server: int, name: str) -> int:
        """Inject a lookup by fully-qualified name."""
        return self.inject(src_server, self.ns.id_of(name))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def start_maintenance(self) -> None:
        """Schedule the recurring maintenance tick (idempotent)."""
        if self._maintenance_scheduled:
            return
        self._maintenance_scheduled = True
        self.engine.schedule_after(self.cfg.load_window, self._tick_windows)
        self.engine.schedule_after(
            self.cfg.rank_rescale_interval, self._tick_ranking
        )
        if self.cfg.replica_idle_timeout > 0:
            self.engine.schedule_after(
                self.cfg.replica_idle_timeout, self._tick_idle_eviction
            )

    def _tick_windows(self) -> None:
        now = self.engine.now
        sample = (
            self.cfg.sample_loads_every > 0
            and int(now / self.cfg.load_window)
            % max(1, int(round(self.cfg.sample_loads_every / self.cfg.load_window)))
            == 0
        )
        stats = self.stats
        for peer in self.peers:
            if peer.failed:
                continue
            load = peer.roll_window(now)
            if sample:
                stats.sample_load(now, load)
        self.engine.schedule_after(self.cfg.load_window, self._tick_windows)

    def _tick_ranking(self) -> None:
        for peer in self.peers:
            peer.rescale_ranking()
        self.engine.schedule_after(
            self.cfg.rank_rescale_interval, self._tick_ranking
        )

    def _tick_idle_eviction(self) -> None:
        now = self.engine.now
        for peer in self.peers:
            peer.evict_idle_replicas(now)
        self.engine.schedule_after(
            self.cfg.replica_idle_timeout, self._tick_idle_eviction
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run_until(self, t: float, progress_every: float = 0.0) -> None:
        """Advance the simulation clock to ``t``.

        Args:
            progress_every: print a one-line progress report every this
                many simulated seconds (0 disables) -- handy for
                paper-scale runs that take minutes of wall time.
        """
        self.start_maintenance()
        if progress_every <= 0:
            self.engine.run(until=t)
            return
        next_mark = self.engine.now + progress_every
        while self.engine.now < t:
            self.engine.run(until=min(next_mark, t))
            if self.engine.now >= next_mark:
                s = self.stats
                if isinstance(s, SystemStats):
                    print(
                        f"[t={self.engine.now:8.1f}s] injected={s.n_injected} "
                        f"completed={s.n_completed} dropped={s.n_dropped} "
                        f"replicas={s.n_replicas_created}",
                        flush=True,
                    )
                else:  # leaner sinks carry no aggregates to report
                    print(f"[t={self.engine.now:8.1f}s]", flush=True)
                next_mark += progress_every

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def total_replicas(self) -> int:
        """Replicas currently hosted across all servers."""
        return sum(len(p.replicas) for p in self.peers)

    def loads(self, now: Optional[float] = None) -> List[float]:
        t = self.engine.now if now is None else now
        return [p.meter.load(t) for p in self.peers]

    def hosted_counts(self) -> List[int]:
        return [p.n_hosted for p in self.peers]

    def hosts_of(self, node: int) -> List[int]:
        """Ground truth: every server currently hosting ``node``."""
        return [p.sid for p in self.peers if p.hosts(node)]

    def __repr__(self) -> str:
        return (
            f"System(servers={len(self.peers)}, nodes={len(self.ns)}, "
            f"t={self.engine.now:.2f})"
        )


class ShardSystem(System):
    """One shard's slice of a sharded deployment.

    Only the servers assigned to this shard are materialised;
    ``peers`` stays a full-length, sid-indexed list (``None`` for
    remote servers) so existing sid-based indexing keeps working, with
    ``local_peers`` as the dense ascending-sid view every local loop
    (maintenance ticks, introspection) iterates.

    Workload injection is pre-generated: the coordinator partitions the
    arrival schedule (:func:`repro.workload.arrivals.iter_arrivals`)
    across shards with globally assigned query ids, and :meth:`feed`
    replays this shard's slice through a single self-rescheduling
    feeder event -- the same one-pending-event discipline as the
    delivery ring.

    Build one with :func:`repro.cluster.builder.build_shard_system`.
    """

    __slots__ = (
        "shard_id",
        "n_shards",
        "local_sids",
        "local_peers",
        "_arrivals",
        "_arrival_idx",
    )

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        engine: Engine,
        owner: List[int],
        shard_id: int,
        n_shards: int,
        stats: Optional[StatsSink] = None,
    ) -> None:
        if not 0 <= shard_id < n_shards:
            raise ValueError(f"shard_id {shard_id} out of range for {n_shards}")
        # set before super().__init__: _build_transport reads them
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.local_sids = shard_sids(shard_id, cfg.n_servers, n_shards)
        super().__init__(ns, cfg, engine, owner, stats=stats)
        self.peers = [None] * cfg.n_servers
        self.local_peers: List = []
        self._arrivals: Sequence[Tuple[float, int, int, int]] = ()
        self._arrival_idx = 0

    def _build_transport(self, engine: Engine, cfg: SystemConfig) -> Transport:
        return ShardTransport(
            engine, cfg.net_delay, shard_id=self.shard_id,
            n_shards=self.n_shards, n_servers=cfg.n_servers,
            net_jitter=cfg.net_jitter, jitter_seed=cfg.seed,
        )

    # ------------------------------------------------------------------
    # pre-generated workload
    # ------------------------------------------------------------------

    def inject(self, src_server: int, dest_node: int, qid: Optional[int] = None) -> int:
        """Initiate a lookup with a *pre-assigned* global query id.

        Sharded runs cannot mint query ids locally (ids must match the
        serial run's arrival-order assignment), so the coordinator
        passes them in with each arrival.
        """
        if qid is None:
            raise ShardError(
                "ShardSystem.inject needs a pre-assigned qid; drive "
                "sharded runs through the WindowedCoordinator"
            )
        self._qid = qid
        if self.on_inject is not None:
            self.on_inject(self.engine.now, src_server, dest_node)
        self.peers[src_server].inject(dest_node, qid)
        return qid

    def feed(self, arrivals: Sequence[Tuple[float, int, int, int]]) -> None:
        """Schedule this shard's ``(time, src, dest, qid)`` arrivals."""
        self._arrivals = arrivals
        self._arrival_idx = 0
        if arrivals:
            self.engine.schedule(arrivals[0][0], self._next_arrival)

    def _next_arrival(self) -> None:
        t, src, dest, qid = self._arrivals[self._arrival_idx]
        self._arrival_idx += 1
        self.inject(src, dest, qid=qid)
        if self._arrival_idx < len(self._arrivals):
            self.engine.schedule(
                self._arrivals[self._arrival_idx][0], self._next_arrival
            )

    # ------------------------------------------------------------------
    # maintenance over local peers only
    # ------------------------------------------------------------------

    def _tick_windows(self) -> None:
        now = self.engine.now
        sample = (
            self.cfg.sample_loads_every > 0
            and int(now / self.cfg.load_window)
            % max(1, int(round(self.cfg.sample_loads_every / self.cfg.load_window)))
            == 0
        )
        stats = self.stats
        for peer in self.local_peers:
            if peer.failed:
                continue
            load = peer.roll_window(now)
            if sample:
                stats.sample_load(now, load)
        self.engine.schedule_after(self.cfg.load_window, self._tick_windows)

    def _tick_ranking(self) -> None:
        for peer in self.local_peers:
            peer.rescale_ranking()
        self.engine.schedule_after(
            self.cfg.rank_rescale_interval, self._tick_ranking
        )

    def _tick_idle_eviction(self) -> None:
        now = self.engine.now
        for peer in self.local_peers:
            peer.evict_idle_replicas(now)
        self.engine.schedule_after(
            self.cfg.replica_idle_timeout, self._tick_idle_eviction
        )

    # ------------------------------------------------------------------
    # introspection over local peers only
    # ------------------------------------------------------------------

    def total_replicas(self) -> int:
        return sum(len(p.replicas) for p in self.local_peers)

    def loads(self, now: Optional[float] = None) -> List[float]:
        t = self.engine.now if now is None else now
        return [p.meter.load(t) for p in self.local_peers]

    def hosted_counts(self) -> List[int]:
        return [p.n_hosted for p in self.local_peers]

    def hosts_of(self, node: int) -> List[int]:
        return [p.sid for p in self.local_peers if p.hosts(node)]

    def __repr__(self) -> str:
        return (
            f"ShardSystem(shard={self.shard_id}/{self.n_shards}, "
            f"servers={len(self.local_peers)}/{self.cfg.n_servers}, "
            f"nodes={len(self.ns)}, t={self.engine.now:.2f})"
        )
