"""The paper's primary contribution: routing + adaptive soft-state replication."""

from repro.core.load import BusyWindowLoadMeter
from repro.core.maps import NodeMap, merge_maps
from repro.core.ranking import NodeRanking
from repro.core.replication import ReplicationManager
from repro.core.routing import RouteDecision, RouteAction

__all__ = [
    "BusyWindowLoadMeter",
    "NodeMap",
    "NodeRanking",
    "ReplicationManager",
    "RouteAction",
    "RouteDecision",
    "merge_maps",
]
