"""Normalized server load metric (paper section 3.1).

The paper requires a load metric that is (1) *linearly comparable* and
(2) *locally defined*, valued in [0, 1], and evaluates the protocol
with the simplest such metric: the fraction of server busy time over a
window period w (e.g. half a second).  :class:`BusyWindowLoadMeter`
implements exactly that, plus the *hysteresis adjustment* the creation
protocol applies after a transfer (step 4): both parties immediately
book the targeted post-transfer load so they do not thrash before the
measured windows catch up; the adjustment decays as real measurements
arrive.
"""

from __future__ import annotations

from typing import Optional


class BusyWindowLoadMeter:
    """Busy-fraction-over-window load metric with hysteresis adjustment.

    Usage: call :meth:`service_started` / :meth:`service_finished`
    around each serviced request, :meth:`roll` at each window boundary,
    and read :meth:`load` anywhere in between.

    ``load()`` combines the last completed window's busy fraction, the
    current window's partial busy fraction (so sudden spikes are seen
    before the window closes), and the decaying hysteresis adjustment;
    the result is clamped to [0, 1].
    """

    __slots__ = (
        "window",
        "_busy_since",
        "_busy_acc",
        "_window_start",
        "_last_load",
        "_adjust",
        "adjust_decay",
        "n_windows",
    )

    def __init__(self, window: float = 0.5, adjust_decay: float = 0.5) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        if not 0.0 <= adjust_decay <= 1.0:
            raise ValueError("adjust_decay must be in [0, 1]")
        self.window = window
        self._busy_since: Optional[float] = None
        self._busy_acc = 0.0
        self._window_start = 0.0
        self._last_load = 0.0
        self._adjust = 0.0
        self.adjust_decay = adjust_decay
        self.n_windows = 0

    # ------------------------------------------------------------------
    # busy-time accounting
    # ------------------------------------------------------------------

    def service_started(self, now: float) -> None:
        if self._busy_since is not None:
            raise RuntimeError("service already in progress")
        self._busy_since = now

    def service_finished(self, now: float) -> None:
        if self._busy_since is None:
            raise RuntimeError("no service in progress")
        self._busy_acc += now - self._busy_since
        self._busy_since = None

    @property
    def busy(self) -> bool:
        return self._busy_since is not None

    # ------------------------------------------------------------------
    # windowing
    # ------------------------------------------------------------------

    def roll(self, now: float) -> float:
        """Close the current window at ``now``; return its busy fraction.

        An in-progress service is split across the boundary.
        """
        busy = self._busy_acc
        if self._busy_since is not None:
            busy += now - self._busy_since
            self._busy_since = now
        span = now - self._window_start
        self._last_load = min(1.0, busy / span) if span > 0 else 0.0
        self._busy_acc = 0.0
        self._window_start = now
        self._adjust *= self.adjust_decay
        if abs(self._adjust) < 1e-6:
            self._adjust = 0.0
        self.n_windows += 1
        return self._last_load

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def measured(self) -> float:
        """The last completed window's busy fraction (no adjustment)."""
        return self._last_load

    def load(self, now: Optional[float] = None) -> float:
        """The current normalized load in [0, 1].

        With ``now`` given, blends in the current partial window so
        spikes are visible before the next roll.
        """
        val = self._last_load
        if now is not None and now > self._window_start:
            busy = self._busy_acc
            if self._busy_since is not None:
                busy += now - self._busy_since
            span = now - self._window_start
            frac = min(1.0, span / self.window)
            partial = min(1.0, busy / span)
            # weight the partial window by how much of it has elapsed
            val = (1.0 - frac) * val + frac * partial
        val += self._adjust
        return min(1.0, max(0.0, val))

    # ------------------------------------------------------------------
    # hysteresis (creation protocol step 4)
    # ------------------------------------------------------------------

    def apply_adjustment(self, delta: float) -> None:
        """Book an immediate load change of ``delta`` (may be negative).

        After replicating, the source books ``-(ls - lt)/2`` and the
        target ``+(ls - lt)/2`` so both behave as if the ideal load
        redistribution already happened, preventing replica thrashing.
        """
        self._adjust += delta
