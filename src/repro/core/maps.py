"""Node mapping management (paper section 3.7).

A *node map* associates a node with a possibly incomplete, possibly
stale list of servers that own or replicate it.  Maps are bounded to
``rmap`` entries both at rest and in flight.  Merging keeps advertised
new-replica entries first and fills the remainder at random from the
union; filtering drops entries whose digest test fails.

Maps are stored as plain ``list[int]`` on the hot path; the
:class:`NodeMap` wrapper exists for the public API and tests.
"""

from __future__ import annotations

import random
from array import array
from typing import Callable, Iterable, List, Optional, Sequence


def merge_maps(
    mine: Sequence[int],
    incoming: Sequence[int],
    rmap: int,
    rng: random.Random,
    advertised: Sequence[int] = (),
) -> List[int]:
    """Merge two maps for the same node into one of at most ``rmap`` entries.

    Paper rules: (i) entries in ``advertised`` (the most recently
    created replicas the owner wants traffic diverted to) are always
    kept, (ii) the rest of the result is chosen at random from the
    remaining union.

    The same pair of maps may be merged twice with different draws --
    once for the map kept at the server, once for the map propagated
    with the query -- which is why this is a pure function of an RNG.
    """
    if rmap < 1:
        raise ValueError("rmap must be >= 1")
    out: List[int] = []
    seen = set()
    for s in advertised:
        if s not in seen:
            out.append(s)
            seen.add(s)
            if len(out) >= rmap:
                return out
    pool = [s for s in list(mine) + list(incoming) if s not in seen]
    # dedupe the pool preserving first occurrence
    deduped: List[int] = []
    pseen = set()
    for s in pool:
        if s not in pseen:
            deduped.append(s)
            pseen.add(s)
    room = rmap - len(out)
    if len(deduped) <= room:
        out.extend(deduped)
    else:
        out.extend(rng.sample(deduped, room))
    return out


def select_host(
    node_map: Sequence[int],
    rng: random.Random,
    exclude: Optional[int] = None,
) -> Optional[int]:
    """Pick a host uniformly at random from a node map (paper: replica
    selection chooses the destination at random from available choice).

    Args:
        exclude: a server id to skip (typically the selecting server
            itself); None disables exclusion.

    Returns:
        A server id, or None when no eligible entry exists.
    """
    if exclude is None:
        return rng.choice(list(node_map)) if node_map else None
    eligible = [s for s in node_map if s != exclude]
    if not eligible:
        return None
    return rng.choice(eligible)


class NodeMap:
    """Public-API wrapper around a bounded node map.

    >>> m = NodeMap(node=7, rmap=3)
    >>> m.add(1), m.add(2), m.add(1)
    (True, True, False)
    >>> sorted(m.servers)
    [1, 2]
    """

    __slots__ = ("node", "rmap", "_servers")

    def __init__(
        self, node: int, rmap: int, servers: Iterable[int] = ()
    ) -> None:
        if rmap < 1:
            raise ValueError("rmap must be >= 1")
        self.node = node
        self.rmap = rmap
        # bounded (<= rmap) and int-only: a C int array, not a list of
        # boxed ints
        self._servers = array("i")
        for s in servers:
            self.add(s)

    @property
    def servers(self) -> List[int]:
        return list(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server: int) -> bool:
        return server in self._servers

    def add(self, server: int) -> bool:
        """Add an entry if absent and there is room; True if added."""
        if server in self._servers:
            return False
        if len(self._servers) >= self.rmap:
            return False
        self._servers.append(server)
        return True

    def add_preferred(self, server: int, rng: random.Random) -> None:
        """Add an entry, evicting a random other entry when full.

        Used for advertised new replicas, which must enter the map so
        excess traffic is diverted to them quickly.  The eviction draw
        comes from the caller's seeded stream, never ambient entropy.
        """
        if server in self._servers:
            return
        if len(self._servers) >= self.rmap:
            self._servers.pop(rng.randrange(len(self._servers)))
        self._servers.insert(0, server)

    def discard(self, server: int) -> bool:
        """Remove an entry if present; True if removed."""
        try:
            self._servers.remove(server)
            return True
        except ValueError:
            return False

    def merge(
        self,
        incoming: Sequence[int],
        rng: random.Random,
        advertised: Sequence[int] = (),
    ) -> None:
        self._servers = array(
            "i", merge_maps(self._servers, incoming, self.rmap, rng, advertised)
        )

    def filter(self, keep_predicate: Callable[[int], bool]) -> int:
        """Drop entries failing ``keep_predicate(server)``; return #dropped.

        This is the digest-based map pruning of paper section 3.6.2:
        the predicate should return False only when a digest test for
        the node *fails* (a conservative, no-false-removal operation,
        modulo digest staleness).
        """
        before = len(self._servers)
        self._servers = array(
            "i", [s for s in self._servers if keep_predicate(s)]
        )
        return before - len(self._servers)

    def select(
        self, rng: random.Random, exclude: Optional[int] = None
    ) -> Optional[int]:
        return select_host(self._servers, rng, exclude)

    def __repr__(self) -> str:
        return f"NodeMap(node={self.node}, servers={list(self._servers)})"
