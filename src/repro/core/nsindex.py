"""Namespace ancestor index: O(depth) closest-member queries.

The per-hop routing decision asks one question of a peer's local state
twice (once for hosted nodes, once for the LRU cache): *which member is
closest to the destination, breaking ties by iteration order?*  The
scan implementations (:func:`repro.core.routing.closest_hosted`,
:func:`repro.core.routing.scan_cache`) answer it in
O(|members| * depth) per hop, which caps large-namespace runs.

:class:`AncestorIndex` answers it in O(depth(dest)) dict probes by
bucketing members under every node of their ancestor chain.  For a
member ``v`` and destination ``t``, the namespace distance is

    d(v, t) = depth(v) + depth(t) - 2 * lca_depth(v, t)

and ``lca(v, t)`` is always on ``t``'s (precomputed) ancestor chain.
Walking that chain deepest-first, the bucket at ancestor ``a`` (depth
``da``) contains exactly the members with ``lca_depth(v, t) >= da``,
and its best contribution is its minimum-depth member.  So the closest
member overall is found by probing ``depth(t) + 1`` buckets -- the
state size never appears in the per-hop cost.

**Determinism contract.**  The scans break ties by "first member in
iteration order at a strictly smaller distance": hosted-list position
for the replica store, ``OrderedDict`` order (insertion order, updated
by ``move_to_end``) for the cache.  The winner is therefore the member
minimising the pair ``(distance, position)`` lexicographically.  The
index reproduces this exactly by stamping every member with a
monotonically increasing *sequence number* -- re-stamped on
:meth:`touch`, which is precisely what ``move_to_end`` does to an
``OrderedDict`` position -- and keeping each bucket as a lazy min-heap
ordered by ``(depth, seq)``.  Why per-bucket ``(depth, seq)`` minima
suffice:

* within one bucket, only minimum-depth members can attain the
  bucket's best distance (deeper members are strictly farther *at this
  lca level*), and among those the smallest seq wins;
* across levels, a member appears in every bucket above its true LCA
  with an *overestimated* distance there, but the overestimate exceeds
  its true distance by at least 2, and the deepest-first walk has
  already absorbed the true value into the running best -- so
  overestimates can neither win nor tie;
* pruning is exact: a bucket at depth ``da`` can only contain members
  at distance >= ``depth(t) - da``, so levels with
  ``depth(t) - da > best`` can neither improve nor tie and the walk
  stops at ``da = depth(t) - best``.

Stale heap entries (from :meth:`touch` re-stamps and :meth:`remove`)
are discarded lazily against the member table and compacted when a
bucket's heap grows past a small multiple of its live membership, so
all mutations stay O(depth) amortised.

**Memory.**  Deep in the tree most ancestors index exactly one member
(a member's near-ancestors are rarely shared), so single-member
buckets are stored as the bare entry tuple ``(depth, seq, node)``
instead of the general ``[heap, live]`` pair -- two fewer container
objects per bucket.  A tuple bucket is always live and current:
:meth:`touch` replaces it in place and :meth:`remove` deletes the
key, so the query path needs no staleness check for it.  At the
million-node scale this representation carries the bulk of the
index's buckets (DESIGN.md section 11).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple

if TYPE_CHECKING:
    from repro.namespace.tree import Namespace

#: "no bound" initial distance, matching the scan implementations.
NO_BOUND = 1 << 30

# bucket layout, two representations keyed by type:
#   tuple          -- a single live member's entry (depth, seq, node);
#                     never stale (touch replaces, remove deletes)
#   [heap, live]   -- general form: lazy min-heap of entry tuples plus
#                     the live-member count
_HEAP = 0
_LIVE = 1


class AncestorIndex:
    """Incrementally maintained ancestor -> candidate-bucket map.

    Mirrors an ordered member collection (the hosted list or the LRU
    cache): :meth:`add` appends at the back, :meth:`touch` moves a
    member to the back, :meth:`remove` deletes.  :meth:`closest`
    answers closest-member queries in O(depth(dest)).
    """

    __slots__ = ("_arena", "_off", "_depth", "_buckets", "_members", "_seq")

    def __init__(self, ns: "Namespace", members: Iterable[int] = ()) -> None:
        # ancestor chains are read straight out of the namespace's flat
        # arena (chain v = _arena[_off[v]:_off[v + 1]]): no per-chain
        # slice objects on the per-hop path
        self._arena = ns.anc_arena
        self._off = ns.anc_off
        self._depth = ns.depth
        # namespace node id -> [heap, live count]
        self._buckets: Dict[int, list] = {}
        # member node id -> current (valid) sequence stamp
        self._members: Dict[int, int] = {}
        self._seq = 0
        for v in members:
            self.add(v)

    # ------------------------------------------------------------------
    # membership mirror
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: int) -> bool:
        return node in self._members

    def nodes(self) -> Iterator[int]:
        """Live members, in no particular order."""
        return iter(self._members)

    def add(self, node: int) -> None:
        """Append ``node`` at the back of the mirrored order."""
        if node in self._members:
            raise ValueError(f"node {node} already indexed")
        self._seq += 1
        seq = self._seq
        self._members[node] = seq
        entry = (self._depth[node], seq, node)
        buckets = self._buckets
        arena = self._arena
        for i in range(self._off[node], self._off[node + 1]):
            a = arena[i]
            b = buckets.get(a)
            if b is None:
                buckets[a] = entry
            elif type(b) is tuple:
                heap = [b]
                heappush(heap, entry)
                buckets[a] = [heap, 2]
            else:
                heappush(b[_HEAP], entry)
                b[_LIVE] += 1

    def touch(self, node: int) -> None:
        """Move ``node`` to the back of the mirrored order (LRU touch)."""
        members = self._members
        cur = members.get(node)
        if cur is None:
            return
        if cur == self._seq:
            # already the most recently stamped member: re-stamping
            # cannot change relative order, so skip the heap pushes
            # (the common case under skewed workloads -- repeated hits
            # on the hottest entry)
            return
        self._seq += 1
        seq = self._seq
        members[node] = seq
        entry = (self._depth[node], seq, node)
        buckets = self._buckets
        arena = self._arena
        for i in range(self._off[node], self._off[node + 1]):
            a = arena[i]
            b = buckets[a]
            if type(b) is tuple:
                # the bucket's only live member is ``node`` itself:
                # replace the entry in place, nothing goes stale
                buckets[a] = entry
                continue
            heap = b[_HEAP]
            heappush(heap, entry)
            if len(heap) > 32 and len(heap) > 4 * b[_LIVE]:
                self._compact(a, b)

    def remove(self, node: int) -> None:
        """Drop ``node`` from the index (no-op if absent)."""
        if self._members.pop(node, None) is None:
            return
        buckets = self._buckets
        arena = self._arena
        for i in range(self._off[node], self._off[node + 1]):
            a = arena[i]
            b = buckets[a]
            if type(b) is tuple:
                del buckets[a]
                continue
            b[_LIVE] -= 1
            if b[_LIVE] == 0:
                del buckets[a]
            else:
                heap = b[_HEAP]
                if len(heap) > 32 and len(heap) > 4 * b[_LIVE]:
                    self._compact(a, b)

    def clear(self) -> None:
        self._buckets.clear()
        self._members.clear()

    def rebuild(self, ordered_members: Iterable[int]) -> None:
        """Reset to exactly ``ordered_members`` in iteration order."""
        self.clear()
        for v in ordered_members:
            self.add(v)

    def _compact(self, a: int, b: list) -> None:
        members = self._members
        heap = b[_HEAP]
        heap[:] = [e for e in heap if members.get(e[2]) == e[1]]
        if len(heap) == 1:
            # shrunk back to a single live member: demote to the
            # compact tuple representation
            self._buckets[a] = heap[0]
        else:
            heapify(heap)

    # ------------------------------------------------------------------
    # the query
    # ------------------------------------------------------------------

    def closest(self, dest: int, best_d: int = NO_BOUND) -> Tuple[int, int]:
        """The member strictly closer to ``dest`` than ``best_d`` that a
        linear scan in mirrored order would pick, or ``(-1, best_d)``.

        Matches the scans bit-for-bit: minimum distance first, then
        earliest iteration-order position (see the module docstring).
        """
        members = self._members
        if not members:
            return -1, best_d
        buckets = self._buckets
        arena = self._arena
        o_dest = self._off[dest]
        d_dest = self._off[dest + 1] - o_dest - 1
        best = -1
        best_seq = 0
        da = d_dest
        floor = d_dest - best_d
        if floor < 0:
            floor = 0
        while da >= floor:
            b = buckets.get(arena[o_dest + da])
            if b is not None:
                if type(b) is tuple:
                    # compact single-member bucket: always live
                    depth_v, seq, v = b
                else:
                    heap = b[_HEAP]
                    # discard stale heads (touched or removed members)
                    while heap:
                        top = heap[0]
                        if members.get(top[2]) == top[1]:
                            break
                        heappop(heap)
                    if not heap:
                        da -= 1
                        continue
                    depth_v, seq, v = heap[0]
                d = depth_v + d_dest - 2 * da
                if d < best_d:
                    best_d = d
                    best = v
                    best_seq = seq
                    floor = d_dest - best_d
                    if floor < 0:
                        floor = 0
                elif d == best_d and best >= 0 and seq < best_seq:
                    best = v
                    best_seq = seq
            da -= 1
        return best, best_d

    def __repr__(self) -> str:
        return (
            f"AncestorIndex(members={len(self._members)}, "
            f"buckets={len(self._buckets)})"
        )
