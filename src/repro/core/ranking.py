"""Load-based node ranking (paper section 3.2).

Each server assigns every hosted node a *weight* proportional to the
load incurred on the node's behalf: a counter incremented whenever a
query is processed for the node, rescaled periodically (multiplied by a
decay factor) so the ranking approximates *recent* demand.

The ranking answers two questions for the replication protocol:

* which top-k nodes to replicate so the transferred weight fraction
  reaches the target (creation step 3), and
* which lowest-ranked replicas to evict when Rfact demands room
  (deletion, section 3.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class NodeRanking:
    """Per-hosted-node demand counters with periodic exponential decay."""

    __slots__ = ("_weight", "decay")

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        self._weight: Dict[int, float] = {}
        self.decay = decay

    def __len__(self) -> int:
        return len(self._weight)

    def __contains__(self, node: int) -> bool:
        return node in self._weight

    def track(self, node: int) -> None:
        """Start tracking a newly hosted node (weight 0)."""
        self._weight.setdefault(node, 0.0)

    def forget(self, node: int) -> None:
        """Stop tracking (node no longer hosted)."""
        self._weight.pop(node, None)

    def hit(self, node: int, amount: float = 1.0) -> None:
        """Record routing work performed on ``node``'s behalf."""
        # untracked hits are dropped: transient queries may touch nodes
        # between host/unhost events
        if node in self._weight:
            self._weight[node] += amount

    def weight(self, node: int) -> float:
        return self._weight.get(node, 0.0)

    def total_weight(self) -> float:
        # det: ok(unordered-iteration) -- _weight's insertion order is
        # the host/track event order, which serial and sharded replay
        # reproduce draw-for-draw; sorting here would perturb the
        # pinned fixed-seed fingerprints for zero correctness gain
        return sum(self._weight.values())

    def rescale(self) -> None:
        """Periodic decay so the ranking tracks recent demand patterns."""
        d = self.decay
        for k in self._weight:
            self._weight[k] *= d

    def ranked(self, among: Optional[Iterable[int]] = None) -> List[Tuple[int, float]]:
        """Nodes by descending weight (ties broken by node id for determinism)."""
        items = (
            self._weight.items()
            if among is None
            else ((n, self._weight.get(n, 0.0)) for n in among)
        )
        return sorted(items, key=lambda kv: (-kv[1], kv[0]))

    def top_k_for_fraction(
        self, fraction: float, among: Optional[Iterable[int]] = None
    ) -> List[int]:
        """Smallest top-ranked prefix whose weight sum reaches ``fraction``
        of the total weight (creation protocol step 3).

        Always returns at least one node when any node is tracked, so an
        overloaded server sheds *something* even when weights are all
        zero (cold counters).
        """
        ranked = self.ranked(among)
        if not ranked:
            return []
        total = sum(w for _, w in ranked)
        if total <= 0.0:
            return [ranked[0][0]]
        target = max(0.0, min(1.0, fraction)) * total
        out: List[int] = []
        acc = 0.0
        for node, w in ranked:
            out.append(node)
            acc += w
            if acc >= target:
                break
        return out

    def bottom(self, k: int, among: Optional[Iterable[int]] = None) -> List[int]:
        """The ``k`` lowest-ranked nodes (eviction candidates)."""
        ranked = self.ranked(among)
        ranked.reverse()
        return [n for n, _ in ranked[:k]]
