"""The adaptive replication protocol (paper section 3).

Each peer owns one :class:`ReplicationManager` which implements:

* **Trigger** -- after every processed query the peer checks its load;
  above the high-water threshold ``l_high`` it opens a load-balancing
  session (at most one concurrent session per server).
* **Partner selection** -- among servers it knows about (load samples
  piggybacked on query traffic), pick the one with minimum *believed*
  load, probe it for its *actual* load, and require a gap of at least
  ``delta_min`` before shipping replicas.
* **What to ship** -- the smallest top-ranked set of hosted nodes whose
  weight fraction reaches ``(ls - lt) / (2 ls)`` -- the fraction that
  would equalise the two loads if demand followed the weights.
* **Hysteresis** -- both parties immediately book the ideal post-
  transfer loads (``ls,lt -> (ls+lt)/2``) so replication does not
  thrash before measured windows catch up.
* **Retry/back-off** -- a failed probe tries the next candidate, up to
  ``max_attempts``; then the session aborts and a new one may start
  after ``session_backoff``.
* **Replica admission at the target** -- accept when the load gap holds;
  installing beyond the replication-factor cap ``rfact * |owned|``
  evicts the target's lowest-ranked replicas first (section 3.5).

Control messages bypass the request queue and are counted separately;
the paper's claim that they are at least two orders of magnitude rarer
than queries is validated in the test suite.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, List, Optional, Set

if TYPE_CHECKING:
    from repro.server.peer import Peer

logger = logging.getLogger("repro.replication")

from repro.net.message import (
    ProbeMessage,
    ProbeReplyMessage,
    TransferAckMessage,
    TransferMessage,
)


class _Session:
    """State of one in-flight load-balancing session at its initiator."""

    __slots__ = ("sid", "attempts", "tried", "target", "awaiting", "timer")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.attempts = 0
        self.tried: Set[int] = set()
        self.target = -1
        self.awaiting = ""  # "probe_reply" | "ack"
        self.timer = None  # runtime cancel handle for the liveness timeout


class ReplicationManager:
    """Per-peer replica and mapping management engine."""

    __slots__ = (
        "peer",
        "cfg",
        "_session",
        "_next_session_id",
        "next_allowed",
        "n_sessions",
        "n_sessions_aborted",
        "n_replicas_shipped",
        "n_replicas_installed",
        "n_replicas_evicted",
    )

    def __init__(self, peer: "Peer") -> None:
        self.peer = peer
        self.cfg = peer.cfg
        self._session: Optional[_Session] = None
        self._next_session_id = 0
        self.next_allowed = 0.0
        self.n_sessions = 0
        self.n_sessions_aborted = 0
        self.n_replicas_shipped = 0
        self.n_replicas_installed = 0
        self.n_replicas_evicted = 0

    # ------------------------------------------------------------------
    # trigger (creation protocol step 1)
    # ------------------------------------------------------------------

    def maybe_trigger(self, now: float) -> bool:
        """Open a session if overloaded; returns True when one was opened."""
        if not self.cfg.replication_enabled:
            return False
        if self._session is not None or now < self.next_allowed:
            return False
        if self.peer.meter.load() <= self.threshold():
            return False
        return self._start_session(now)

    def threshold(self) -> float:
        """The effective high-water threshold.

        Fixed (``cfg.l_high``) by default; with ``cfg.l_high_auto`` it
        is proportional to the server's local estimate of overall
        system utilisation (own load + in-band samples), the automatic
        policy the paper suggests in section 3.1.
        """
        cfg = self.cfg
        if not cfg.l_high_auto:
            return cfg.l_high
        peer = self.peer
        total = peer.meter.load()
        count = 1
        for load, _t in peer.known_loads.values():
            total += load
            count += 1
        estimate = total / count
        return min(0.95, max(cfg.l_high_floor, cfg.l_high_factor * estimate))

    def _start_session(self, now: float) -> bool:
        self._next_session_id += 1
        session = _Session(self._next_session_id)
        self._session = session
        self.n_sessions += 1
        logger.debug(
            "t=%.3f server %d opens session %d (load %.2f)",
            now, self.peer.sid, session.sid, self.peer.meter.load(),
        )
        return self._probe_next(now)

    # ------------------------------------------------------------------
    # partner selection (step 2) and retries (step 5)
    # ------------------------------------------------------------------

    def _probe_next(self, now: float) -> bool:
        """Probe the minimum-believed-load untried candidate."""
        session = self._session
        assert session is not None
        peer = self.peer
        candidate = -1
        best_load = float("inf")
        for server, (load, _t) in peer.known_loads.items():
            if server == peer.sid or server in session.tried:
                continue
            if load < best_load:
                best_load = load
                candidate = server
        if candidate < 0:
            self._abort(now)
            return False
        session.attempts += 1
        session.tried.add(candidate)
        session.target = candidate
        session.awaiting = "probe_reply"
        self._arm_timeout(session)
        peer.send_control(
            candidate,
            ProbeMessage(session.sid, peer.sid, peer.meter.load()),
        )
        return True

    def _arm_timeout(self, session: "_Session") -> None:
        """(Re)arm the liveness timeout: a lost probe/transfer/ack (e.g.
        the partner failed) must not leave the session dangling."""
        if session.timer is not None:
            session.timer.cancel()
        session.timer = self.peer.rt.schedule_after(
            self.cfg.session_timeout, self._on_session_timeout, session.sid,
            handle=True,
        )

    def _on_session_timeout(self, session_id: int) -> None:
        session = self._session
        if session is not None and session.sid == session_id:
            self._abort(self.peer.rt.now)

    def _abort(self, now: float) -> None:
        if self._session is not None:
            logger.debug(
                "t=%.3f server %d aborts session %d after %d attempts",
                now, self.peer.sid, self._session.sid,
                self._session.attempts,
            )
            if self._session.timer is not None:
                self._session.timer.cancel()
        self._session = None
        self.n_sessions_aborted += 1
        self.next_allowed = now + self.cfg.session_backoff

    # ------------------------------------------------------------------
    # target side
    # ------------------------------------------------------------------

    def on_probe(self, msg: ProbeMessage, now: float) -> None:
        """Candidate target answering with its actual load and willingness."""
        peer = self.peer
        my_load = peer.meter.load()
        willing = (msg.src_load - my_load) >= self.cfg.delta_min
        peer.known_loads[msg.src] = (msg.src_load, now)
        peer.send_control(
            msg.src,
            ProbeReplyMessage(msg.session, peer.sid, my_load, willing),
        )

    def on_transfer(self, msg: TransferMessage, now: float) -> None:
        """Install shipped replicas, evicting per Rfact if needed (section 3.5)."""
        peer = self.peer
        installed: List[int] = []
        for payload in msg.payloads:
            if peer.hosts(payload.node):
                # already hosting: merge mapping knowledge only
                peer.merge_map(payload.node, payload.node_map)
                installed.append(payload.node)
                continue
            evicted = self._make_room(now)
            peer.install_replica(payload, now)
            self.n_replicas_installed += 1
            self.n_replicas_evicted += evicted
            installed.append(payload.node)
        # hysteresis: book the targeted post-transfer load increase
        if self.cfg.hysteresis_enabled and installed:
            peer.meter.apply_adjustment(msg.load_delta)
        peer.send_control(
            msg.src, TransferAckMessage(msg.session, peer.sid, installed)
        )

    def _make_room(self, now: float) -> int:
        """Evict lowest-ranked replicas until one more fits under Rfact."""
        peer = self.peer
        cap = self.replica_capacity()
        evicted = 0
        while len(peer.replicas) >= cap and peer.replicas:
            victims = peer.ranking.bottom(1, among=peer.replicas.keys())
            if not victims:
                break
            peer.evict_replica(victims[0], now)
            evicted += 1
        return evicted

    def replica_capacity(self) -> int:
        """Maximum replicas this server hosts: ``max(1, rfact * |owned|)``.

        Uses the *peer's* replication factor -- a locally enforced
        policy the paper allows to differ across servers (section 3.4).
        """
        return max(1, int(self.peer.rfact * len(self.peer.owned)))

    # ------------------------------------------------------------------
    # source side (steps 3 and 4)
    # ------------------------------------------------------------------

    def on_probe_reply(self, msg: ProbeReplyMessage, now: float) -> None:
        session = self._session
        if session is None or session.sid != msg.session:
            return  # stale reply from an aborted session
        if session.awaiting != "probe_reply" or msg.src != session.target:
            return
        peer = self.peer
        peer.known_loads[msg.src] = (msg.load, now)
        ls = peer.meter.load()
        lt = msg.load
        if msg.willing and (ls - lt) >= self.cfg.delta_min:
            self._ship(session, ls, lt, now)
            return
        if session.attempts >= self.cfg.max_attempts:
            self._abort(now)
        else:
            self._probe_next(now)

    def _ship(self, session: _Session, ls: float, lt: float, now: float) -> None:
        """Creation step 3: ship the smallest top-ranked node set whose
        weight covers ``(ls - lt) / (2 ls)`` of the total."""
        peer = self.peer
        fraction = (ls - lt) / (2.0 * ls) if ls > 0 else 0.0
        nodes = peer.ranking.top_k_for_fraction(
            fraction, among=list(peer.iter_hosted())
        )
        payloads = [peer.build_replica_payload(v) for v in nodes]
        payloads = [p for p in payloads if p is not None]
        if not payloads:
            self._abort(now)
            return
        delta = (ls - lt) / 2.0
        if self.cfg.hysteresis_enabled:
            peer.meter.apply_adjustment(-delta)
        msg = TransferMessage(session.sid, peer.sid, payloads, load_delta=delta)
        session.awaiting = "ack"
        self._arm_timeout(session)
        self.n_replicas_shipped += len(payloads)
        peer.send_control(session.target, msg)

    def on_ack(self, msg: TransferAckMessage, now: float) -> None:
        session = self._session
        if session is None or session.sid != msg.session:
            return
        if session.awaiting != "ack" or msg.src != session.target:
            return
        peer = self.peer
        for node in msg.installed:
            peer.note_replica_created(node, msg.src, now)
        logger.debug(
            "t=%.3f server %d session %d: %d replicas installed on %d",
            now, peer.sid, msg.session, len(msg.installed), msg.src,
        )
        if session.timer is not None:
            session.timer.cancel()
        self._session = None
        self.next_allowed = now + self.cfg.success_cooldown

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def in_session(self) -> bool:
        return self._session is not None
