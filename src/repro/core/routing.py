"""Hierarchical routing with replicas, caches, and digest shortcuts.

The routing procedure is a greedy minimiser over namespace distance
(paper sections 2.2, 3.6.1): a server routing a query for node ``t``
always forwards toward the closest node to ``t`` that it knows about.
The candidates, in the order we evaluate them:

1. **Resolution** -- the server hosts ``t`` (owns or replicates it).
2. **Direct map** -- the server has a map for ``t`` itself (``t`` is a
   neighbor of a hosted node, or sits in the cache): distance 0.
3. **Structural** -- the neighbor-toward-``t`` of the closest hosted
   node ``h*``.  Because every hosted node carries its full context,
   this candidate always exists and has distance ``d(h*, t) - 1``,
   which is exactly the best achievable from hosted state alone; it is
   what guarantees incremental progress.
4. **Cache scan** -- any cached node may be closer (path propagation
   deliberately caches a mixture of near and far nodes).
5. **Digest shortcut** -- test ``t`` and its ancestors (deepest first)
   against known inverse-mapping digests; a hit strictly closer than
   the best candidate so far wins (section 3.6.1).

The candidate search is O(depth(dest)) per hop: hosted state and the
cache each maintain an :class:`~repro.core.nsindex.AncestorIndex`, and
:func:`decide` walks the destination's precomputed ancestor chain
instead of scanning local state.  :func:`closest_hosted` and
:func:`scan_cache` remain as the *reference* linear scans: they define
the tie-breaking contract (first member in iteration order at a
strictly smaller distance) that the index reproduces bit-for-bit, and
the equivalence tests cross-check the two implementations.
"""

from __future__ import annotations

import enum
import random
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:
    from repro.server.peer import Peer


class RouteAction(enum.Enum):
    RESOLVED = "resolved"
    FORWARD = "forward"
    FAIL = "fail"


class RouteDecision:
    """Outcome of one routing step.

    Attributes:
        action: resolved locally, forward to ``next_server``, or fail.
        via: the candidate node the forwarding targets (the node on
            whose behalf the next server will process the query).
        next_server: chosen host of ``via``.
        source: which candidate class won ("resolved", "direct",
            "struct", "cache", "digest") -- used by accuracy metrics
            and the ablation benchmarks.
        distance: namespace distance from ``via`` to the destination.
    """

    __slots__ = ("action", "via", "next_server", "source", "distance")

    def __init__(
        self,
        action: RouteAction,
        via: int = -1,
        next_server: int = -1,
        source: str = "",
        distance: int = -1,
    ) -> None:
        self.action = action
        self.via = via
        self.next_server = next_server
        self.source = source
        self.distance = distance

    def __repr__(self) -> str:
        return (
            f"RouteDecision({self.action.value}, via={self.via}, "
            f"next_server={self.next_server}, source={self.source!r})"
        )


def closest_hosted(peer: "Peer", dest: int) -> Tuple[int, int]:
    """The hosted node closest to ``dest`` and its distance.

    Every server owns at least one node, so this always exists.

    Reference implementation: :func:`decide` answers this through the
    store's ancestor index in O(depth); this linear scan defines the
    exact semantics (first hosted-list entry at a strictly smaller
    distance wins) and backs the index-equivalence tests.
    """
    ns = peer.ns
    anc = ns.anc
    depth = ns.depth
    a_dest = anc[dest]
    n_dest = len(a_dest)
    d_dest = depth[dest]
    best = -1
    best_d = 1 << 30
    # the store's hosted list, iterated directly: same order as
    # iter_hosted() (owned first, then replicas)
    for h in peer.store.hosted_list:
        a_h = anc[h]
        # inline prefix scan for lca depth
        n = len(a_h)
        if n_dest < n:
            n = n_dest
        i = 0
        while i < n and a_h[i] == a_dest[i]:
            i += 1
        d = depth[h] + d_dest - 2 * (i - 1)
        if d < best_d:
            best_d = d
            best = h
            if d == 1:
                break  # cannot do better without hosting dest
    return best, best_d


def structural_next(peer: "Peer", h_star: int, dest: int) -> int:
    """The neighbor of ``h_star`` one step toward ``dest``.

    If ``h_star`` is an ancestor of ``dest`` this is the child on the
    path down to ``dest``; otherwise it is ``h_star``'s parent.
    """
    return peer.ns.step_toward(h_star, dest)


def scan_cache(peer: "Peer", dest: int, best_d: int) -> Tuple[int, int]:
    """Best cache candidate strictly closer than ``best_d``.

    Returns ``(node, distance)`` or ``(-1, best_d)`` when nothing beats
    the current best.

    Reference implementation: :func:`decide` answers this through the
    cache's ancestor index in O(depth); this linear scan defines the
    exact semantics (first entry in LRU iteration order at a strictly
    smaller distance wins) and backs the index-equivalence tests.
    """
    cache = peer.cache
    if not len(cache):
        return -1, best_d
    ns = peer.ns
    anc = ns.anc
    depth = ns.depth
    a_dest = anc[dest]
    n_dest = len(a_dest)
    d_dest = depth[dest]
    best = -1
    for v in cache.nodes():
        a_v = anc[v]
        n = len(a_v)
        if n_dest < n:
            n = n_dest
        i = 0
        while i < n and a_v[i] == a_dest[i]:
            i += 1
        d = depth[v] + d_dest - 2 * (i - 1)
        if d < best_d:
            best_d = d
            best = v
    return best, best_d


def digest_shortcut(peer: "Peer", dest: int, best_d: int) -> Tuple[int, int, int]:
    """Probe known digests for a node strictly closer than ``best_d``.

    Tests ``dest`` and its ancestors, deepest first, against the most
    recently observed digest snapshots (bounded by
    ``digest_probe_limit`` snapshots per step).  Deeper ancestors are
    strictly closer to ``dest``, so the first hit is the best hit.

    Returns ``(node, server, distance)`` or ``(-1, -1, best_d)``.
    """
    ddir = peer.digest_dir
    if ddir is None or not len(ddir):
        return -1, -1, best_d
    ns = peer.ns
    a_dest = ns.anc[dest]
    d_dest = ns.depth[dest]
    # ancestors at depth da have distance d_dest - da; only depths
    # yielding a strict improvement are worth probing
    min_depth = d_dest - best_d + 1
    if min_depth > d_dest:
        return -1, -1, best_d
    # version-cached eligible snapshot list: rebuilt only when the
    # directory mutates, not once per routing decision
    snaps = ddir.eligible_snaps(peer.sid, peer.cfg.digest_probe_limit)
    if not snaps:
        return -1, -1, best_d
    positions = ddir.reference.bloom._positions
    for da in range(d_dest, max(min_depth, 0) - 1, -1):
        pos = positions(a_dest[da])
        for server, words in snaps:
            for p in pos:
                if not (words[p >> 6] >> (p & 63)) & 1:
                    break
            else:
                return a_dest[da], server, d_dest - da
    return -1, -1, best_d


def decide(peer: "Peer", dest: int) -> RouteDecision:
    """One full routing step for a query destined to ``dest`` at ``peer``."""
    if peer.hosts(dest):
        return RouteDecision(
            RouteAction.RESOLVED, via=dest, source="resolved", distance=0,
        )

    rng = peer.rng
    sid = peer.sid

    # direct map for the destination itself (neighbor of a hosted node)
    direct = peer.maps.get(dest)
    if direct:
        server = _select_filtered(peer, dest, direct, rng, sid)
        if server >= 0:
            return RouteDecision(
                RouteAction.FORWARD, via=dest, next_server=server,
                source="direct", distance=0,
            )

    # destination sitting in the cache: also distance 0
    if peer.cache is not None:
        centry = peer.cache.peek(dest)
        if centry:
            server = _select_filtered(peer, dest, centry, rng, sid)
            if server >= 0:
                peer.cache.touch(dest)
                return RouteDecision(
                    RouteAction.FORWARD, via=dest, next_server=server,
                    source="cache", distance=0,
                )
            peer.cache.remove(dest)

    # structural candidate from the closest hosted node's context --
    # an O(depth) ancestor-chain walk (scan fallback for bare stores)
    hidx = peer.store.index
    if hidx is not None:
        h_star, d_star = hidx.closest(dest)
    else:
        h_star, d_star = closest_hosted(peer, dest)
    via = structural_next(peer, h_star, dest)
    best_d = d_star - 1
    source = "struct"

    # closest cached node, if strictly closer (same O(depth) walk)
    if peer.cache is not None:
        cidx = peer.cache.index
        if cidx is not None:
            cnode, cd = cidx.closest(dest, best_d)
        else:
            cnode, cd = scan_cache(peer, dest, best_d)
        if cnode >= 0:
            via, best_d, source = cnode, cd, "cache"

    # digest shortcut for anything closer still
    if peer.cfg.digests_enabled:
        dnode, dserver, dd = digest_shortcut(peer, dest, best_d)
        if dnode >= 0:
            return RouteDecision(
                RouteAction.FORWARD, via=dnode, next_server=dserver,
                source="digest", distance=dd,
            )

    # resolve the winning candidate's map to a next-hop server
    if source == "cache":
        entry = peer.cache.get(via)
        if entry is None:
            entry = []
        server = _select_filtered(peer, via, entry, rng, sid)
        if server >= 0:
            return RouteDecision(
                RouteAction.FORWARD, via=via, next_server=server,
                source="cache", distance=best_d,
            )
        # dead cache entry: drop it and fall back to the structural hop
        peer.cache.remove(via)
        via = structural_next(peer, h_star, dest)
        best_d = d_star - 1
        source = "struct"

    entry = peer.maps.get(via)
    if entry is None:
        entry = []
    server = _select_filtered(peer, via, entry, rng, sid)
    if server >= 0:
        return RouteDecision(
            RouteAction.FORWARD, via=via, next_server=server,
            source=source, distance=best_d,
        )
    return RouteDecision(RouteAction.FAIL, via=via, source=source, distance=best_d)


def _select(entry: List[int], rng: random.Random, exclude: int) -> int:
    """Random host from a map, excluding ``exclude``; -1 when none."""
    n = len(entry)
    if n == 1:
        s = entry[0]
        return s if s != exclude else -1
    if n == 0:
        return -1
    eligible = [s for s in entry if s != exclude]
    if not eligible:
        return -1
    return eligible[rng.randrange(len(eligible))]


def _select_filtered(
    peer: "Peer", node: int, entry: List[int], rng: random.Random, exclude: int
) -> int:
    """Digest-aware replica selection (paper section 3.7, map filtering).

    Entries whose last known digest *denies* hosting ``node`` are
    skipped -- best-effort: unknown digests pass, and stale digests may
    wrongly veto a fresh replica (the paper accepts both).  Falls back
    to unfiltered selection when filtering empties the map, so a wall
    of stale digests cannot black-hole a reachable node.
    """
    if not entry:
        return -1
    ddir = peer.digest_dir
    if ddir is None or not peer.cfg.digests_enabled:
        return _select(entry, rng, exclude)
    eligible = [
        s for s in entry
        if s != exclude and ddir.test(s, node) is not False
    ]
    if not eligible:
        return _select(entry, rng, exclude)
    return eligible[rng.randrange(len(eligible))]


def inferable_names(peer: "Peer", dest: int) -> List[int]:
    """Gen(S): every node id the server can infer (paper section 3.6.1).

    Hosted, neighboring, and cached node ids, the destination, plus --
    via "prefix extraction" -- all of their ancestors up to the root.
    Used by the digest-shortcut discovery procedure in its full
    generality (the hot path probes only the destination's own ancestor
    chain, which contains every candidate that can actually improve on
    map-based routing toward ``dest``).
    """
    ns = peer.ns
    out = set()
    seeds = set(peer.iter_hosted())
    seeds.update(peer.maps.keys())
    if peer.cache is not None:
        seeds.update(peer.cache.nodes())
    seeds.add(dest)
    for v in seeds:
        out.update(ns.anc[v])
    return sorted(out)
