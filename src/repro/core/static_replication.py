"""Static replication of the namespace top (the paper's alternative).

Section 2.3: "hierarchical bottlenecks can be addressed by *static*
replication mechanisms [15]" -- replicating the top levels of the tree
onto many servers at deployment time.  The paper argues statics cannot
follow demand-induced hot-spots; we implement it as the natural
baseline for the adaptive protocol's ablation study.

:func:`replicate_top_levels` installs, for every node at depth <=
``depth_limit``, replicas on ``copies`` distinct servers, wiring full
routing context and owner-side advertisement exactly as an adaptive
transfer would -- so the comparison isolates the *policy* (static
placement vs load-adaptive placement), not the mechanism.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:
    from repro.namespace.tree import Namespace
    from repro.server.peer import Peer

from repro.cluster.system import System


def replicate_top_levels(
    system: System,
    depth_limit: int = 2,
    copies: int = 4,
    seed: int = 0,
    record_stats: bool = False,
) -> Dict[int, List[int]]:
    """Statically replicate every node at depth <= ``depth_limit``.

    Args:
        copies: replicas per node (capped by server count - 1).
        record_stats: count these installs in the system's
            replica-creation statistics (off by default so experiment
            series show only *adaptive* creations).

    Returns:
        ``{node: [servers it was replicated on]}``.
    """
    if depth_limit < 0:
        raise ValueError("depth_limit must be >= 0")
    if copies < 1:
        raise ValueError("copies must be >= 1")
    rng = random.Random(seed)
    ns = system.ns
    placed: Dict[int, List[int]] = {}
    n_servers = len(system.peers)
    now = system.engine.now
    for node in range(len(ns)):
        if ns.depth[node] > depth_limit:
            continue
        owner_sid = system.owner[node]
        owner = system.peers[owner_sid]
        k = min(copies, n_servers - 1)
        candidates = [s for s in range(n_servers) if s != owner_sid]
        targets = rng.sample(candidates, k)
        installed: List[int] = []
        for sid in targets:
            target = system.peers[sid]
            if target.hosts(node):
                continue
            payload = owner.build_replica_payload(node)
            if payload is None:
                continue
            target.install_replica(payload, now)
            installed.append(sid)
            # owner-side bookkeeping identical to an adaptive transfer
            if record_stats:
                owner.note_replica_created(node, sid, now)
            else:
                _note_without_stats(owner, node, sid)
        placed[node] = installed
    return placed


def _note_without_stats(owner: "Peer", node: int, target: int) -> None:
    """Owner map/advertisement update minus the stats recording."""
    from repro.server.replica_store import advert_push

    advert_push(owner.adverts_recent, node, target, owner.cfg.rmap)
    entry = owner.maps.get(node)
    if entry is not None and target not in entry:
        if len(entry) >= owner.cfg.rmap:
            idx = [i for i, s in enumerate(entry) if s != owner.sid]
            if idx:
                entry.pop(idx[0])
            else:
                return
        entry.insert(0, target)


def static_replica_count(ns: "Namespace", depth_limit: int, copies: int) -> int:
    """Replicas a static deployment pays for, regardless of demand."""
    return copies * sum(
        1 for v in range(len(ns)) if ns.depth[v] <= depth_limit
    )
