"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning plain dicts/lists
(the same rows/series the paper plots) plus a ``main()`` that prints
them; the benchmark suite wraps the ``run_*`` functions and asserts the
paper's qualitative shapes.

All experiments accept a :class:`~repro.experiments.common.Scale` so
the same code runs at paper size (hours of CPU) or at the scaled-down
defaults recorded in EXPERIMENTS.md.
"""

from repro.experiments.common import (
    PAPER,
    SCALES,
    SMALL,
    TINY,
    Scale,
    get_scale,
    rate_for_utilization,
)

__all__ = [
    "PAPER",
    "SCALES",
    "SMALL",
    "TINY",
    "Scale",
    "get_scale",
    "rate_for_utilization",
]
