"""The NullSink micro-benchmark: events/sec of the simulation hot path.

Three fixed-seed scenarios, each reporting *simulated message events
per second of wall time* (collection disabled via the NullSink wherever
a system is involved, so the numbers track the message pipeline itself,
not bookkeeping).  The numerator is the number of transport messages
the scenario moves -- a fixed, engine-independent work count (the
workloads are deterministic), so the rate is comparable across
simulator internals: batching deliveries into fewer engine events must
show up as an improvement, not as an accounting artifact.  Raw engine
dispatches and wall time are reported alongside for transparency.

* ``transport_chain`` -- raw engine+transport throughput: no-op
  endpoints forwarding message chains, no servers involved.  Measures
  the per-message scheduling/delivery cost (the delivery ring vs a
  per-message heap entry).
* ``end_to_end`` -- a short workload-driven burst on a small system
  (the same shape as ``benchmarks/test_bench_micro.py``'s NullSink
  case): the floor cost of the full server pipeline.
* ``client_load`` -- a client-driven run with lookup timeouts armed
  for every lookup: exercises the timeout path (timer-wheel vs dead
  heap entries) together with transport and routing.
* ``routing_decide_small`` / ``routing_decide_large`` -- the routing
  decision in isolation: ``decide()`` over a fixed random destination
  stream against a peer with small (16 replicas / 16 cache slots) and
  large (1,500 replicas / 2,048 cache slots) local state.  Measures
  the per-hop candidate search (ancestor-indexed walk vs linear scans
  over hosted + cache state); the large case is the one that gates
  scaled-up ``fig9`` runs.
* ``shard_window`` -- the ``end_to_end`` workload on the 2-shard
  windowed coordinator (inline backend, so the number isolates the
  windowed protocol's overhead: barriers, egress exchange, stats-log
  replay -- not multiprocessing).  Gates the sharded run loop: its
  single-core cost must stay close enough to serial that the
  process backend's multi-core scaling nets out ahead.
* ``shard_egress_codec`` -- ``shard_window`` with the packed
  cross-shard codec forced on (still inline): isolates the per-barrier
  encode/decode cost of the wire format the process backend uses.
* ``shard_multicore`` -- the same workload on the 2-shard *process*
  backend: shared-memory arenas, packed pipe frames, real worker
  processes.  Honest about its host: on one core it pays for
  parallelism it cannot use; on many cores it is the speedup number.
* ``serve_loopback`` -- live mode end to end: a 4-peer UDS cluster in
  this process, a fixed batch of pipelined client lookups, rate in
  completed lookups per wall second.  Gates the asyncio runtime, the
  frame codec, and the wire (``repro.runtime``) the way the scenarios
  above gate the simulator.

The composite ``headline`` is the geometric mean of the *simulator*
scenario rates; ``headline_live`` covers the live (asyncio) scenarios.
They are gated separately because they move for unrelated reasons -- a
socket-stack change cannot speed up the simulator and vice versa.

Usage::

    python -m repro.experiments.bench_micro                # print JSON
    python -m repro.experiments.bench_micro --out out.json
    python -m repro.experiments.bench_micro --check BENCH_micro.json

Each scenario also reports ``mem_bytes``: the deep size
(:func:`repro.sim.memsize.deep_sizeof`) of the live simulation state
once the scenario finishes -- the number the arena-backed namespace and
lean server structs are accountable to.

``--check`` compares the current run against the committed baseline's
``after`` numbers and exits non-zero when any scenario (or the
headline) regresses by more than the tolerance (default 20%, override
with ``REPRO_BENCH_TOLERANCE``): an ``events_per_sec`` drop or a
``mem_bytes`` growth beyond the tolerance both fail.  CI runs exactly
this.
"""

from __future__ import annotations

import json
import math
import os
import random
import sys
import time
from typing import Callable, Dict, List

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.sim.engine import Engine
from repro.sim.memsize import deep_sizeof
from repro.sim.rng import exponential
from repro.sim.stats import NullSink

# det: ok(env-read) -- bench-harness knobs (repeat count, regression
# tolerance); they shape the measurement, never a run fingerprint
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
# det: ok(env-read) -- same bench-harness knob family as REPEATS above
TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.20"))


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def bench_transport_chain() -> Dict[str, float]:
    """Engine+transport only: 1,200 chains of 50 no-op forwards."""
    from repro.net.transport import Transport

    eng = Engine()
    tr = Transport(eng, net_delay=0.025)
    n_endpoints = 64

    def make_handler(sid: int) -> Callable:
        def handler(msg: List[int]) -> None:
            if msg[0] > 0:
                msg[0] -= 1
                msg[1] = (msg[1] * 131 + sid) % n_endpoints
                tr.send(msg[1], msg)
        return handler

    for sid in range(n_endpoints):
        tr.register(sid, make_handler(sid))
    # stagger chain starts so deliveries stay in flight throughout
    for i in range(1200):
        eng.schedule(0.001 * i, tr.send, i % n_endpoints, [50, i])
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return {"events": tr.n_sent, "engine_events": eng.n_dispatched,
            "wall_s": wall, "events_per_sec": tr.n_sent / wall,
            "mem_bytes": deep_sizeof((eng, tr))}


def bench_end_to_end() -> Dict[str, float]:
    """A short NullSink workload burst (the full server pipeline)."""
    from repro.workload.arrivals import WorkloadDriver
    from repro.workload.streams import uzipf_stream

    ns = balanced_tree(levels=8)
    cfg = SystemConfig.replicated(n_servers=16, seed=9, cache_slots=16)
    system = build_system(ns, cfg, stats=NullSink())
    spec = uzipf_stream(rate=400.0, duration=4.0, alpha=1.0, seed=9)
    driver = WorkloadDriver(system, spec)
    t0 = time.perf_counter()
    driver.run()
    wall = time.perf_counter() - t0
    msgs = system.transport.n_sent + system.transport.n_control_sent
    return {"events": msgs, "engine_events": system.engine.n_dispatched,
            "wall_s": wall, "events_per_sec": msgs / wall,
            "mem_bytes": deep_sizeof(system)}


def bench_client_load() -> Dict[str, float]:
    """Client-driven lookups with a timeout armed per lookup."""
    from repro.client.client import TerraDirClient

    ns = balanced_tree(levels=10)
    cfg = SystemConfig.replicated(n_servers=64, seed=7, cache_slots=16)
    system = build_system(ns, cfg, stats=NullSink())
    eng = system.engine
    clients = [TerraDirClient(system, i % 64) for i in range(64)]
    rng = random.Random(11)
    rate, n = 3000.0, len(ns)

    def arrival() -> None:
        clients[rng.randrange(64)].lookup_node(rng.randrange(n))
        eng.schedule(eng.now + exponential(rng, 1.0 / rate), arrival)

    eng.schedule(0.001, arrival)
    system.start_maintenance()
    t0 = time.perf_counter()
    eng.run(until=20.0)
    wall = time.perf_counter() - t0
    msgs = system.transport.n_sent + system.transport.n_control_sent
    return {"events": msgs, "engine_events": eng.n_dispatched,
            "wall_s": wall, "events_per_sec": msgs / wall,
            "mem_bytes": deep_sizeof(system)}


def _routing_peer(levels: int, n_servers: int, n_replicas: int,
                  cache_slots: int, seed: int):
    """A peer with a controlled amount of hosted + cached routing state.

    Replicas are installed through the real replica-store path (so
    maps, pins, digests, and the ancestor index stay coherent) and the
    cache is filled to capacity with true owner mappings.
    """
    ns = balanced_tree(levels=levels)
    cfg = SystemConfig.replicated(
        n_servers=n_servers, seed=seed, cache_slots=cache_slots
    )
    system = build_system(ns, cfg, stats=NullSink())
    peer = system.peers[0]
    rng = random.Random(seed + 1)
    candidates = [v for v in range(len(ns)) if not peer.hosts(v)]
    rng.shuffle(candidates)
    installed = 0
    for v in candidates:
        if installed >= n_replicas:
            break
        payload = system.peers[system.owner[v]].build_replica_payload(v)
        if payload is None:
            continue
        peer.store.install(payload, 0.0)
        installed += 1
    for v in candidates[-cache_slots:]:
        if not peer.hosts(v):
            peer.cache.put(v, [system.owner[v]])
    # a handful of observed digests so the shortcut path is exercised
    for s in range(1, min(n_servers, 9)):
        peer.digest_dir.observe(s, system.peers[s].digest.snapshot())
    return system, peer


def _bench_routing_decide(
    levels: int, n_replicas: int, cache_slots: int, n_queries: int
) -> Dict[str, float]:
    from repro.core.routing import decide

    system, peer = _routing_peer(
        levels=levels, n_servers=16, n_replicas=n_replicas,
        cache_slots=cache_slots, seed=13,
    )
    rng = random.Random(17)
    n = len(system.ns)
    dests = [rng.randrange(n) for _ in range(n_queries)]
    t0 = time.perf_counter()
    for dest in dests:
        decide(peer, dest)
    wall = time.perf_counter() - t0
    return {"events": n_queries, "engine_events": 0,
            "wall_s": wall, "events_per_sec": n_queries / wall,
            "mem_bytes": deep_sizeof(system)}


def bench_routing_decide_small() -> Dict[str, float]:
    """decide() against small local state (16 replicas, 16 cache slots)."""
    return _bench_routing_decide(
        levels=8, n_replicas=16, cache_slots=16, n_queries=20000
    )


def bench_routing_decide_large() -> Dict[str, float]:
    """decide() against large local state (1,500 replicas, 2,048 slots)."""
    return _bench_routing_decide(
        levels=12, n_replicas=1500, cache_slots=2048, n_queries=1500
    )


def bench_shard_window() -> Dict[str, float]:
    """The ``end_to_end`` workload under the 2-shard windowed loop.

    Inline backend on purpose: wall time then measures what sharding
    *adds* on one core (shard construction, window barriers, egress
    merge, event-log replay), which is the overhead the multi-core
    process backend has to amortise.
    """
    from repro.sim.shard import WindowedCoordinator
    from repro.workload.streams import uzipf_stream

    ns = balanced_tree(levels=8)
    cfg = SystemConfig.replicated(n_servers=16, seed=9, cache_slots=16)
    spec = uzipf_stream(rate=400.0, duration=4.0, alpha=1.0, seed=9)
    coord = WindowedCoordinator(ns, cfg, spec, 2, backend="inline")
    t0 = time.perf_counter()
    run = coord.run(spec.duration + 5.0)
    wall = time.perf_counter() - t0
    msgs = run.transport.n_sent + run.transport.n_control_sent
    return {"events": msgs, "engine_events": run.engine.n_dispatched,
            "wall_s": wall, "events_per_sec": msgs / wall,
            "mem_bytes": deep_sizeof(run)}


def bench_serve_loopback() -> Dict[str, float]:
    """Live-mode loopback: lookups through the full asyncio stack.

    A 4-peer UDS cluster hosted in-process, driven with a fixed batch
    of pipelined client lookups.  The rate is *completed lookups per
    wall second* end to end -- framing, restricted decode, socket
    round-trips, the peer pipeline, and the reply path -- so codec or
    wire regressions show up here and nowhere else.  Service means are
    tiny: the measurement targets the stack, not simulated queueing.
    """
    import asyncio
    import tempfile

    from repro.runtime.async_client import HomeConnection
    from repro.runtime.async_runtime import AsyncRuntime
    from repro.runtime.async_service import LiveService, build_live_system
    from repro.runtime.async_wire import AsyncWire, uds_addresses

    n_servers, n_lookups, pipeline_depth = 4, 600, 32
    ns = balanced_tree(levels=8)
    # deep queues: the fixed batch must complete without sheds so the
    # rate always divides the same work count
    cfg = SystemConfig.replicated(
        n_servers=n_servers, seed=9, cache_slots=16, service_mean=1e-4,
        queue_size=256,
    )
    rng = random.Random(21)
    dests = [rng.randrange(1, len(ns)) for _ in range(n_lookups)]
    holder: Dict[str, object] = {}

    async def drive() -> float:
        loop = asyncio.get_running_loop()
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as sock_dir:
            addresses = uds_addresses(sock_dir, n_servers)
            rt = AsyncRuntime(loop)
            wire = AsyncWire(loop, addresses)
            system = build_live_system(ns, cfg, rt, wire)
            holder["system"] = system
            LiveService(system).attach(wire)
            await wire.start_listeners()
            conns = []
            for sid in range(n_servers):
                conn = HomeConnection(loop, addresses[sid])
                await conn.connect()
                conns.append(conn)
            sem = asyncio.Semaphore(pipeline_depth)

            async def one(i: int) -> None:
                async with sem:
                    reply = await conns[i % n_servers].lookup(
                        dests[i], timeout=10.0
                    )
                    assert reply is not None and reply.ok

            t0 = time.perf_counter()
            await asyncio.gather(*(one(i) for i in range(n_lookups)))
            wall = time.perf_counter() - t0
            for conn in conns:
                await conn.close()
            await wire.close()
            return wall

    wall = asyncio.run(drive())
    return {"events": n_lookups, "engine_events": 0,
            "wall_s": wall, "events_per_sec": n_lookups / wall,
            "mem_bytes": deep_sizeof(holder["system"])}


def bench_shard_egress_codec() -> Dict[str, float]:
    """``shard_window`` with the packed egress codec forced on.

    Still the inline backend, so the delta against ``shard_window`` is
    the pure cost (or win) of encoding/decoding every cross-shard
    barrier through :mod:`repro.sim.shardcodec` -- the frames the
    process backend puts on its worker pipes.
    """
    from repro.sim.shard import WindowedCoordinator
    from repro.workload.streams import uzipf_stream

    ns = balanced_tree(levels=8)
    cfg = SystemConfig.replicated(n_servers=16, seed=9, cache_slots=16)
    spec = uzipf_stream(rate=400.0, duration=4.0, alpha=1.0, seed=9)
    coord = WindowedCoordinator(ns, cfg, spec, 2, backend="inline",
                                codec=True)
    t0 = time.perf_counter()
    run = coord.run(spec.duration + 5.0)
    wall = time.perf_counter() - t0
    msgs = run.transport.n_sent + run.transport.n_control_sent
    return {"events": msgs, "engine_events": run.engine.n_dispatched,
            "wall_s": wall, "events_per_sec": msgs / wall,
            "mem_bytes": deep_sizeof(run)}


def bench_shard_multicore() -> Dict[str, float]:
    """The full multi-core data plane: 2 shard worker processes.

    Shared-memory arenas, packed pipe frames, window coalescing --
    everything the process backend ships.  On a single-core host this
    is expected to trail ``shard_window`` (two workers time-slice one
    core and pay the barrier round-trips); on a multi-core host the
    same number is where the speedup shows up.  ``wall_s`` includes
    worker spawn and arena export, because a real run pays them too.
    """
    from repro.sim.shard import WindowedCoordinator
    from repro.workload.streams import uzipf_stream

    ns = balanced_tree(levels=8)
    cfg = SystemConfig.replicated(n_servers=16, seed=9, cache_slots=16)
    spec = uzipf_stream(rate=400.0, duration=4.0, alpha=1.0, seed=9)
    coord = WindowedCoordinator(ns, cfg, spec, 2, backend="process")
    t0 = time.perf_counter()
    run = coord.run(spec.duration + 5.0)
    wall = time.perf_counter() - t0
    msgs = run.transport.n_sent + run.transport.n_control_sent
    return {"events": msgs, "engine_events": run.engine.n_dispatched,
            "wall_s": wall, "events_per_sec": msgs / wall,
            "mem_bytes": deep_sizeof(run)}


# simulator scenarios gate the engine/server/routing hot paths; live
# scenarios gate the asyncio runtime stack.  The two move for unrelated
# reasons (a socket-stack change cannot speed up the simulator and vice
# versa), so each set gets its own geomean headline and gate.
SIM_SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {
    "transport_chain": bench_transport_chain,
    "end_to_end": bench_end_to_end,
    "client_load": bench_client_load,
    "routing_decide_small": bench_routing_decide_small,
    "routing_decide_large": bench_routing_decide_large,
    "shard_window": bench_shard_window,
    "shard_egress_codec": bench_shard_egress_codec,
    "shard_multicore": bench_shard_multicore,
}
LIVE_SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {
    "serve_loopback": bench_serve_loopback,
}
SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {
    **SIM_SCENARIOS, **LIVE_SCENARIOS,
}


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def _geomean(rates: List[float]) -> float:
    return math.exp(sum(math.log(r) for r in rates) / len(rates))


def run_benchmarks(repeats: int = REPEATS) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` per scenario, plus the composite headlines.

    ``headline`` is the geomean over the *simulator* scenarios;
    ``headline_live`` over the live (asyncio) scenarios.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, fn in SCENARIOS.items():
        best = None
        for _ in range(max(1, repeats)):
            r = fn()
            if best is None or r["events_per_sec"] > best["events_per_sec"]:
                best = r
        out[name] = best
    out["headline"] = {"events_per_sec": _geomean(
        [out[n]["events_per_sec"] for n in SIM_SCENARIOS]
    )}
    out["headline_live"] = {"events_per_sec": _geomean(
        [out[n]["events_per_sec"] for n in LIVE_SCENARIOS]
    )}
    return out


def check_regression(
    results: Dict[str, Dict[str, float]],
    baseline_path: str,
    tolerance: float = TOLERANCE,
) -> List[str]:
    """Scenarios regressing more than ``tolerance`` vs the baseline.

    Throughput regresses downward (``events_per_sec`` below the floor);
    memory regresses upward (``mem_bytes`` above the ceiling).
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    reference = baseline.get("after", baseline)
    failures = []
    for name, ref in reference.items():
        cur = results.get(name)
        if cur is None:
            continue
        ref_rate = ref.get("events_per_sec")
        if ref_rate is not None:
            floor = (1.0 - tolerance) * ref_rate
            if cur["events_per_sec"] < floor:
                failures.append(
                    f"{name}: {cur['events_per_sec']:,.0f} ev/s < "
                    f"{floor:,.0f} (baseline {ref_rate:,.0f}, "
                    f"tolerance {tolerance:.0%})"
                )
        ref_mem = ref.get("mem_bytes")
        cur_mem = cur.get("mem_bytes")
        if ref_mem and cur_mem:
            ceiling = (1.0 + tolerance) * ref_mem
            if cur_mem > ceiling:
                failures.append(
                    f"{name}: {cur_mem:,.0f} mem bytes > "
                    f"{ceiling:,.0f} (baseline {ref_mem:,.0f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: List[str]) -> int:
    out_path = None
    check_path = None
    args = list(argv)
    while args:
        a = args.pop(0)
        if a == "--out":
            out_path = args.pop(0)
        elif a == "--check":
            check_path = args.pop(0)
        else:
            raise SystemExit(f"unknown argument {a!r} "
                             "(expected --out FILE / --check BASELINE)")
    results = run_benchmarks()
    payload = json.dumps(results, indent=1, sort_keys=True)
    print(payload)
    if out_path:
        with open(out_path, "w") as f:
            f.write(payload + "\n")
    if check_path:
        failures = check_regression(results, check_path)
        if failures:
            for line in failures:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"ok: no scenario regressed >{TOLERANCE:.0%} "
              f"vs {check_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main(sys.argv[1:]))
