"""Utilisation calibration: close the loop on the hop-count estimate.

Experiments convert a target mean utilisation into an arrival rate via
``rate = util * N / (T_hop * E[hops])``, with ``E[hops]`` guessed by
the :class:`~repro.experiments.common.Scale`.  The guess is close but
not exact (hop counts depend on caching, digests, and namespace shape),
so runs land near -- not on -- the target.

:func:`calibrate_rate` removes the guesswork: it runs short probe
simulations, measures the *achieved* mean utilisation, and iterates the
rate until the measurement lands within tolerance.  Use it when an
experiment needs the utilisation axis to be exact (e.g. reproducing
Fig. 6's rate labels at a new scale).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import unif_stream


def measure_utilization(
    scale: Scale,
    rate: float,
    probe_duration: float = 10.0,
    seed: int = 0,
    preset: str = "BCR",
) -> Dict[str, float]:
    """One probe run; returns measured mean utilisation and mean hops."""
    ns = make_ns(scale)
    system = build(ns, scale, preset=preset, seed=seed)
    spec = unif_stream(rate, probe_duration, seed=seed)
    run_workload(system, spec, drain=2.0)
    means = system.stats.loads.means()
    skip = max(1, len(means) // 4)  # discard warm-up quarter
    steady = means[skip:] or means
    return {
        "utilization": sum(steady) / len(steady),
        "mean_hops": system.stats.mean_hops,
        "drop_fraction": system.stats.drop_fraction,
    }


def calibrate_rate(
    target_util: float,
    scale: Optional[Scale] = None,
    tolerance: float = 0.05,
    max_iterations: int = 5,
    probe_duration: float = 10.0,
    seed: int = 0,
    preset: str = "BCR",
) -> Dict[str, float]:
    """Find the arrival rate achieving ``target_util`` mean utilisation.

    Iterates ``rate *= target / measured`` (utilisation is close to
    linear in rate below saturation) until within relative
    ``tolerance`` or ``max_iterations``.

    Returns:
        dict with ``rate``, ``utilization`` (measured), ``mean_hops``,
        ``iterations``, and ``converged``.

    Raises:
        ValueError: on out-of-range arguments.
    """
    if not 0.0 < target_util < 0.9:
        raise ValueError("target_util must be in (0, 0.9) -- beyond that "
                         "the queue is saturated and utilisation is not "
                         "an invertible function of rate")
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")
    scale = scale or get_scale()
    rate = rate_for_utilization(
        target_util, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    measured = measure_utilization(scale, rate, probe_duration, seed, preset)
    iterations = 1
    while (
        abs(measured["utilization"] - target_util) > tolerance * target_util
        and iterations < max_iterations
    ):
        if measured["utilization"] <= 0:
            rate *= 2.0
        else:
            rate *= target_util / measured["utilization"]
        measured = measure_utilization(
            scale, rate, probe_duration, seed, preset
        )
        iterations += 1
    return {
        "rate": rate,
        "utilization": measured["utilization"],
        "mean_hops": measured["mean_hops"],
        "iterations": float(iterations),
        "converged": float(
            abs(measured["utilization"] - target_util)
            <= tolerance * target_util
        ),
    }


def main() -> None:  # pragma: no cover
    for util in (0.2, 0.4):
        result = calibrate_rate(util)
        print(
            f"target {util:.2f}: rate={result['rate']:.0f}/s "
            f"measured={result['utilization']:.3f} "
            f"hops={result['mean_hops']:.2f} "
            f"({result['iterations']:.0f} probes, "
            f"converged={bool(result['converged'])})"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
