"""Declarative simulation campaigns: specs, artifacts, resumable fan-out.

The paper's evaluation is a campaign of hundreds of independent
simulation runs (streams x presets x rates x seeds).  This module turns
every experiment's run list into *data* instead of ad-hoc loops:

* :class:`RunSpec` -- one picklable simulation run (experiment name,
  task label, task-function path, kwargs) with a stable
  content-addressed :attr:`~RunSpec.fingerprint`;
* :class:`ResultStore` -- a disk-backed artifact store holding one
  ``<fingerprint>.json`` per completed run (output plus metadata:
  scale, seed, code version, wall time, worker id);
* :class:`Campaign` -- an executor that fans specs out through
  :func:`repro.experiments.parallel.parallel_map`, skips fingerprint
  hits, isolates and retries per-task failures instead of aborting the
  pool, and reports ``done/cached/failed/total`` progress;
* the experiment registry (:data:`EXPERIMENT_NAMES`,
  :func:`get_experiment`) behind ``python -m repro`` and
  ``python -m repro run``.

Each experiment module declares an :class:`Experiment`: a *spec
builder* (parameters -> list of :class:`RunSpec`), an *assembler*
(stored payloads -> the figure's data structure), and a *renderer*
(data structure -> printed report).  Every payload is JSON
round-tripped before assembly, so a cold run, a partially resumed run,
and a fully cached re-run assemble bit-identical results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import pathlib
import sys
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.parallel import parallel_map, worker_count

FINGERPRINT_VERSION = 1
"""Bumped whenever the canonical spec encoding changes (invalidates
every cached artifact, which is the safe direction)."""


# ----------------------------------------------------------------------
# Canonical encoding and fingerprints
# ----------------------------------------------------------------------

def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-encodable structure.

    Dataclasses (``Scale``, ``WorkloadSpec``, ...) become tagged dicts
    of their fields, mappings are key-sorted, and sequences become
    lists.  Anything without an obvious stable encoding is rejected so
    a fingerprint can never silently depend on ``repr`` of an arbitrary
    object.

    Raises:
        TypeError: for values with no canonical form.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, Mapping):
        return {
            str(k): canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for fingerprinting"
    )


def to_jsonable(obj: Any) -> Any:
    """Round-trip ``obj`` through JSON.

    Applied to every payload -- cold or cached -- before assembly, so
    results never depend on whether they came from memory or disk
    (tuples become lists, ints/floats/strings are exact).
    """
    return json.loads(json.dumps(obj))


def resolve_task(path: str) -> Callable[..., Any]:
    """Import the task function named by a ``module:qualname`` path."""
    mod_name, _, qual = path.partition(":")
    if not mod_name or not qual:
        raise ValueError(f"task path must be 'module:function', got {path!r}")
    obj: Any = importlib.import_module(mod_name)
    for part in qual.split("."):
        obj = getattr(obj, part)
    return obj


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One independent simulation run of a campaign.

    Attributes:
        experiment: registry name of the owning experiment (``fig3``..).
        task: label unique within the experiment (stream, preset cell,
            sweep point) -- used in reports and failure messages.
        fn: ``module:function`` path of the picklable task unit; the
            run executes ``fn(**params)``.
        params: keyword arguments; must be picklable and canonicalisable
            (plain values plus dataclasses such as ``Scale`` and
            ``WorkloadSpec``).
    """

    experiment: str
    task: str
    fn: str
    params: Mapping[str, Any]

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the spec (hex, 32 chars).

        Identical across processes and sessions for an identical spec;
        any change to the task function path or any parameter --
        including nested ``Scale``/``WorkloadSpec`` fields -- yields a
        different fingerprint, invalidating cached artifacts.
        """
        doc = {
            "v": FINGERPRINT_VERSION,
            "experiment": self.experiment,
            "task": self.task,
            "fn": self.fn,
            "params": canonical(self.params),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]

    def __repr__(self) -> str:  # params are huge; keep errors readable
        return (
            f"RunSpec({self.experiment}:{self.task}, fn={self.fn}, "
            f"fingerprint={self.fingerprint})"
        )


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """The git commit of the working tree, or the package version."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        ver = ""
        try:
            import subprocess

            root = pathlib.Path(__file__).resolve().parents[3]
            ver = subprocess.run(
                ["git", "-C", str(root), "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5,
            ).stdout.strip()
        except Exception:
            ver = ""
        if not ver:
            try:
                import repro

                ver = getattr(repro, "__version__", "unknown")
            except Exception:
                ver = "unknown"
        _CODE_VERSION = ver
    return _CODE_VERSION


class ResultStore:
    """Content-addressed result cache: one JSON file per fingerprint.

    Successful runs live at ``<root>/<fingerprint>.json``; failures at
    ``<root>/<fingerprint>.failed.json`` (kept out of the success path
    so a resumed campaign re-executes them).  Writes are atomic
    (temp file + ``os.replace``), so a killed campaign never leaves a
    half-written artifact that a resume would trust.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, fingerprint: str) -> pathlib.Path:
        """Artifact path for a successful run."""
        return self.root / f"{fingerprint}.json"

    def failed_path(self, fingerprint: str) -> pathlib.Path:
        """Artifact path recording the last failure of a run."""
        return self.root / f"{fingerprint}.failed.json"

    def _write(self, path: pathlib.Path, record: Mapping[str, Any]) -> None:
        # no sort_keys: dict order inside ``result`` is part of the
        # payload (assemblers and renderers iterate it), and JSON
        # round-trips preserve it
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record, indent=1))
        os.replace(tmp, path)

    def fetch(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored success record, or None (missing/corrupt = miss)."""
        path = self.path(fingerprint)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("status") != "ok":
            return None
        return record

    def put(self, record: Mapping[str, Any]) -> None:
        """Persist a success record; clears any stale failure marker."""
        fp = record["fingerprint"]
        self._write(self.path(fp), record)
        try:
            self.failed_path(fp).unlink()
        except OSError:
            pass

    def record_failure(self, record: Mapping[str, Any]) -> None:
        """Persist a failure record (never consulted as a cache hit)."""
        self._write(self.failed_path(record["fingerprint"]), record)

    def fingerprints(self) -> List[str]:
        """Fingerprints of every stored *successful* artifact."""
        return sorted(
            p.stem for p in self.root.glob("*.json")
            if not p.name.endswith(".failed.json")
            and not p.name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.fingerprints())


# ----------------------------------------------------------------------
# Spec execution (module-level and picklable: runs inside pool workers)
# ----------------------------------------------------------------------

def _spec_meta(spec: RunSpec) -> Dict[str, Any]:
    scale = spec.params.get("scale")
    return {
        "scale": getattr(scale, "name", None),
        "seed": spec.params.get("seed"),
        "code_version": code_version(),
        "recorded_at": time.time(),
        "worker": f"pid-{os.getpid()}",
    }


def run_spec(spec: RunSpec, store_dir: Optional[str] = None) -> Dict[str, Any]:
    """Execute one spec, returning (and optionally persisting) a record.

    Never raises for task failures: errors are captured in the record
    so a single crashed run cannot abort a whole pool.  When
    ``store_dir`` is given the record is written *by the worker*, so
    completed runs survive even if the campaign process is killed
    before the pool drains.
    """
    meta = _spec_meta(spec)
    t0 = time.perf_counter()
    try:
        fn = resolve_task(spec.fn)
        result = to_jsonable(fn(**dict(spec.params)))
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        import traceback

        result = None
        status = "failed"
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(limit=20),
        }
    meta["wall_time_s"] = time.perf_counter() - t0
    record: Dict[str, Any] = {
        "fingerprint": spec.fingerprint,
        "experiment": spec.experiment,
        "task": spec.task,
        "fn": spec.fn,
        "status": status,
        "result": result,
        "error": error,
        "meta": meta,
    }
    if store_dir is not None:
        store = ResultStore(store_dir)
        if status == "ok":
            store.put(record)
        else:
            store.record_failure(record)
    return record


def _call_spec(spec: RunSpec) -> Any:
    """Raising variant used by the in-memory ``run_*`` entry points."""
    fn = resolve_task(spec.fn)
    return to_jsonable(fn(**dict(spec.params)))


def execute_specs(
    specs: Sequence[RunSpec], workers: Optional[int] = None
) -> List[Any]:
    """Run specs in order with no cache; exceptions propagate.

    This is the direct path behind every ``run_*`` function: identical
    computation to a :class:`Campaign` run, minus the artifact store.
    """
    return parallel_map(_call_spec, [dict(spec=s) for s in specs], workers)


# ----------------------------------------------------------------------
# Campaign executor
# ----------------------------------------------------------------------

@dataclasses.dataclass
class CampaignStats:
    """Progress counters for one :meth:`Campaign.run`."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    failed: int = 0
    retried: int = 0
    elapsed: float = 0.0

    @property
    def done(self) -> int:
        """Specs with a usable payload (cached or freshly executed)."""
        return self.total - self.failed

    @property
    def runs_per_sec(self) -> float:
        """Fresh executions per wall-clock second."""
        return self.executed / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        """The one-line progress/summary format (stable: CI greps it)."""
        return (
            f"done={self.done}/{self.total} cached={self.cached} "
            f"executed={self.executed} failed={self.failed} "
            f"({self.runs_per_sec:.2f} runs/s, {self.elapsed:.1f}s)"
        )


@dataclasses.dataclass
class CampaignResult:
    """Outcome of one :meth:`Campaign.run`.

    Attributes:
        specs: the input specs, in order.
        payloads: one JSON payload per spec (None where the run failed
            after all retries).
        stats: the final counters.
        failures: ``(spec, record)`` for every spec still failing.
    """

    specs: List[RunSpec]
    payloads: List[Any]
    stats: CampaignStats
    failures: List[Tuple[RunSpec, Dict[str, Any]]]

    def raise_on_failure(self) -> None:
        """Raise ``RuntimeError`` summarising failures, if any."""
        if not self.failures:
            return
        lines = [f"{len(self.failures)} of {self.stats.total} runs failed:"]
        for spec, record in self.failures[:5]:
            # det: ok(sized-presence-truthiness) -- report text only; a
            # missing, null, or empty error dict all mean "no detail"
            err = record.get("error") or {}
            lines.append(
                f"  {spec.experiment}:{spec.task} -> "
                f"{err.get('type')}: {err.get('message')}"
            )
        raise RuntimeError("\n".join(lines))


class Campaign:
    """Resumable fan-out executor over a list of :class:`RunSpec`.

    Args:
        store: artifact store; None runs fully in memory.
        workers: pool size (None consults ``REPRO_WORKERS``).
        use_cache: consult the store and skip fingerprint hits.
        max_retries: extra attempts per failing spec before recording
            it as failed.
        echo: progress callback (default: print to stderr); pass
            ``lambda s: None`` to silence.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        use_cache: bool = True,
        max_retries: int = 1,
        echo: Optional[Callable[[str], None]] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.store = store
        self.workers = workers
        self.use_cache = use_cache and store is not None
        self.max_retries = max_retries
        self._echo = echo if echo is not None else (
            lambda s: print(s, file=sys.stderr, flush=True)
        )

    def run(self, specs: Sequence[RunSpec]) -> CampaignResult:
        """Execute every spec, reusing cached artifacts where possible.

        Specs sharing a fingerprint execute once.  Payloads come back
        in spec order regardless of completion order, so campaign runs
        assemble exactly like direct :func:`execute_specs` runs.
        """
        t0 = time.perf_counter()
        specs = list(specs)
        stats = CampaignStats(total=len(specs))
        payloads: List[Any] = [None] * len(specs)
        records: Dict[str, Dict[str, Any]] = {}

        # fingerprint hits (and intra-campaign duplicates) run once
        by_fp: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            by_fp.setdefault(spec.fingerprint, []).append(i)
        pending: List[str] = []
        for fp, idxs in by_fp.items():
            record = self.store.fetch(fp) if self.use_cache else None
            if record is not None:
                stats.cached += len(idxs)
                for i in idxs:
                    payloads[i] = record["result"]
            else:
                pending.append(fp)

        store_dir = str(self.store.root) if self.store is not None else None
        for attempt in range(self.max_retries + 1):
            if not pending:
                break
            if attempt > 0:
                stats.retried += len(pending)
                self._echo(
                    f"[campaign] retrying {len(pending)} failed run(s) "
                    f"(attempt {attempt + 1}/{self.max_retries + 1})"
                )
            still_failing: List[str] = []
            for chunk in self._chunks(pending):
                chunk_specs = [specs[by_fp[fp][0]] for fp in chunk]
                results = parallel_map(
                    run_spec,
                    [dict(spec=s, store_dir=store_dir) for s in chunk_specs],
                    self.workers,
                )
                for fp, record in zip(chunk, results):
                    records[fp] = record
                    if record["status"] == "ok":
                        stats.executed += len(by_fp[fp])
                        for i in by_fp[fp]:
                            payloads[i] = record["result"]
                    else:
                        still_failing.append(fp)
                stats.failed = sum(len(by_fp[fp]) for fp in still_failing)
                stats.elapsed = time.perf_counter() - t0
                self._echo(f"[campaign] {stats.summary()}")
            pending = still_failing

        stats.failed = sum(len(by_fp[fp]) for fp in pending)
        stats.elapsed = time.perf_counter() - t0
        failures = [
            (specs[i], records[fp]) for fp in pending for i in by_fp[fp]
        ]
        return CampaignResult(specs, payloads, stats, failures)

    def _chunks(self, fps: List[str]) -> List[List[str]]:
        """Batch pending work so progress is reported as chunks finish."""
        n_workers = worker_count(len(fps), self.workers)
        size = max(4, 4 * max(1, n_workers))
        return [fps[i:i + size] for i in range(0, len(fps), size)]


# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Experiment:
    """One registered experiment: declarative specs in, report out.

    Attributes:
        name: registry key (also the CLI argument).
        title: one-line description shown by the CLI.
        specs: builder ``(scale, seed, **kw) -> List[RunSpec]``.
        assemble: ``(specs, payloads) -> result`` -- rebuilds the
            figure's data structure from stored payloads (in spec
            order); must only use spec params and payload contents.
        render: prints the combined-report block for an assembled
            result (exactly what ``python -m repro <name>`` shows).
    """

    name: str
    title: str
    specs: Callable[..., List[RunSpec]]
    assemble: Callable[[Sequence[RunSpec], Sequence[Any]], Any]
    render: Callable[[Any], None]


_MODULES: Dict[str, str] = {
    "table1": "repro.experiments.table1_state",
    "fig3": "repro.experiments.fig3_drops",
    "fig4": "repro.experiments.fig4_replicas",
    "fig5": "repro.experiments.fig5_ablation",
    "fig6": "repro.experiments.fig6_load",
    "fig7": "repro.experiments.fig7_levels",
    "fig8": "repro.experiments.fig8_stabilization",
    "fig9": "repro.experiments.fig9_scalability",
    "churn": "repro.experiments.churn_digests",
    "heterogeneity": "repro.experiments.heterogeneity",
    "resilience": "repro.experiments.resilience",
    "static": "repro.experiments.static_vs_adaptive",
}

EXPERIMENT_NAMES: Tuple[str, ...] = tuple(_MODULES)
"""All registered experiments, in combined-report order."""


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment (modules import lazily).

    Raises:
        ValueError: for names not in :data:`EXPERIMENT_NAMES`.
    """
    try:
        mod_name = _MODULES[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {list(_MODULES)}"
        ) from None
    return importlib.import_module(mod_name).EXPERIMENT


def run_experiment(
    name: str,
    scale=None,
    seed: Optional[int] = None,
    store: Optional[ResultStore] = None,
    workers: Optional[int] = None,
    use_cache: bool = True,
    **spec_kwargs: Any,
) -> Any:
    """Build, execute, and assemble one experiment.

    With no ``store`` this is the plain in-memory path every ``run_*``
    function uses; with a store it becomes a cached, resumable campaign
    (failures raise after bounded retries).
    """
    from repro.experiments.common import get_scale, get_seed

    exp = get_experiment(name)
    scale = scale or get_scale()
    seed = get_seed(seed)
    specs = exp.specs(scale, seed=seed, **spec_kwargs)
    if store is None:
        payloads = execute_specs(specs, workers=workers)
    else:
        result = Campaign(
            store=store, workers=workers, use_cache=use_cache
        ).run(specs)
        result.raise_on_failure()
        payloads = result.payloads
    return exp.assemble(specs, payloads)


# ----------------------------------------------------------------------
# CLI: python -m repro run <experiments...>
# ----------------------------------------------------------------------

def main(argv: List[str]) -> int:
    """``python -m repro run [exp ...] [--jobs N] [--resume] [--no-cache]
    [--out DIR] [--retries N]`` -- run experiments as a cached campaign.

    Scale and base seed come from ``REPRO_SCALE`` / ``REPRO_SEED``.
    Artifacts land in ``--out`` (default ``results/``); a re-run skips
    every fingerprint hit, so an interrupted campaign resumes where it
    stopped.  ``--no-cache`` forces re-execution (artifacts are still
    rewritten).  Exits non-zero if any run still fails after retries.
    """
    import argparse

    from repro.experiments.common import get_scale, get_seed

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run experiment campaigns with cached, resumable runs.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(EXPERIMENT_NAMES)})",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_WORKERS, serial if unset)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="artifact directory (default: results/)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip runs whose artifacts already exist (the default; "
        "spelled out for scripts that want to be explicit)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore existing artifacts and re-execute every run",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts per failing run (default: 1)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard engines per run (default: $REPRO_SHARDS, serial if "
        "unset); composes with --jobs campaign-first -- each run only "
        "spawns shard processes out of the CPUs --jobs leaves free",
    )
    args = parser.parse_args(argv)
    if args.resume and args.no_cache:
        parser.error("--resume and --no-cache are mutually exclusive")

    # det: ok(sized-presence-truthiness) -- empty selection means "run
    # every experiment"; emptiness IS the signal here, not absence
    wanted = list(args.experiments) or list(EXPERIMENT_NAMES)
    unknown = [w for w in wanted if w not in _MODULES]
    if unknown:
        parser.error(
            f"unknown experiments {unknown}; choose from {list(_MODULES)}"
        )

    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        # run-level sharding travels by environment so campaign worker
        # processes (and their run functions) pick it up uniformly
        os.environ["REPRO_SHARDS"] = str(args.shards)

    scale = get_scale()
    seed = get_seed()
    # det: ok(env-read) -- CLI banner echoing the value the line above
    # just exported for workers; never feeds a RunSpec fingerprint
    shards = os.environ.get("REPRO_SHARDS", "").strip() or "1"
    print(
        f"scale={scale.name}  seed={seed}  out={args.out}  "
        f"cache={'off' if args.no_cache else 'on'}  shards={shards}"
    )
    groups: List[Tuple[str, List[RunSpec]]] = []
    all_specs: List[RunSpec] = []
    for name in wanted:
        specs = get_experiment(name).specs(scale, seed=seed)
        groups.append((name, specs))
        all_specs.extend(specs)

    campaign = Campaign(
        store=ResultStore(args.out),
        workers=args.jobs,
        use_cache=not args.no_cache,
        max_retries=args.retries,
    )
    result = campaign.run(all_specs)

    offset = 0
    failed_by_spec = {id(s) for s, _ in result.failures}
    for name, specs in groups:
        payloads = result.payloads[offset:offset + len(specs)]
        offset += len(specs)
        print(f"\n=== {name} ===")
        bad = [s for s in specs if id(s) in failed_by_spec]
        if bad:
            print(f"  skipped: {len(bad)}/{len(specs)} runs failed "
                  f"({', '.join(s.task for s in bad)})")
            continue
        exp = get_experiment(name)
        exp.render(exp.assemble(specs, payloads))

    print(f"\ncampaign: {result.stats.summary()}")
    for spec, record in result.failures:
        # det: ok(sized-presence-truthiness) -- report text only; a
        # missing, null, or empty error dict all mean "no detail"
        err = record.get("error") or {}
        print(f"  FAILED {spec.experiment}:{spec.task} -> "
              f"{err.get('type')}: {err.get('message')}")
    return 1 if result.failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
