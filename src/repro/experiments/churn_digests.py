"""Section 4.4 (text): digests vs. oracle under replica churn.

The paper runs low replication factors (0.125, 0.25, 0.5) against
repeated high-order hot-spot shifts (``cuzipf1.50``), forcing many
replica creations *and* deletions, and summarises: "inverse-mapping
digests are good approximations of optimal behavior (routing with
perfectly accurate information, as if given by an oracle) ... routing
accuracy is maintained within the optimal range."

We reproduce the comparison three-way: digests enabled, digests
disabled, and the oracle (ground-truth map filtering).  Routing
accuracy is measured as the stale-hop rate -- the fraction of forwards
landing on a server that no longer hosts the node it was selected for.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.summary import run_summary
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import cuzipf_stream

RFACTS = (0.125, 0.25, 0.5)
MODES = ("digests", "no-digests", "oracle")


def churn_cell(scale, spec, rfact: float, mode: str, seed: int) -> tuple:
    """One (rfact, mode) run of the churn study -- picklable task unit."""
    ns = make_ns(scale)
    overrides = dict(rfact=rfact)
    if mode == "no-digests":
        overrides["digests_enabled"] = False
    elif mode == "oracle":
        overrides["oracle_maps"] = True
    system = build(ns, scale, preset="BCR", seed=seed, **overrides)
    run_workload(system, spec, drain=scale.drain)
    return rfact, mode, run_summary(system)


def churn_specs(
    scale: Scale,
    seed: int = 0,
    rfacts=RFACTS,
    modes=MODES,
    utilization: float = 0.4,
    alpha: float = 1.5,
) -> List[RunSpec]:
    """Declare the churn study's run list: one spec per (rfact, mode)."""
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    stream = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    return [
        RunSpec(
            experiment="churn",
            task=f"rfact{rfact:g}:{mode}",
            fn="repro.experiments.churn_digests:churn_cell",
            params=dict(scale=scale, spec=stream, rfact=rfact, mode=mode,
                        seed=seed),
        )
        for rfact in rfacts
        for mode in modes
    ]


def assemble_churn(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[float, Dict[str, Dict[str, float]]]:
    """Rebuild ``{rfact: {mode: summary}}`` from run payloads."""
    results: Dict[float, Dict[str, Dict[str, float]]] = {
        r: {} for r in dict.fromkeys(s.params["rfact"] for s in specs)
    }
    for rfact, mode, summary in payloads:
        results[rfact][mode] = summary
    return results


def run_churn(
    scale: Optional[Scale] = None,
    rfacts=RFACTS,
    modes=MODES,
    utilization: float = 0.4,
    alpha: float = 1.5,
    seed: Optional[int] = None,
) -> Dict[float, Dict[str, Dict[str, float]]]:
    """Reproduce the section 4.4 churn study.

    Returns:
        ``{rfact: {mode: summary}}`` where each summary includes
        ``stale_hop_rate`` and ``drop_fraction``.
    """
    scale = scale or get_scale()
    specs = churn_specs(scale, seed=get_seed(seed), rfacts=rfacts,
                        modes=modes, utilization=utilization, alpha=alpha)
    return assemble_churn(specs, execute_specs(specs))


def render_churn(results: Dict[float, Dict[str, Dict[str, float]]]) -> None:
    """The combined-report block (``python -m repro churn``)."""
    print(f"  {'rfact':>7} " + " ".join(f"{m:>12}" for m in MODES)
          + "   (stale-hop rate)")
    for rfact, per_mode in results.items():
        row = " ".join(f"{per_mode[m]['stale_hop_rate']:12.4f}"
                       for m in MODES)
        print(f"  {rfact:>7} {row}")


EXPERIMENT = Experiment(
    name="churn",
    title="digests vs oracle routing accuracy under replica churn",
    specs=churn_specs,
    assemble=assemble_churn,
    render=render_churn,
)


def main() -> None:  # pragma: no cover
    results = run_churn()
    print("Section 4.4 -- routing accuracy under churn (stale-hop rate)")
    print(f"{'rfact':>7} " + " ".join(f"{m:>12}" for m in MODES))
    for rfact, per_mode in results.items():
        row = " ".join(
            f"{per_mode[m]['stale_hop_rate']:12.4f}" for m in MODES
        )
        print(f"{rfact:>7} {row}")


if __name__ == "__main__":  # pragma: no cover
    main()
