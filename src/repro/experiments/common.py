"""Shared experiment infrastructure: scales, namespaces, run helpers.

The paper's runs (1,000 servers, 32,767-node N_S, 250-10,000 simulated
seconds, up to 24M queries) are hours of CPU for a pure-Python DES, so
every experiment is parameterised by a :class:`Scale` that shrinks
server count, namespace, rates, and durations *together*, preserving
the dimensionless quantities that determine every figure's shape:
target utilisations, Zipf orders, threshold ratios (l_high, delta_min),
queue depth, cache-to-namespace ratio, and replication factor.

Select a scale with the ``REPRO_SCALE`` environment variable
(``tiny`` | ``small`` | ``paper`` | ``million``; default ``tiny``).

The ``million`` scale points the same experiments at a 2^20 - 1 node
namespace on 1,024 servers -- the "millions of users" regime the
array-backed namespace arenas exist for.  Durations are kept short
(the point is state scale, not steady-state statistics), so a table1
audit or a fig9 point at this scale completes on a laptop.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional, Tuple

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.cluster.system import System
from repro.namespace.generators import balanced_tree, coda_like_tree
from repro.namespace.tree import Namespace
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class Scale:
    """One coherent scaled-down configuration of the paper's testbed.

    Attributes:
        name: scale label.
        ns_levels: N_S binary-tree depth (paper: 14 -> 32,767 nodes).
        nc_nodes: N_C synthetic file-system node count (paper: ~74k).
        n_servers: participating servers (paper: 1,000).
        hops_estimate: expected processed messages per query, used to
            convert a utilisation target into an arrival rate.
        warmup: uniform warm-up seconds in cuzipf streams (paper: 50).
        phase: seconds per Zipf phase (paper: 50).
        n_phases: Zipf phases per cuzipf stream (paper: 4).
        drain: extra seconds to let in-flight queries finish.
        cache_slots: LRU entries per server.
        digest_probe_limit: digest snapshots probed per routing step.
            Must shrink with the system: probing k digests covers
            ``k * nodes_per_server / n_nodes`` of the namespace per
            hop, and that fraction -- about 0.8% at paper scale -- is
            what must be preserved, or digest shortcuts erase the
            hierarchical bottleneck the paper studies.
        long_run: duration of the Fig. 8 stabilisation run (paper: 10,000 s).
        long_bucket: seconds per Fig. 8 bucket (paper: 60 s).
        fig9_nodes_per_server: namespace nodes per server in the Fig. 9
            sweep (paper: 8; the million scale raises it to 1,024 so a
            single point exercises a ~10^6-node namespace).
    """

    name: str
    ns_levels: int
    nc_nodes: int
    n_servers: int
    hops_estimate: float = 3.5
    warmup: float = 50.0
    phase: float = 50.0
    n_phases: int = 4
    drain: float = 5.0
    cache_slots: int = 16
    digest_probe_limit: int = 8
    long_run: float = 10_000.0
    long_bucket: int = 60
    fig9_nodes_per_server: int = 8

    @property
    def smooth_window(self) -> int:
        """Fig. 6 right-panel smoothing window (paper: 11 s at phase 50)."""
        return max(3, int(round(self.phase * 11.0 / 50.0)) | 1)


TINY = Scale(
    name="tiny", ns_levels=10, nc_nodes=3_000, n_servers=32,
    warmup=6.0, phase=6.0, n_phases=4, cache_slots=12,
    digest_probe_limit=1, long_run=240.0, long_bucket=30,
)
SMALL = Scale(
    name="small", ns_levels=11, nc_nodes=10_000, n_servers=64,
    warmup=12.0, phase=12.0, n_phases=4, cache_slots=16,
    digest_probe_limit=2, long_run=480.0, long_bucket=40,
)
PAPER = Scale(
    name="paper", ns_levels=14, nc_nodes=73_752, n_servers=1_000,
    warmup=50.0, phase=50.0, n_phases=4, cache_slots=26,
    digest_probe_limit=8, long_run=10_000.0, long_bucket=60,
)
MILLION = Scale(
    name="million", ns_levels=19, nc_nodes=1_000_000, n_servers=1_024,
    warmup=1.0, phase=1.0, n_phases=2, drain=2.0, cache_slots=26,
    digest_probe_limit=8, long_run=240.0, long_bucket=30,
    fig9_nodes_per_server=1_024,
)

SCALES: Dict[str, Scale] = {s.name: s for s in (TINY, SMALL, PAPER, MILLION)}


def get_scale(name: Optional[str] = None) -> Scale:
    """Resolve a scale by name, falling back to ``$REPRO_SCALE`` or tiny."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "tiny")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


def get_seed(seed: Optional[int] = None) -> int:
    """Resolve the base seed: explicit argument, ``$REPRO_SEED``, or 0.

    Every experiment entry point funnels its ``seed=None`` default
    through here, so a whole campaign can be re-run under a different
    base seed (``REPRO_SEED=7 python -m repro run ...``) without
    touching any call site.
    """
    if seed is not None:
        return seed
    raw = os.environ.get("REPRO_SEED", "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SEED must be an integer, got {raw!r}"
        ) from None


def rate_for_utilization(
    util: float,
    n_servers: int,
    service_mean: float = 0.005,
    hops_estimate: float = 3.5,
) -> float:
    """Global arrival rate producing a target mean utilisation.

    Each query occupies ``hops_estimate`` servers for ``service_mean``
    seconds each, so ``util = rate * hops * T / N``.
    """
    if not 0.0 < util < 1.0:
        raise ValueError("util must be in (0, 1)")
    return util * n_servers / (service_mean * hops_estimate)


def make_ns(scale: Scale) -> Namespace:
    """The synthetic N_S namespace (perfectly balanced binary tree)."""
    return balanced_tree(levels=scale.ns_levels)


def make_nc(scale: Scale) -> Namespace:
    """The file-system-shaped N_C namespace (Coda stand-in)."""
    return coda_like_tree(n_nodes=scale.nc_nodes)


def build(
    ns: Namespace,
    scale: Scale,
    preset: str = "BCR",
    seed: int = 0,
    **overrides,
) -> System:
    """Build a system under one of the Fig. 5 presets (B, BC, BCR)."""
    factory = {
        "B": SystemConfig.base,
        "BC": SystemConfig.caching,
        "BCR": SystemConfig.replicated,
    }[preset]
    merged = dict(
        n_servers=scale.n_servers,
        seed=seed,
        cache_slots=scale.cache_slots,
        digest_probe_limit=scale.digest_probe_limit,
    )
    merged.update(overrides)
    cfg = factory(**merged)
    return build_system(ns, cfg)


def run_workload(
    system: System, spec: WorkloadSpec, drain: float = 5.0
) -> WorkloadDriver:
    """Drive ``spec`` into ``system`` to completion; return the driver."""
    driver = WorkloadDriver(system, spec)
    driver.start()
    system.run_until(spec.duration + drain)
    return driver


ZIPF_ORDERS: Tuple[float, ...] = (0.75, 1.00, 1.25, 1.50)
"""The Zipf orders the paper sweeps ("covering the whole domain of
interest: 0.75, 1.00, 1.25, and 1.50 for heavily skewed requests")."""

UTILIZATION_TARGETS: Tuple[float, ...] = (0.08, 0.2, 0.4)
"""The three utilisation factors of section 4.3."""
