"""Fig. 3: fraction of queries dropped every second over time (N_S).

The paper runs, on the balanced-binary-tree namespace at its highest
query rate, a uniform stream and four ``cuzipf`` streams (Zipf orders
0.75..1.50).  The uniform component of each cuzipf stream is extended
in staggered increments so the hierarchical-stabilisation drop spike
and the popularity-reshuffle spikes are visually separated; drops spike
at every instantaneous popularity change and decay within seconds as
the replication protocol adapts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import drop_fraction_series
from repro.experiments.common import (
    Scale,
    ZIPF_ORDERS,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.experiments.parallel import parallel_map
from repro.workload.streams import WorkloadSpec, cuzipf_stream, unif_stream


def fig3_stream(
    scale: Scale,
    spec: WorkloadSpec,
    rate: float,
    n_bins: int,
    preset: str,
    seed: int,
) -> tuple:
    """One stream of Fig. 3 -- picklable task unit."""
    ns = make_ns(scale)
    system = build(ns, scale, preset=preset, seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return spec.name, drop_fraction_series(system, rate, n_bins)


def run_fig3(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: int = 0,
    preset: str = "BCR",
) -> Dict[str, List[float]]:
    """Reproduce Fig. 3's per-second drop-fraction series.

    Returns:
        Mapping from stream label (``unif``, ``uzipf0.75``...) to the
        per-second fraction of dropped queries relative to the rate.
    """
    scale = scale or get_scale()
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    stagger = scale.warmup / 5.0
    results: Dict[str, List[float]] = {}
    duration = scale.warmup + 4 * stagger + scale.n_phases * scale.phase

    specs: List[WorkloadSpec] = [
        unif_stream(rate, duration, seed=seed, name="unif")
    ]
    for i, alpha in enumerate(ZIPF_ORDERS):
        # the paper lets the unif prefix "run longer in increments" per
        # Zipf order so the reshuffle spikes of the curves interleave
        specs.append(
            cuzipf_stream(
                rate,
                alpha,
                warmup=scale.warmup + (i + 1) * stagger,
                phase=scale.phase,
                n_phases=scale.n_phases,
                seed=seed,
                name=f"uzipf{alpha:.2f}",
            )
        )

    n_bins = int(duration) + 1
    tasks = [
        dict(scale=scale, spec=spec, rate=rate, n_bins=n_bins,
             preset=preset, seed=seed)
        for spec in specs
    ]
    for name, series in parallel_map(fig3_stream, tasks):
        results[name] = series
    return results


def reshuffle_times(scale: Scale, alpha_index: int) -> List[float]:
    """The instants at which stream ``alpha_index`` reshuffles popularity."""
    stagger = scale.warmup / 5.0
    start = scale.warmup + (alpha_index + 1) * stagger
    return [start + i * scale.phase for i in range(1, scale.n_phases)]


def main() -> None:  # pragma: no cover - exercised via examples
    from repro.experiments.report import print_series_table

    results = run_fig3()
    print("Fig. 3 -- fraction of queries dropped every second (vs rate)")
    print_series_table(results, bin_label="t(s)")


if __name__ == "__main__":  # pragma: no cover
    main()
