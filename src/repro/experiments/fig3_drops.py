"""Fig. 3: fraction of queries dropped every second over time (N_S).

The paper runs, on the balanced-binary-tree namespace at its highest
query rate, a uniform stream and four ``cuzipf`` streams (Zipf orders
0.75..1.50).  The uniform component of each cuzipf stream is extended
in staggered increments so the hierarchical-stabilisation drop spike
and the popularity-reshuffle spikes are visually separated; drops spike
at every instantaneous popularity change and decay within seconds as
the replication protocol adapts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.series import drop_fraction_series
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    ZIPF_ORDERS,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import WorkloadSpec, cuzipf_stream, unif_stream


def fig3_stream(
    scale: Scale,
    spec: WorkloadSpec,
    rate: float,
    n_bins: int,
    preset: str,
    seed: int,
) -> tuple:
    """One stream of Fig. 3 -- picklable task unit."""
    ns = make_ns(scale)
    system = build(ns, scale, preset=preset, seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return spec.name, drop_fraction_series(system, rate, n_bins)


def fig3_specs(
    scale: Scale,
    seed: int = 0,
    utilization: float = 0.4,
    preset: str = "BCR",
) -> List[RunSpec]:
    """Declare Fig. 3's run list: one spec per query stream."""
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    stagger = scale.warmup / 5.0
    duration = scale.warmup + 4 * stagger + scale.n_phases * scale.phase

    streams: List[WorkloadSpec] = [
        unif_stream(rate, duration, seed=seed, name="unif")
    ]
    for i, alpha in enumerate(ZIPF_ORDERS):
        # the paper lets the unif prefix "run longer in increments" per
        # Zipf order so the reshuffle spikes of the curves interleave
        streams.append(
            cuzipf_stream(
                rate,
                alpha,
                warmup=scale.warmup + (i + 1) * stagger,
                phase=scale.phase,
                n_phases=scale.n_phases,
                seed=seed,
                name=f"uzipf{alpha:.2f}",
            )
        )

    n_bins = int(duration) + 1
    return [
        RunSpec(
            experiment="fig3",
            task=stream.name,
            fn="repro.experiments.fig3_drops:fig3_stream",
            params=dict(scale=scale, spec=stream, rate=rate, n_bins=n_bins,
                        preset=preset, seed=seed),
        )
        for stream in streams
    ]


def assemble_fig3(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, List[float]]:
    """Rebuild the ``{stream: series}`` mapping from run payloads."""
    return {name: series for name, series in payloads}


def run_fig3(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: Optional[int] = None,
    preset: str = "BCR",
) -> Dict[str, List[float]]:
    """Reproduce Fig. 3's per-second drop-fraction series.

    Returns:
        Mapping from stream label (``unif``, ``uzipf0.75``...) to the
        per-second fraction of dropped queries relative to the rate.
    """
    scale = scale or get_scale()
    specs = fig3_specs(scale, seed=get_seed(seed), utilization=utilization,
                       preset=preset)
    return assemble_fig3(specs, execute_specs(specs))


def render_fig3(results: Dict[str, List[float]]) -> None:
    """The combined-report block (``python -m repro fig3``)."""
    from repro.experiments.report import sparkline

    print("series (drop fraction per second, vs rate):")
    for name, series in results.items():
        print(f"  {name:>10} {sparkline(series)}  "
              f"(mean {sum(series) / len(series):.4f})")


EXPERIMENT = Experiment(
    name="fig3",
    title="fraction of queries dropped every second over time (N_S)",
    specs=fig3_specs,
    assemble=assemble_fig3,
    render=render_fig3,
)


def reshuffle_times(scale: Scale, alpha_index: int) -> List[float]:
    """The instants at which stream ``alpha_index`` reshuffles popularity."""
    stagger = scale.warmup / 5.0
    start = scale.warmup + (alpha_index + 1) * stagger
    return [start + i * scale.phase for i in range(1, scale.n_phases)]


def main() -> None:  # pragma: no cover - exercised via examples
    from repro.experiments.report import print_series_table

    results = run_fig3()
    print("Fig. 3 -- fraction of queries dropped every second (vs rate)")
    print_series_table(results, bin_label="t(s)")


if __name__ == "__main__":  # pragma: no cover
    main()
