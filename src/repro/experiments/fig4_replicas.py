"""Fig. 4: replicas created every second over time (N_C).

Same streams as Fig. 3 but on the file-system namespace.  The paper
plots replica creations per second relative to the query rate: a burst
during hierarchical stabilisation, then a spike at every popularity
reshuffle, decaying as coverage is reached.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import replica_fraction_series
from repro.experiments.common import (
    Scale,
    ZIPF_ORDERS,
    build,
    get_scale,
    make_nc,
    rate_for_utilization,
    run_workload,
)
from repro.experiments.parallel import parallel_map
from repro.workload.streams import WorkloadSpec, cuzipf_stream, unif_stream


def fig4_stream(
    scale: Scale,
    spec: WorkloadSpec,
    rate: float,
    n_bins: int,
    seed: int,
) -> tuple:
    """One stream of Fig. 4 -- picklable task unit."""
    ns = make_nc(scale)
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return spec.name, replica_fraction_series(system, rate, n_bins)


def run_fig4(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Reproduce Fig. 4's per-second replica-creation series on N_C.

    Returns:
        Mapping from stream label to replicas created per second
        relative to the insertion rate.
    """
    scale = scale or get_scale()
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    stagger = scale.warmup / 5.0
    duration = scale.warmup + 4 * stagger + scale.n_phases * scale.phase
    specs: List[WorkloadSpec] = [
        unif_stream(rate, duration, seed=seed, name="unif")
    ]
    for i, alpha in enumerate(ZIPF_ORDERS):
        specs.append(
            cuzipf_stream(
                rate,
                alpha,
                warmup=scale.warmup + (i + 1) * stagger,
                phase=scale.phase,
                n_phases=scale.n_phases,
                seed=seed,
                name=f"uzipf{alpha:.2f}",
            )
        )

    n_bins = int(duration) + 1
    results: Dict[str, List[float]] = {}
    tasks = [
        dict(scale=scale, spec=spec, rate=rate, n_bins=n_bins, seed=seed)
        for spec in specs
    ]
    for name, series in parallel_map(fig4_stream, tasks):
        results[name] = series
    return results


def main() -> None:  # pragma: no cover
    from repro.experiments.report import print_series_table

    results = run_fig4()
    print("Fig. 4 -- replicas created every second (vs rate), namespace N_C")
    print_series_table(results, bin_label="t(s)")


if __name__ == "__main__":  # pragma: no cover
    main()
