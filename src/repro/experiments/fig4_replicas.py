"""Fig. 4: replicas created every second over time (N_C).

Same streams as Fig. 3 but on the file-system namespace.  The paper
plots replica creations per second relative to the query rate: a burst
during hierarchical stabilisation, then a spike at every popularity
reshuffle, decaying as coverage is reached.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.series import replica_fraction_series
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    ZIPF_ORDERS,
    build,
    get_scale,
    get_seed,
    make_nc,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import WorkloadSpec, cuzipf_stream, unif_stream


def fig4_stream(
    scale: Scale,
    spec: WorkloadSpec,
    rate: float,
    n_bins: int,
    seed: int,
) -> tuple:
    """One stream of Fig. 4 -- picklable task unit."""
    ns = make_nc(scale)
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return spec.name, replica_fraction_series(system, rate, n_bins)


def fig4_specs(
    scale: Scale,
    seed: int = 0,
    utilization: float = 0.4,
) -> List[RunSpec]:
    """Declare Fig. 4's run list: one spec per query stream (on N_C)."""
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    stagger = scale.warmup / 5.0
    duration = scale.warmup + 4 * stagger + scale.n_phases * scale.phase
    streams: List[WorkloadSpec] = [
        unif_stream(rate, duration, seed=seed, name="unif")
    ]
    for i, alpha in enumerate(ZIPF_ORDERS):
        streams.append(
            cuzipf_stream(
                rate,
                alpha,
                warmup=scale.warmup + (i + 1) * stagger,
                phase=scale.phase,
                n_phases=scale.n_phases,
                seed=seed,
                name=f"uzipf{alpha:.2f}",
            )
        )

    n_bins = int(duration) + 1
    return [
        RunSpec(
            experiment="fig4",
            task=stream.name,
            fn="repro.experiments.fig4_replicas:fig4_stream",
            params=dict(scale=scale, spec=stream, rate=rate, n_bins=n_bins,
                        seed=seed),
        )
        for stream in streams
    ]


def assemble_fig4(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, List[float]]:
    """Rebuild the ``{stream: series}`` mapping from run payloads."""
    return {name: series for name, series in payloads}


def run_fig4(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Reproduce Fig. 4's per-second replica-creation series on N_C.

    Returns:
        Mapping from stream label to replicas created per second
        relative to the insertion rate.
    """
    scale = scale or get_scale()
    specs = fig4_specs(scale, seed=get_seed(seed), utilization=utilization)
    return assemble_fig4(specs, execute_specs(specs))


def render_fig4(results: Dict[str, List[float]]) -> None:
    """The combined-report block (``python -m repro fig4``)."""
    from repro.experiments.report import sparkline

    print("series (replicas created per second, vs rate):")
    for name, series in results.items():
        print(f"  {name:>10} {sparkline(series)}  "
              f"(total {sum(series):.4f})")


EXPERIMENT = Experiment(
    name="fig4",
    title="replicas created every second over time (N_C)",
    specs=fig4_specs,
    assemble=assemble_fig4,
    render=render_fig4,
)


def main() -> None:  # pragma: no cover
    from repro.experiments.report import print_series_table

    results = run_fig4()
    print("Fig. 4 -- replicas created every second (vs rate), namespace N_C")
    print_series_table(results, bin_label="t(s)")


if __name__ == "__main__":  # pragma: no cover
    main()
