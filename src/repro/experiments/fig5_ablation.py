"""Fig. 5: fraction of dropped queries -- B vs BC vs BCR across streams.

The paper's headline ablation: the base system (B), base + caching
(BC), and base + caching + replication (BCR) are run against ten query
streams -- ``unif`` and ``uzipf{0.75,1.00,1.25,1.50}`` on each of N_S
(suffix S) and N_C (suffix C).  Replication keeps drops near zero;
without it a large fraction of queries is dropped "to a point where the
system is barely usable", and caching alone *aggravates* N_S while
slightly helping N_C.

The 30 runs are independent; set ``REPRO_WORKERS`` to fan them out
across cores (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.summary import run_summary
from repro.cluster.config import SystemConfig
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    ZIPF_ORDERS,
    build,
    get_scale,
    get_seed,
    make_nc,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import cuzipf_stream, unif_stream

PRESETS = ("B", "BC", "BCR")

#: (label, namespace kind, alpha); alpha 0 = uniform
STREAMS: Tuple[Tuple[str, str, float], ...] = tuple(
    (f"unif{suffix}", suffix, 0.0) for suffix in ("S", "C")
) + tuple(
    (f"uzipf{suffix}{alpha:.2f}", suffix, alpha)
    for suffix in ("S", "C")
    for alpha in ZIPF_ORDERS
)


def fig5_cell(
    scale: Scale,
    preset: str,
    label: str,
    ns_kind: str,
    alpha: float,
    utilization: float,
    seed: int,
) -> Tuple[str, str, Dict[str, float]]:
    """One (preset, stream) cell of Fig. 5 -- picklable task unit."""
    ns = make_ns(scale) if ns_kind == "S" else make_nc(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    duration = scale.warmup + scale.n_phases * scale.phase
    if alpha == 0.0:
        spec = unif_stream(rate, duration, seed=seed)
    else:
        spec = cuzipf_stream(
            rate, alpha, warmup=scale.warmup, phase=scale.phase,
            n_phases=scale.n_phases, seed=seed,
        )
    system = build(ns, scale, preset=preset, seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return preset, label, run_summary(system)


def fig5_specs(
    scale: Scale,
    seed: int = 0,
    utilization: float = 0.4,
    presets=PRESETS,
) -> List[RunSpec]:
    """Declare Fig. 5's run list: one spec per (preset, stream) cell."""
    return [
        RunSpec(
            experiment="fig5",
            task=f"{preset}:{label}",
            fn="repro.experiments.fig5_ablation:fig5_cell",
            params=dict(
                scale=scale, preset=preset, label=label, ns_kind=kind,
                alpha=alpha, utilization=utilization, seed=seed,
            ),
        )
        for preset in presets
        for (label, kind, alpha) in STREAMS
    ]


def assemble_fig5(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Rebuild ``{preset: {stream: summary}}`` from run payloads."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {
        p: {} for p in dict.fromkeys(s.params["preset"] for s in specs)
    }
    for preset, label, summary in payloads:
        results[preset][label] = summary
    return results


def run_fig5(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: Optional[int] = None,
    presets=PRESETS,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Reproduce Fig. 5.

    Returns:
        ``{preset: {stream: run_summary_dict}}`` -- the drop fractions
        inside are what the paper's bar chart plots.
    """
    scale = scale or get_scale()
    specs = fig5_specs(scale, seed=get_seed(seed), utilization=utilization,
                       presets=presets)
    return assemble_fig5(specs, execute_specs(specs, workers=workers))


def run_fig5_sparse(
    n_servers: int = 256,
    levels: int = 10,
    utilization: float = 0.3,
    duration: float = 20.0,
    seed: int = 1,
    presets=PRESETS,
    alphas=(0.0, 1.25),
) -> Dict[str, Dict[str, float]]:
    """Fig. 5 on N_S with *sparse* ownership (8 nodes per server).

    The paper's two sharpest Fig. 5 effects need thin per-server
    ownership (1,000 servers for 32,767 nodes) to show: (i) the base
    system drops a large fraction of queries from the hierarchical
    bottleneck alone, and (ii) caching *aggravates* N_S -- cached
    pointers to the top of the tree concentrate traffic onto those
    nodes' owners.  At the dense tiny/small scales those owners also
    own dozens of other nodes and absorb the load, so this entry point
    rebuilds the paper's ownership ratio directly (compare Fig. 9's
    8-nodes-per-server setup).

    Returns:
        ``{preset: {stream: drop_fraction}}``.
    """
    from repro.cluster.builder import build_system
    from repro.namespace.generators import balanced_tree
    from repro.workload.arrivals import WorkloadDriver

    ns = balanced_tree(levels=levels)
    rate = rate_for_utilization(utilization, n_servers, hops_estimate=5.0)
    results: Dict[str, Dict[str, float]] = {}
    factories = {
        "B": SystemConfig.base,
        "BC": SystemConfig.caching,
        "BCR": SystemConfig.replicated,
    }
    for preset in presets:
        per_stream: Dict[str, float] = {}
        for alpha in alphas:
            label = "unifS" if alpha == 0.0 else f"uzipfS{alpha:.2f}"
            cfg = factories[preset](
                n_servers=n_servers, seed=seed, cache_slots=12,
                digest_probe_limit=1,
            )
            system = build_system(ns, cfg)
            if alpha == 0.0:
                spec = unif_stream(rate, duration, seed=seed)
            else:
                spec = cuzipf_stream(
                    rate, alpha, warmup=duration / 2, phase=duration / 4,
                    n_phases=2, seed=seed,
                )
            WorkloadDriver(system, spec).run(extra_time=3.0)
            per_stream[label] = system.stats.drop_fraction
        results[preset] = per_stream
    return results


def drop_table(results) -> Dict[str, Dict[str, float]]:
    """Collapse :func:`run_fig5` output to ``{preset: {stream: drop%}}``."""
    return {
        preset: {s: summ["drop_fraction"] for s, summ in streams.items()}
        for preset, streams in results.items()
    }


def render_fig5(results: Dict[str, Dict[str, Dict[str, float]]]) -> None:
    """The combined-report block (``python -m repro fig5``)."""
    from repro.experiments.report import format_matrix

    table = drop_table(results)
    streams = list(next(iter(table.values())).keys())
    print(format_matrix(
        row_labels=list(table),
        col_labels=streams,
        values=[[table[p][s] for s in streams] for p in table],
        width=11,
    ))


EXPERIMENT = Experiment(
    name="fig5",
    title="dropped queries: base (B) vs +caching (BC) vs +replication (BCR)",
    specs=fig5_specs,
    assemble=assemble_fig5,
    render=render_fig5,
)


def main() -> None:  # pragma: no cover
    from repro.experiments.report import print_matrix

    results = run_fig5()
    print("Fig. 5 -- fraction of dropped queries (B / BC / BCR)")
    table = drop_table(results)
    streams = list(next(iter(table.values())).keys())
    print_matrix(
        row_labels=list(table.keys()),
        col_labels=streams,
        values=[[table[p][s] for s in streams] for p in table],
    )


if __name__ == "__main__":  # pragma: no cover
    main()
