"""Fig. 6: utilisation and load balance over time.

Left panel: per-second mean and maximum server load for ``cuzipf1.00``
streams at three arrival rates (the paper's utilisation targets).
Right panel: the per-second maximum averaged over an 11-second sliding
window -- showing that highly-loaded servers are transient and that
load balance defined over larger intervals approaches the mean.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.series import load_series
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    UTILIZATION_TARGETS,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.sim.stats import WindowAverager
from repro.workload.streams import cuzipf_stream


def fig6_point(scale: Scale, util: float, alpha: float, seed: int) -> tuple:
    """One utilisation point of Fig. 6 -- picklable task unit."""
    ns = make_ns(scale)
    rate = rate_for_utilization(
        util, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    mean, mx = load_series(system, n_bins=int(spec.duration) + 1)
    return util, rate, mean, mx


def fig6_specs(
    scale: Scale,
    seed: int = 0,
    utilizations=UTILIZATION_TARGETS,
    alpha: float = 1.0,
) -> List[RunSpec]:
    """Declare Fig. 6's run list: one spec per utilisation target."""
    return [
        RunSpec(
            experiment="fig6",
            task=f"util{util:g}",
            fn="repro.experiments.fig6_load:fig6_point",
            params=dict(scale=scale, util=util, alpha=alpha, seed=seed),
        )
        for util in utilizations
    ]


def assemble_fig6(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, Dict[str, List[float]]]:
    """Rebuild the per-utilisation series (smoothing happens here)."""
    results: Dict[str, Dict[str, List[float]]] = {}
    for spec, (util, rate, mean, mx) in zip(specs, payloads):
        scale: Scale = spec.params["scale"]
        results[f"util{util:g}"] = {
            "mean": mean,
            "max": mx,
            "smoothed_max": WindowAverager.smooth(mx, scale.smooth_window),
            "rate": [rate],
        }
    return results


def run_fig6(
    scale: Optional[Scale] = None,
    utilizations=UTILIZATION_TARGETS,
    alpha: float = 1.0,
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Reproduce Fig. 6.

    Returns:
        ``{label: {"mean": [...], "max": [...], "smoothed_max": [...]}}``
        keyed by utilisation label; each inner list is per-second.
    """
    scale = scale or get_scale()
    specs = fig6_specs(scale, seed=get_seed(seed), utilizations=utilizations,
                       alpha=alpha)
    return assemble_fig6(specs, execute_specs(specs))


def render_fig6(results: Dict[str, Dict[str, List[float]]]) -> None:
    """The combined-report block (``python -m repro fig6``)."""
    for label, series in results.items():
        n = len(series["mean"])
        print(f"  {label}: rate={series['rate'][0]:.0f}/s "
              f"mean={sum(series['mean']) / n:.3f} "
              f"max(avg)={sum(series['max']) / n:.3f} "
              f"smoothed-max(peak)={max(series['smoothed_max']):.3f}")


EXPERIMENT = Experiment(
    name="fig6",
    title="utilisation and load balance over time",
    specs=fig6_specs,
    assemble=assemble_fig6,
    render=render_fig6,
)


def main() -> None:  # pragma: no cover
    results = run_fig6()
    for label, series in results.items():
        n = len(series["mean"])
        mean_avg = sum(series["mean"]) / n
        max_avg = sum(series["max"]) / n
        smooth_peak = max(series["smoothed_max"])
        print(
            f"{label}: rate={series['rate'][0]:.0f}/s  "
            f"mean-load(avg)={mean_avg:.3f}  max-load(avg)={max_avg:.3f}  "
            f"smoothed-max(peak)={smooth_peak:.3f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
