"""Fig. 6: utilisation and load balance over time.

Left panel: per-second mean and maximum server load for ``cuzipf1.00``
streams at three arrival rates (the paper's utilisation targets).
Right panel: the per-second maximum averaged over an 11-second sliding
window -- showing that highly-loaded servers are transient and that
load balance defined over larger intervals approaches the mean.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import load_series
from repro.experiments.common import (
    Scale,
    UTILIZATION_TARGETS,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.experiments.parallel import parallel_map
from repro.sim.stats import WindowAverager
from repro.workload.streams import cuzipf_stream


def fig6_point(scale: Scale, util: float, alpha: float, seed: int) -> tuple:
    """One utilisation point of Fig. 6 -- picklable task unit."""
    ns = make_ns(scale)
    rate = rate_for_utilization(
        util, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    mean, mx = load_series(system, n_bins=int(spec.duration) + 1)
    return util, rate, mean, mx


def run_fig6(
    scale: Optional[Scale] = None,
    utilizations=UTILIZATION_TARGETS,
    alpha: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Reproduce Fig. 6.

    Returns:
        ``{label: {"mean": [...], "max": [...], "smoothed_max": [...]}}``
        keyed by utilisation label; each inner list is per-second.
    """
    scale = scale or get_scale()
    results: Dict[str, Dict[str, List[float]]] = {}
    tasks = [dict(scale=scale, util=util, alpha=alpha, seed=seed)
             for util in utilizations]
    for util, rate, mean, mx in parallel_map(fig6_point, tasks):
        results[f"util{util:g}"] = {
            "mean": mean,
            "max": mx,
            "smoothed_max": WindowAverager.smooth(mx, scale.smooth_window),
            "rate": [rate],
        }
    return results


def main() -> None:  # pragma: no cover
    results = run_fig6()
    for label, series in results.items():
        n = len(series["mean"])
        mean_avg = sum(series["mean"]) / n
        max_avg = sum(series["max"]) / n
        smooth_peak = max(series["smoothed_max"])
        print(
            f"{label}: rate={series['rate'][0]:.0f}/s  "
            f"mean-load(avg)={mean_avg:.3f}  max-load(avg)={max_avg:.3f}  "
            f"smoothed-max(peak)={smooth_peak:.3f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
