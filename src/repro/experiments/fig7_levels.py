"""Fig. 7: average replicas created per namespace level (N_S).

For each level of the balanced binary tree, the average number of
replicas created for nodes on that level, under uniform and Zipf query
streams at several arrival rates.  The paper's signature shape: the
peak sits at level 2, *not* at the root -- pointers to the handful of
level-1/2 nodes stay in every server's cache, so many routes shortcut
past the top of the tree, while level-2 nodes still aggregate enough
traffic to overload their hosts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.levels import replicas_per_level
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.experiments.parallel import parallel_map
from repro.workload.streams import cuzipf_stream, unif_stream


def fig7_point(scale: Scale, util: float, kind: str, alpha: float,
               seed: int) -> tuple:
    """One (rate, stream-kind) cell of Fig. 7 -- picklable task unit."""
    ns = make_ns(scale)
    duration = scale.warmup + scale.n_phases * scale.phase
    rate = rate_for_utilization(
        util, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    if kind == "unif":
        spec = unif_stream(rate, duration, seed=seed)
    else:
        spec = cuzipf_stream(
            rate, alpha, warmup=scale.warmup, phase=scale.phase,
            n_phases=scale.n_phases, seed=seed,
        )
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return f"{kind}@{util:g}", replicas_per_level(system)


def run_fig7(
    scale: Optional[Scale] = None,
    utilizations=(0.1, 0.2, 0.4),
    alpha: float = 1.0,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Reproduce Fig. 7.

    Returns:
        Mapping ``"{unif|uzipf}@util"`` -> average replicas created per
        level (index = tree depth, 0 = root).
    """
    scale = scale or get_scale()
    tasks = [
        dict(scale=scale, util=util, kind=kind, alpha=alpha, seed=seed)
        for util in utilizations
        for kind in ("unif", "uzipf")
    ]
    results: Dict[str, List[float]] = {}
    for label, series in parallel_map(fig7_point, tasks):
        results[label] = series
    return results


def main() -> None:  # pragma: no cover
    results = run_fig7()
    levels = len(next(iter(results.values())))
    header = "level " + " ".join(f"{k:>12}" for k in results)
    print("Fig. 7 -- average replicas created per namespace level")
    print(header)
    for lvl in range(levels):
        row = " ".join(f"{results[k][lvl]:12.2f}" for k in results)
        print(f"{lvl:>5} {row}")


if __name__ == "__main__":  # pragma: no cover
    main()
