"""Fig. 7: average replicas created per namespace level (N_S).

For each level of the balanced binary tree, the average number of
replicas created for nodes on that level, under uniform and Zipf query
streams at several arrival rates.  The paper's signature shape: the
peak sits at level 2, *not* at the root -- pointers to the handful of
level-1/2 nodes stay in every server's cache, so many routes shortcut
past the top of the tree, while level-2 nodes still aggregate enough
traffic to overload their hosts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.levels import replicas_per_level
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import cuzipf_stream, unif_stream


def fig7_point(scale: Scale, util: float, kind: str, alpha: float,
               seed: int) -> tuple:
    """One (rate, stream-kind) cell of Fig. 7 -- picklable task unit."""
    ns = make_ns(scale)
    duration = scale.warmup + scale.n_phases * scale.phase
    rate = rate_for_utilization(
        util, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    if kind == "unif":
        spec = unif_stream(rate, duration, seed=seed)
    else:
        spec = cuzipf_stream(
            rate, alpha, warmup=scale.warmup, phase=scale.phase,
            n_phases=scale.n_phases, seed=seed,
        )
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    return f"{kind}@{util:g}", replicas_per_level(system)


def fig7_specs(
    scale: Scale,
    seed: int = 0,
    utilizations=(0.1, 0.2, 0.4),
    alpha: float = 1.0,
) -> List[RunSpec]:
    """Declare Fig. 7's run list: one spec per (rate, stream kind)."""
    return [
        RunSpec(
            experiment="fig7",
            task=f"{kind}@{util:g}",
            fn="repro.experiments.fig7_levels:fig7_point",
            params=dict(scale=scale, util=util, kind=kind, alpha=alpha,
                        seed=seed),
        )
        for util in utilizations
        for kind in ("unif", "uzipf")
    ]


def assemble_fig7(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, List[float]]:
    """Rebuild the ``{label: per-level series}`` mapping."""
    return {label: series for label, series in payloads}


def run_fig7(
    scale: Optional[Scale] = None,
    utilizations=(0.1, 0.2, 0.4),
    alpha: float = 1.0,
    seed: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Reproduce Fig. 7.

    Returns:
        Mapping ``"{unif|uzipf}@util"`` -> average replicas created per
        level (index = tree depth, 0 = root).
    """
    scale = scale or get_scale()
    specs = fig7_specs(scale, seed=get_seed(seed), utilizations=utilizations,
                       alpha=alpha)
    return assemble_fig7(specs, execute_specs(specs))


def render_fig7(results: Dict[str, List[float]]) -> None:
    """The combined-report block (``python -m repro fig7``)."""
    levels = len(next(iter(results.values())))
    print("  level " + " ".join(f"{k:>11}" for k in results))
    for lvl in range(levels):
        row = " ".join(f"{results[k][lvl]:11.2f}" for k in results)
        print(f"  {lvl:>5} {row}")


EXPERIMENT = Experiment(
    name="fig7",
    title="average replicas created per namespace level (N_S)",
    specs=fig7_specs,
    assemble=assemble_fig7,
    render=render_fig7,
)


def main() -> None:  # pragma: no cover
    results = run_fig7()
    levels = len(next(iter(results.values())))
    header = "level " + " ".join(f"{k:>12}" for k in results)
    print("Fig. 7 -- average replicas created per namespace level")
    print(header)
    for lvl in range(levels):
        row = " ".join(f"{results[k][lvl]:12.2f}" for k in results)
        print(f"{lvl:>5} {row}")


if __name__ == "__main__":  # pragma: no cover
    main()
