"""Fig. 8: stabilisation and long-term behaviour.

Long constant-distribution runs (``unif`` and ``cuzipf1.00`` with a
short uniform prefix) on both namespaces, plotting replicas created per
minute.  The paper's finding: under a constant request distribution the
replica-creation rate decays like an exponential toward quiescence --
the protocol stabilises rather than churning forever.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.series import minute_buckets, rate_series
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_nc,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import StreamSegment, WorkloadSpec, unif_stream


def fig8_stream(
    scale: Scale,
    suffix: str,
    spec: WorkloadSpec,
    total: float,
    seed: int,
) -> tuple:
    """One long-run stream of Fig. 8 -- picklable task unit."""
    ns = make_ns(scale) if suffix == "S" else make_nc(scale)
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)
    per_second = rate_series(system, "replicas_created", n_bins=int(total) + 1)
    return spec.name, minute_buckets(per_second,
                                     seconds_per_bucket=scale.long_bucket)


def _long_cuzipf(rate: float, alpha: float, warmup: float, total: float,
                 seed: int, name: str) -> WorkloadSpec:
    """unif warm-up then ONE long Zipf phase (constant distribution)."""
    return WorkloadSpec(
        rate=rate,
        segments=(
            StreamSegment(warmup, alpha=0.0),
            StreamSegment(total - warmup, alpha=alpha, reshuffle=True),
        ),
        seed=seed,
        name=name,
    )


def fig8_specs(
    scale: Scale,
    seed: int = 0,
    utilization: float = 0.35,
    alpha: float = 1.0,
) -> List[RunSpec]:
    """Declare Fig. 8's run list: one long run per (namespace, stream)."""
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    total = scale.long_run
    specs: List[RunSpec] = []
    for suffix in ("S", "C"):
        for kind in ("unif", "uzipf"):
            if kind == "unif":
                stream = unif_stream(rate, total, seed=seed,
                                     name=f"unif{suffix}")
            else:
                stream = _long_cuzipf(
                    rate, alpha, warmup=scale.warmup, total=total,
                    seed=seed, name=f"uzipf{suffix}{alpha:.2f}",
                )
            specs.append(RunSpec(
                experiment="fig8",
                task=stream.name,
                fn="repro.experiments.fig8_stabilization:fig8_stream",
                params=dict(scale=scale, suffix=suffix, spec=stream,
                            total=total, seed=seed),
            ))
    return specs


def assemble_fig8(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, List[float]]:
    """Rebuild the ``{stream: per-bucket counts}`` mapping."""
    return {name: buckets for name, buckets in payloads}


def run_fig8(
    scale: Optional[Scale] = None,
    utilization: float = 0.35,
    alpha: float = 1.0,
    seed: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Reproduce Fig. 8.

    Returns:
        Mapping stream label (unifS/unifC/uzipfS1.00/uzipfC1.00) to
        replicas created per bucket (paper: per minute).
    """
    scale = scale or get_scale()
    specs = fig8_specs(scale, seed=get_seed(seed), utilization=utilization,
                       alpha=alpha)
    return assemble_fig8(specs, execute_specs(specs))


def decay_ratio(buckets: List[float]) -> float:
    """Late-to-early replica-creation ratio (quiescence indicator).

    Compares the mean of the last quarter of buckets to the first
    quarter; a stabilising protocol drives this well below 1.
    """
    if len(buckets) < 4:
        raise ValueError("need at least 4 buckets")
    q = max(1, len(buckets) // 4)
    early = sum(buckets[:q]) / q
    late = sum(buckets[-q:]) / q
    return late / early if early > 0 else 0.0


def render_fig8(results: Dict[str, List[float]]) -> None:
    """The combined-report block (``python -m repro fig8``)."""
    for name, buckets in results.items():
        ratio = decay_ratio(buckets) if sum(buckets) else float("nan")
        print(f"  {name:>12} buckets={[round(b) for b in buckets]} "
              f"decay={ratio:.2f}")


EXPERIMENT = Experiment(
    name="fig8",
    title="stabilisation: replicas created per bucket over a long run",
    specs=fig8_specs,
    assemble=assemble_fig8,
    render=render_fig8,
)


def main() -> None:  # pragma: no cover
    results = run_fig8()
    print("Fig. 8 -- replicas created per bucket over a long run")
    for name, buckets in results.items():
        tail = " ".join(f"{b:.0f}" for b in buckets)
        print(f"{name:>12}: {tail}  (decay ratio {decay_ratio(buckets):.2f})")


if __name__ == "__main__":  # pragma: no cover
    main()
