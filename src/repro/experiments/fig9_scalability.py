"""Fig. 9: scalability with system size.

Server count doubles across the sweep (paper: 2^9..2^14) with 8 nodes
per server (balanced binary tree), cache size and Rmap growing
logarithmically, Rfact fixed at 2, and the arrival rate proportional to
system size (constant utilisation).  The paper reports query latency
scaling logarithmically, replication events linearly, and drops
approaching proportionality.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.series import rate_series
from repro.analysis.summary import run_summary
from repro.cluster.config import SystemConfig
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    get_scale,
    get_seed,
    rate_for_utilization,
)
from repro.namespace.generators import balanced_tree
from repro.sim.shard import run_sharded_workload
from repro.workload.streams import cuzipf_stream


def sweep_sizes(scale: Scale) -> List[int]:
    """Server-count sweep for the given scale (powers of two)."""
    if scale.name == "million":
        # a single point: 1,024 servers x 1,024 nodes/server (~10^6)
        return [2**10]
    if scale.name == "paper":
        return [2**k for k in range(9, 15)]
    if scale.name == "small":
        return [2**k for k in range(5, 10)]
    return [2**k for k in range(4, 8)]


def fig9_point(
    scale: Scale,
    n_servers: int,
    base_k: int,
    utilization: float,
    alpha: float,
    duration: Optional[float],
    seed: int,
) -> Dict[str, float]:
    """One system size of the Fig. 9 sweep -- picklable task unit."""
    k = int(math.log2(n_servers))
    # fig9_nodes_per_server nodes per server (paper: 8): a binary tree
    # with nodes_per_server * 2^k - 1 nodes
    ns = balanced_tree(
        levels=k + int(math.log2(scale.fig9_nodes_per_server)) - 1
    )
    cache_slots = scale.cache_slots + 2 * (k - base_k)
    rmap = 2 + (k - base_k)
    cfg = SystemConfig.replicated(
        n_servers=n_servers,
        seed=seed,
        cache_slots=cache_slots,
        rmap=rmap,
        rfact=2.0,
    )
    rate = rate_for_utilization(
        utilization, n_servers, hops_estimate=scale.hops_estimate
    )
    run_time = duration if duration is not None else max(
        10.0, scale.phase * 2
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=run_time / 3, phase=run_time / 3,
        n_phases=2, seed=seed,
    )
    # honours REPRO_SHARDS (--shards): >1 runs this point on the
    # windowed multi-engine coordinator, bit-identical to serial
    system = run_sharded_workload(ns, cfg, spec, spec.duration + scale.drain)
    summary = run_summary(system)
    summary["latency_hops"] = summary["mean_hops"]
    summary["rate"] = rate
    summary["nodes"] = float(len(ns))
    # steady-state drop fraction: second half of the run, after the
    # cold hierarchical stabilisation (whose absolute cost grows
    # with system size and would otherwise dominate the average)
    n_bins = int(spec.duration) + 1
    half = n_bins // 2
    injected = rate_series(system, "injected", n_bins)[half:]
    drops = rate_series(system, "drops", n_bins)[half:]
    inj = sum(injected)
    summary["drop_fraction_steady"] = sum(drops) / inj if inj else 0.0
    return summary


def fig9_specs(
    scale: Scale,
    seed: int = 0,
    utilization: float = 0.3,
    alpha: float = 1.0,
    duration: Optional[float] = None,
) -> List[RunSpec]:
    """Declare Fig. 9's run list: one spec per system size."""
    sizes = sweep_sizes(scale)
    base_k = int(math.log2(sizes[0]))
    return [
        RunSpec(
            experiment="fig9",
            task=f"n{n_servers}",
            fn="repro.experiments.fig9_scalability:fig9_point",
            params=dict(scale=scale, n_servers=n_servers, base_k=base_k,
                        utilization=utilization, alpha=alpha,
                        duration=duration, seed=seed),
        )
        for n_servers in sizes
    ]


def assemble_fig9(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[int, Dict[str, float]]:
    """Rebuild ``{n_servers: summary}`` keyed in sweep order."""
    return {
        spec.params["n_servers"]: summary
        for spec, summary in zip(specs, payloads)
    }


def run_fig9(
    scale: Optional[Scale] = None,
    utilization: float = 0.3,
    alpha: float = 1.0,
    duration: Optional[float] = None,
    seed: Optional[int] = None,
) -> Dict[int, Dict[str, float]]:
    """Reproduce Fig. 9.

    For each system size: mean query latency (seconds and hops), total
    replication events, and total dropped queries.

    Returns:
        ``{n_servers: summary_dict}`` with added keys ``latency_hops``,
        ``rate``, ``nodes``.
    """
    scale = scale or get_scale()
    specs = fig9_specs(scale, seed=get_seed(seed), utilization=utilization,
                       alpha=alpha, duration=duration)
    return assemble_fig9(specs, execute_specs(specs))


def render_fig9(results: Dict[int, Dict[str, float]]) -> None:
    """The combined-report block (``python -m repro fig9``)."""
    print(f"  {'servers':>8} {'hops':>6} {'latency(ms)':>12} "
          f"{'replications':>13} {'drop%':>7}")
    for n, s in results.items():
        print(f"  {n:>8} {s['mean_hops']:>6.2f} "
              f"{s['mean_latency'] * 1000:>12.1f} "
              f"{s['replicas_created']:>13.0f} "
              f"{100 * s['drop_fraction']:>7.2f}")


EXPERIMENT = Experiment(
    name="fig9",
    title="scalability with system size (latency, replication, drops)",
    specs=fig9_specs,
    assemble=assemble_fig9,
    render=render_fig9,
)


def main() -> None:  # pragma: no cover
    results = run_fig9()
    print("Fig. 9 -- scalability (latency, replications, drops)")
    print(f"{'servers':>8} {'latency(s)':>11} {'hops':>6} "
          f"{'log2(repl)':>11} {'log2(drops)':>12}")
    for n, s in results.items():
        repl = s["replicas_created"]
        drops = s["dropped"]
        print(
            f"{n:>8} {s['mean_latency']:>11.3f} {s['mean_hops']:>6.2f} "
            f"{math.log2(repl) if repl else 0:>11.2f} "
            f"{math.log2(drops) if drops else 0:>12.2f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
