"""Heterogeneity experiment (paper section 5, closing argument).

"A recent analysis of two popular P2P file sharing systems concludes
that the most distinguishing feature of these systems is their
heterogeneity. We believe that the adaptive nature of our replication
model makes it a first-class candidate for exploiting system
heterogeneity."

The experiment quantifies that: half the servers are made k-times
slower, and the same skewed workload is run with and without the
adaptive protocol.  Because the load metric is *locally normalized*
(busy fraction of each server's own capacity), slow servers hit the
high-water threshold sooner and shed their hot nodes toward fast ones
-- no global knowledge of machine speeds required.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.summary import run_summary
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import cuzipf_stream


def heterogeneity_case(
    scale: Scale,
    label: str,
    preset: str,
    slow_fraction: float,
    slow_factor: float,
    utilization: float,
    alpha: float,
    seed: int,
) -> Tuple[str, Dict[str, float]]:
    """One population case -- picklable task unit.

    ``slow_fraction == 0`` is the homogeneous control (no overrides).
    """
    ns = make_ns(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    overrides: Dict[str, float] = {}
    if slow_fraction > 0.0:
        overrides = dict(slow_server_fraction=slow_fraction,
                         slow_factor=slow_factor)
    system = build(ns, scale, preset=preset, seed=seed, **overrides)
    run_workload(system, spec, drain=scale.drain)
    summary = run_summary(system)
    slow = [p for p in system.peers
            if p.service_mean > system.cfg.service_mean]
    hosted_slow = sum(p.n_hosted for p in slow)
    hosted_all = sum(p.n_hosted for p in system.peers)
    summary["slow_hosted_share"] = (
        hosted_slow / hosted_all if hosted_all else 0.0
    )
    summary["n_slow"] = float(len(slow))
    return label, summary


def heterogeneity_specs(
    scale: Scale,
    seed: int = 0,
    slow_fraction: float = 0.5,
    slow_factor: float = 2.5,
    utilization: float = 0.35,
    alpha: float = 1.0,
) -> List[RunSpec]:
    """Declare the run list: homogeneous control plus two mixed fleets."""
    cases = (
        ("homogeneous-BCR", "BCR", 0.0),
        ("heterogeneous-BC", "BC", slow_fraction),
        ("heterogeneous-BCR", "BCR", slow_fraction),
    )
    return [
        RunSpec(
            experiment="heterogeneity",
            task=label,
            fn="repro.experiments.heterogeneity:heterogeneity_case",
            params=dict(scale=scale, label=label, preset=preset,
                        slow_fraction=fraction, slow_factor=slow_factor,
                        utilization=utilization, alpha=alpha, seed=seed),
        )
        for label, preset, fraction in cases
    ]


def assemble_heterogeneity(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, Dict[str, float]]:
    """Rebuild the ``{case: summary}`` mapping from run payloads."""
    return {label: summary for label, summary in payloads}


def run_heterogeneity(
    scale: Optional[Scale] = None,
    slow_fraction: float = 0.5,
    slow_factor: float = 2.5,
    utilization: float = 0.35,
    alpha: float = 1.0,
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Compare BC vs BCR on a heterogeneous server population.

    Returns ``{mode: summary}`` for modes ``homogeneous-BCR``,
    ``heterogeneous-BC``, ``heterogeneous-BCR``, each including
    ``slow_hosted_share`` -- the fraction of hosted node instances
    sitting on slow servers at the end (adaptive replication should
    push it below the static share).
    """
    scale = scale or get_scale()
    specs = heterogeneity_specs(
        scale, seed=get_seed(seed), slow_fraction=slow_fraction,
        slow_factor=slow_factor, utilization=utilization, alpha=alpha,
    )
    return assemble_heterogeneity(specs, execute_specs(specs))


def render_heterogeneity(results: Dict[str, Dict[str, float]]) -> None:
    """The combined-report block (``python -m repro heterogeneity``)."""
    print(f"  {'case':>20} {'drop%':>7} {'slow hosted %':>14}")
    for label, s in results.items():
        print(f"  {label:>20} {100 * s['drop_fraction']:>7.2f} "
              f"{100 * s['slow_hosted_share']:>14.1f}")


EXPERIMENT = Experiment(
    name="heterogeneity",
    title="adaptive replication on a half-slow fleet",
    specs=heterogeneity_specs,
    assemble=assemble_heterogeneity,
    render=render_heterogeneity,
)


def main() -> None:  # pragma: no cover
    results = run_heterogeneity()
    print("Heterogeneity -- half the servers 2.5x slower")
    print(f"{'case':>20} {'drop%':>7} {'latency(ms)':>12} {'replicas':>9} "
          f"{'slow hosted %':>14}")
    for label, s in results.items():
        print(f"{label:>20} {100 * s['drop_fraction']:>7.2f} "
              f"{1000 * s['mean_latency']:>12.1f} "
              f"{s['replicas_created']:>9.0f} "
              f"{100 * s['slow_hosted_share']:>14.1f}")


if __name__ == "__main__":  # pragma: no cover
    main()
