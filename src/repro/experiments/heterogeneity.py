"""Heterogeneity experiment (paper section 5, closing argument).

"A recent analysis of two popular P2P file sharing systems concludes
that the most distinguishing feature of these systems is their
heterogeneity. We believe that the adaptive nature of our replication
model makes it a first-class candidate for exploiting system
heterogeneity."

The experiment quantifies that: half the servers are made k-times
slower, and the same skewed workload is run with and without the
adaptive protocol.  Because the load metric is *locally normalized*
(busy fraction of each server's own capacity), slow servers hit the
high-water threshold sooner and shed their hot nodes toward fast ones
-- no global knowledge of machine speeds required.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.summary import run_summary
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.workload.streams import cuzipf_stream


def run_heterogeneity(
    scale: Optional[Scale] = None,
    slow_fraction: float = 0.5,
    slow_factor: float = 2.5,
    utilization: float = 0.35,
    alpha: float = 1.0,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Compare BC vs BCR on a heterogeneous server population.

    Returns ``{mode: summary}`` for modes ``homogeneous-BCR``,
    ``heterogeneous-BC``, ``heterogeneous-BCR``, each including
    ``slow_hosted_share`` -- the fraction of hosted node instances
    sitting on slow servers at the end (adaptive replication should
    push it below the static share).
    """
    scale = scale or get_scale()
    ns = make_ns(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    cases = {
        "homogeneous-BCR": ("BCR", {}),
        "heterogeneous-BC": ("BC", dict(
            slow_server_fraction=slow_fraction, slow_factor=slow_factor)),
        "heterogeneous-BCR": ("BCR", dict(
            slow_server_fraction=slow_fraction, slow_factor=slow_factor)),
    }
    results: Dict[str, Dict[str, float]] = {}
    for label, (preset, overrides) in cases.items():
        system = build(ns, scale, preset=preset, seed=seed, **overrides)
        run_workload(system, spec, drain=scale.drain)
        summary = run_summary(system)
        slow = [p for p in system.peers
                if p.service_mean > system.cfg.service_mean]
        hosted_slow = sum(p.n_hosted for p in slow)
        hosted_all = sum(p.n_hosted for p in system.peers)
        summary["slow_hosted_share"] = (
            hosted_slow / hosted_all if hosted_all else 0.0
        )
        summary["n_slow"] = float(len(slow))
        results[label] = summary
    return results


def main() -> None:  # pragma: no cover
    results = run_heterogeneity()
    print("Heterogeneity -- half the servers 2.5x slower")
    print(f"{'case':>20} {'drop%':>7} {'latency(ms)':>12} {'replicas':>9} "
          f"{'slow hosted %':>14}")
    for label, s in results.items():
        print(f"{label:>20} {100 * s['drop_fraction']:>7.2f} "
              f"{1000 * s['mean_latency']:>12.1f} "
              f"{s['replicas_created']:>9.0f} "
              f"{100 * s['slow_hosted_share']:>14.1f}")


if __name__ == "__main__":  # pragma: no cover
    main()
