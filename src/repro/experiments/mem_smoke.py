"""Million-node build smoke under an enforced RSS budget (``make mem``).

Builds the two 10^6-node namespaces (balanced N_S-shaped and the
file-system-shaped ``coda_like_tree``), reports build time, deep size,
and process peak RSS, and exits non-zero if the peak exceeds the
budget.  This is the guard for the arena refactor's headline claim:
a million-node namespace fits in laptop RAM (DESIGN.md section 11).

The default budget is the documented 2 GB for namespace builds
(override with ``--budget-mb`` or ``REPRO_MEM_BUDGET_MB``).

Usage::

    python -m repro mem-smoke                 # 2 GB budget
    python -m repro mem-smoke --nodes 100000  # quicker CI variant
    python -m repro mem-smoke --budget-mb 512
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from repro.namespace.generators import balanced_tree, coda_like_tree
from repro.sim.memsize import deep_sizeof, fmt_bytes, peak_rss_bytes

# det: ok(env-read) -- CI memory-budget knob for the smoke gate; it
# bounds the harness, never a simulation run's fingerprint
DEFAULT_BUDGET_MB = float(os.environ.get("REPRO_MEM_BUDGET_MB", "2048"))


def run_smoke(n_nodes: int = 10**6) -> Dict[str, Dict[str, float]]:
    """Build both namespace shapes at ``n_nodes``; return measurements."""
    levels = max(1, (n_nodes + 1).bit_length() - 1)
    out: Dict[str, Dict[str, float]] = {}
    for name, build in (
        (f"balanced_l{levels}", lambda: balanced_tree(levels=levels)),
        (f"coda_{n_nodes}", lambda: coda_like_tree(n_nodes=n_nodes)),
    ):
        t0 = time.perf_counter()
        ns = build()
        build_s = time.perf_counter() - t0
        out[name] = {
            "nodes": len(ns),
            "build_s": round(build_s, 3),
            "deep_bytes": deep_sizeof(ns),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        del ns
    return out


def main(argv: List[str]) -> int:
    n_nodes = 10**6
    budget_mb = DEFAULT_BUDGET_MB
    args = list(argv)
    while args:
        a = args.pop(0)
        if a == "--nodes":
            n_nodes = int(args.pop(0))
        elif a == "--budget-mb":
            budget_mb = float(args.pop(0))
        else:
            raise SystemExit(f"unknown argument {a!r} "
                             "(expected --nodes N / --budget-mb MB)")
    results = run_smoke(n_nodes)
    print(json.dumps(results, indent=1, sort_keys=True))
    peak = peak_rss_bytes()
    budget = budget_mb * 1024 * 1024
    if peak == 0:
        print("warning: peak RSS unavailable on this platform; "
              "budget not enforced", file=sys.stderr)
        return 0
    if peak > budget:
        print(f"FAIL: peak RSS {fmt_bytes(peak)} exceeds the "
              f"{fmt_bytes(int(budget))} budget", file=sys.stderr)
        return 1
    print(f"ok: peak RSS {fmt_bytes(peak)} within the "
          f"{fmt_bytes(int(budget))} budget", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main(sys.argv[1:]))
