"""Multiprocess fan-out for experiment campaigns.

Every figure experiment is a set of *independent* simulation runs
(streams x presets x rates), which parallelises embarrassingly across
cores.  ``parallel_map`` runs a module-level function over a list of
kwargs dicts, in-process by default (deterministic, debuggable) or in a
process pool when requested.

Select the worker count with the ``REPRO_WORKERS`` environment variable
(``0``/unset = serial; ``N`` = pool of N processes; ``auto`` = one per
core, capped by the task count)::

    REPRO_WORKERS=auto python -m repro.experiments.runner fig5
    REPRO_WORKERS=8 pytest benchmarks/test_bench_fig5.py --benchmark-only

The task function must be importable (module-level, not a closure) and
its kwargs picklable -- pass scale objects and seeds, rebuild systems
inside the task.  Results are returned in task order regardless of
completion order, so parallel and serial runs produce identical output.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence


def worker_count(n_tasks: int, workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Args:
        n_tasks: number of independent tasks.
        workers: explicit count; None consults ``REPRO_WORKERS``.

    Returns:
        0 for serial execution, otherwise the pool size.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "0").strip().lower()
        if raw in ("", "0", "none"):
            return 0
        if raw == "auto":
            # one worker per core even on single-core hosts: 'auto' is an
            # explicit request for a pool, never the serial fallback
            return min(os.cpu_count() or 1, n_tasks)
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}"
                ) from None
    if workers <= 1:
        return 0
    return min(workers, n_tasks)


class ParallelTaskError(RuntimeError):
    """A ``parallel_map`` task failed; names the task, not just the error.

    A bare pool failure surfaces as a remote traceback with no hint of
    which of N identical-looking tasks died; this wrapper carries the
    task index, the function, and a truncated kwargs summary.  The
    message also embeds the original exception, since exception chains
    (``__cause__``) do not survive pickling back from pool workers.
    """


def _describe_kwargs(kwargs: Dict[str, Any], limit: int = 60) -> str:
    parts = []
    for k, v in kwargs.items():
        r = repr(v)
        if len(r) > limit:
            r = r[: limit - 3] + "..."
        parts.append(f"{k}={r}")
    return ", ".join(parts)


def _invoke(payload):
    index, total, fn, kwargs = payload
    try:
        return fn(**kwargs)
    except Exception as exc:
        raise ParallelTaskError(
            f"task {index}/{total} ({fn.__module__}.{fn.__qualname__}) "
            f"failed with {type(exc).__name__}: {exc} "
            f"[kwargs: {_describe_kwargs(kwargs)}]"
        ) from exc


def shard_process_budget(workers: Optional[int] = None) -> int:
    """Worker processes one sharded *run* may claim without
    oversubscribing the machine.

    Campaign-level parallelism composes with run-level sharding: a
    campaign running W concurrent tasks (``REPRO_WORKERS``) in which
    each task shards across S engines (``REPRO_SHARDS``) would occupy
    W x S cores.  Precedence is campaign-first -- ``REPRO_WORKERS``
    claims its cores and each run divides the remainder::

        budget = cpu_count // max(1, campaign workers)

    so ``REPRO_WORKERS=auto REPRO_SHARDS=4`` runs the shards inline
    (budget 1 per run) rather than stacking 4 engines on every core,
    while a lone ``REPRO_SHARDS=4`` run on an 8-core host gets all 4
    processes.  The shard backend resolver
    (:func:`repro.sim.shard.resolve_backend`) consults this: ``auto``
    never exceeds the budget, an explicit ``process`` request may but
    warns.

    Args:
        workers: campaign worker count; None consults ``REPRO_WORKERS``
            (``auto`` counts as one per core, i.e. budget 1).
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "0").strip().lower()
        if raw in ("", "0", "none"):
            workers = 1
        elif raw == "auto":
            workers = cpus
        else:
            try:
                workers = int(raw)
            except ValueError:
                workers = 1
    return max(1, cpus // max(1, workers))


class PersistentWorker:
    """A long-lived spawn-context subprocess driven over a duplex pipe.

    ``parallel_map``'s pool fits stateless fan-out; sharded simulation
    needs the opposite -- each worker holds an engine heap and peer
    state across many request/response rounds (one per time window).
    The target must be a module-level callable taking the child end of
    the pipe; it receives ``(op, payload)`` tuples and replies
    ``("ok", result)`` or ``("error", traceback_text)``.
    """

    __slots__ = ("proc", "_conn")

    def __init__(self, target: Callable[..., None]) -> None:
        ctx = multiprocessing.get_context("spawn")
        self._conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=target, args=(child,), daemon=True)
        self.proc.start()
        child.close()

    def send(self, msg: Any) -> None:
        self._conn.send(msg)

    def recv(self) -> Any:
        try:
            status, payload = self._conn.recv()
        except EOFError:
            raise ParallelTaskError(
                f"shard worker pid={self.proc.pid} exited unexpectedly"
            ) from None
        if status == "error":
            raise ParallelTaskError(f"shard worker failed:\n{payload}")
        return payload

    def send_frame(self, frame: Any) -> None:
        """Ship one raw bytes frame (no pickling).

        Raises:
            ParallelTaskError: the worker's pipe is gone (it died).
        """
        try:
            self._conn.send_bytes(frame)
        except (BrokenPipeError, OSError):
            raise ParallelTaskError(
                f"shard worker pid={self.proc.pid} exited unexpectedly "
                "(pipe closed on send)"
            ) from None

    def recv_frame(self) -> bytes:
        """Receive one raw bytes frame; EOF means the worker died."""
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError):
            raise ParallelTaskError(
                f"shard worker pid={self.proc.pid} exited unexpectedly"
            ) from None

    def request(self, msg: Any) -> Any:
        self.send(msg)
        return self.recv()

    def close(self, sentinel: Optional[bytes] = None) -> None:
        """Ask the worker to exit; escalate to terminate if it won't.

        Args:
            sentinel: exit request as a raw bytes frame for workers
                speaking the frame protocol; default is the legacy
                pickled ``("exit", None)`` tuple.
        """
        try:
            if sentinel is not None:
                self._conn.send_bytes(sentinel)
            else:
                self._conn.send(("exit", None))
        except (BrokenPipeError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()
            self.proc.join(timeout=5)


def parallel_map(
    fn: Callable[..., Any],
    kwargs_list: Sequence[Dict[str, Any]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(**kw)`` for every kw, possibly across processes.

    Serial when the resolved worker count is 0 or there is at most one
    task.  Uses the ``spawn`` start method for portability (no
    inherited simulator state).  A failing task raises
    :class:`ParallelTaskError` naming its index and kwargs (in both the
    serial and pooled paths, so failures read the same either way).
    """
    n = worker_count(len(kwargs_list), workers)
    total = len(kwargs_list)
    payloads = [(i, total, fn, kw) for i, kw in enumerate(kwargs_list)]
    if n == 0 or total <= 1:
        return [_invoke(p) for p in payloads]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=n) as pool:
        return pool.map(_invoke, payloads)
