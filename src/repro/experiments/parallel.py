"""Multiprocess fan-out for experiment campaigns.

Every figure experiment is a set of *independent* simulation runs
(streams x presets x rates), which parallelises embarrassingly across
cores.  ``parallel_map`` runs a module-level function over a list of
kwargs dicts, in-process by default (deterministic, debuggable) or in a
process pool when requested.

Select the worker count with the ``REPRO_WORKERS`` environment variable
(``0``/unset = serial; ``N`` = pool of N processes; ``auto`` = one per
core, capped by the task count)::

    REPRO_WORKERS=auto python -m repro.experiments.runner fig5
    REPRO_WORKERS=8 pytest benchmarks/test_bench_fig5.py --benchmark-only

The task function must be importable (module-level, not a closure) and
its kwargs picklable -- pass scale objects and seeds, rebuild systems
inside the task.  Results are returned in task order regardless of
completion order, so parallel and serial runs produce identical output.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence


def worker_count(n_tasks: int, workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Args:
        n_tasks: number of independent tasks.
        workers: explicit count; None consults ``REPRO_WORKERS``.

    Returns:
        0 for serial execution, otherwise the pool size.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "0").strip().lower()
        if raw in ("", "0", "none"):
            return 0
        if raw == "auto":
            # one worker per core even on single-core hosts: 'auto' is an
            # explicit request for a pool, never the serial fallback
            return min(os.cpu_count() or 1, n_tasks)
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}"
                ) from None
    if workers <= 1:
        return 0
    return min(workers, n_tasks)


class ParallelTaskError(RuntimeError):
    """A ``parallel_map`` task failed; names the task, not just the error.

    A bare pool failure surfaces as a remote traceback with no hint of
    which of N identical-looking tasks died; this wrapper carries the
    task index, the function, and a truncated kwargs summary.  The
    message also embeds the original exception, since exception chains
    (``__cause__``) do not survive pickling back from pool workers.
    """


def _describe_kwargs(kwargs: Dict[str, Any], limit: int = 60) -> str:
    parts = []
    for k, v in kwargs.items():
        r = repr(v)
        if len(r) > limit:
            r = r[: limit - 3] + "..."
        parts.append(f"{k}={r}")
    return ", ".join(parts)


def _invoke(payload):
    index, total, fn, kwargs = payload
    try:
        return fn(**kwargs)
    except Exception as exc:
        raise ParallelTaskError(
            f"task {index}/{total} ({fn.__module__}.{fn.__qualname__}) "
            f"failed with {type(exc).__name__}: {exc} "
            f"[kwargs: {_describe_kwargs(kwargs)}]"
        ) from exc


def parallel_map(
    fn: Callable[..., Any],
    kwargs_list: Sequence[Dict[str, Any]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(**kw)`` for every kw, possibly across processes.

    Serial when the resolved worker count is 0 or there is at most one
    task.  Uses the ``spawn`` start method for portability (no
    inherited simulator state).  A failing task raises
    :class:`ParallelTaskError` naming its index and kwargs (in both the
    serial and pooled paths, so failures read the same either way).
    """
    n = worker_count(len(kwargs_list), workers)
    total = len(kwargs_list)
    payloads = [(i, total, fn, kw) for i, kw in enumerate(kwargs_list)]
    if n == 0 or total <= 1:
        return [_invoke(p) for p in payloads]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=n) as pool:
        return pool.map(_invoke, payloads)
