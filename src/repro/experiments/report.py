"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    width: int = 12,
    precision: int = 4,
) -> str:
    """A labelled numeric matrix as aligned text."""
    head = " " * 10 + "".join(f"{c:>{width}}" for c in col_labels)
    lines = [head]
    for label, row in zip(row_labels, values):
        cells = "".join(f"{v:>{width}.{precision}f}" for v in row)
        lines.append(f"{label:>10}{cells}")
    return "\n".join(lines)


def print_matrix(row_labels, col_labels, values, **kw) -> None:
    print(format_matrix(row_labels, col_labels, values, **kw))


def format_series_table(
    series: Mapping[str, Sequence[float]],
    bin_label: str = "bin",
    max_rows: int = 40,
    precision: int = 4,
) -> str:
    """Aligned columns, one per named series, downsampled to fit."""
    names = list(series)
    n = max(len(v) for v in series.values())
    step = max(1, n // max_rows)
    head = f"{bin_label:>6} " + " ".join(f"{nm:>12}" for nm in names)
    lines = [head]
    for i in range(0, n, step):
        cells = []
        for nm in names:
            vals = series[nm]
            cells.append(
                f"{vals[i]:>12.{precision}f}" if i < len(vals) else " " * 12
            )
        lines.append(f"{i:>6} " + " ".join(cells))
    return "\n".join(lines)


def print_series_table(series, **kw) -> None:
    print(format_series_table(series, **kw))


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse one-line chart (useful in terminal reports)."""
    blocks = " ▁▂▃▄▅▆▇█"
    if not values:
        return ""
    n = len(values)
    step = max(1, n // width)
    sampled = [max(values[i : i + step]) for i in range(0, n, step)]
    hi = max(sampled)
    if hi <= 0:
        return " " * len(sampled)
    return "".join(blocks[min(8, int(v / hi * 8))] for v in sampled)


def format_summary(summary: Mapping[str, float], title: str = "") -> str:
    lines = [title] if title else []
    for k, v in summary.items():
        lines.append(f"  {k:<24} {v:,.4f}")
    return "\n".join(lines)
