"""Fault-tolerance experiment (paper sections 1, 2.4, 3.1).

The paper lists fault tolerance among its evaluation goals and argues
it falls out of the load-driven design: servers hosting nodes whose
replicas failed incur more load after the failure and *replicate
again*; caches let routing jump over partitions.

The experiment: run a steady workload, fail a fraction of the servers
at a known instant, optionally recover them later, and measure

* the completion rate before / during / after the failure epoch,
* replica creations triggered by the failure (the re-replication
  reaction), and
* how much of the namespace became unreachable (black holes: every
  host failed).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import random

from repro.analysis.series import rate_series
from repro.cluster.failures import FailureInjector, unreachable_nodes
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
)
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import uzipf_stream


def resilience_run(
    scale: Scale,
    fail_fraction: float,
    utilization: float,
    alpha: float,
    recover: bool,
    seed: int,
) -> Dict[str, float]:
    """The full failure/recovery timeline -- picklable task unit."""
    ns = make_ns(scale)
    system = build(ns, scale, preset="BCR", seed=seed)
    injector = FailureInjector(system)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    phase = scale.phase
    total = 4 * phase
    spec = uzipf_stream(rate, total, alpha=alpha, seed=seed)
    driver = WorkloadDriver(system, spec)
    driver.start()

    system.run_until(2 * phase)
    n_fail = max(1, int(fail_fraction * scale.n_servers))
    injector.fail_random(n_fail, rng=random.Random(seed))
    holes = len(unreachable_nodes(system))

    if recover:
        system.run_until(3 * phase)
        injector.recover_all()
    system.run_until(total + scale.drain)

    injected = rate_series(system, "injected", int(total) + 1)
    completed = rate_series(system, "completions", int(total) + 1)
    created = rate_series(system, "replicas_created", int(total) + 1)

    def epoch(series, lo, hi):
        return sum(series[int(lo) : int(hi)])

    def ratio(lo, hi):
        inj = epoch(injected, lo, hi)
        return epoch(completed, lo, hi) / inj if inj else 0.0

    return {
        "n_failed": float(n_fail),
        "black_hole_nodes": float(holes),
        "completion_before": ratio(phase / 2, 2 * phase),
        "completion_during": ratio(2 * phase, 3 * phase),
        "completion_after": ratio(3 * phase + phase / 2, 4 * phase),
        "replicas_before": epoch(created, 0, 2 * phase),
        "replicas_during": epoch(created, 2 * phase, 3 * phase),
        "replicas_after": epoch(created, 3 * phase, 4 * phase),
        "recovered": 1.0 if recover else 0.0,
    }


def resilience_specs(
    scale: Scale,
    seed: int = 0,
    fail_fraction: float = 0.25,
    utilization: float = 0.3,
    alpha: float = 1.0,
    recover: bool = True,
) -> List[RunSpec]:
    """Declare the (single-run) resilience campaign.

    Raises:
        ValueError: for ``fail_fraction`` outside (0, 1).
    """
    if not 0.0 < fail_fraction < 1.0:
        raise ValueError("fail_fraction must be in (0, 1)")
    label = "recover" if recover else "no-recovery"
    return [RunSpec(
        experiment="resilience",
        task=f"fail{fail_fraction:g}:{label}",
        fn="repro.experiments.resilience:resilience_run",
        params=dict(scale=scale, fail_fraction=fail_fraction,
                    utilization=utilization, alpha=alpha, recover=recover,
                    seed=seed),
    )]


def assemble_resilience(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, float]:
    """The single run's flat metric dict."""
    return payloads[0]


def run_resilience(
    scale: Optional[Scale] = None,
    fail_fraction: float = 0.25,
    utilization: float = 0.3,
    alpha: float = 1.0,
    recover: bool = True,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """Fail ``fail_fraction`` of servers mid-run; measure the reaction.

    Timeline (in units of ``scale.phase``): steady traffic for 2
    phases, failure at t=2 phases, (optional) recovery at 3 phases,
    end at 4 phases.

    Returns a flat dict: completion rates per epoch, replica creations
    per epoch, black-hole node count at the failure instant.
    """
    scale = scale or get_scale()
    specs = resilience_specs(
        scale, seed=get_seed(seed), fail_fraction=fail_fraction,
        utilization=utilization, alpha=alpha, recover=recover,
    )
    return assemble_resilience(specs, execute_specs(specs))


def render_resilience(results: Dict[str, float]) -> None:
    """The combined-report block (``python -m repro resilience``)."""
    for k, v in results.items():
        print(f"  {k:<20} {v:,.3f}")


EXPERIMENT = Experiment(
    name="resilience",
    title="fail a quarter of the fleet mid-run; measure the reaction",
    specs=resilience_specs,
    assemble=assemble_resilience,
    render=render_resilience,
)


def main() -> None:  # pragma: no cover
    results = run_resilience()
    print("Resilience -- fail 25% of servers mid-run, recover one phase later")
    for k, v in results.items():
        print(f"  {k:<20} {v:,.3f}")


if __name__ == "__main__":  # pragma: no cover
    main()
