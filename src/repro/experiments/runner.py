"""Run every experiment and print a combined report.

Usage::

    python -m repro.experiments.runner             # tiny scale
    REPRO_SCALE=small python -m repro.experiments.runner
    python -m repro.experiments.runner fig5 fig7   # subset
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List

from repro.experiments.common import get_scale
from repro.experiments.report import (
    format_matrix,
    sparkline,
)


def _fig3(scale) -> None:
    from repro.experiments.fig3_drops import run_fig3

    results = run_fig3(scale=scale)
    print("series (drop fraction per second, vs rate):")
    for name, series in results.items():
        print(f"  {name:>10} {sparkline(series)}  "
              f"(mean {sum(series) / len(series):.4f})")


def _fig4(scale) -> None:
    from repro.experiments.fig4_replicas import run_fig4

    results = run_fig4(scale=scale)
    print("series (replicas created per second, vs rate):")
    for name, series in results.items():
        print(f"  {name:>10} {sparkline(series)}  "
              f"(total {sum(series) * 1.0:.4f})")


def _fig5(scale) -> None:
    from repro.experiments.fig5_ablation import drop_table, run_fig5

    table = drop_table(run_fig5(scale=scale))
    streams = list(next(iter(table.values())).keys())
    print(format_matrix(
        row_labels=list(table),
        col_labels=streams,
        values=[[table[p][s] for s in streams] for p in table],
        width=11,
    ))


def _fig6(scale) -> None:
    from repro.experiments.fig6_load import run_fig6

    for label, series in run_fig6(scale=scale).items():
        n = len(series["mean"])
        print(f"  {label}: rate={series['rate'][0]:.0f}/s "
              f"mean={sum(series['mean']) / n:.3f} "
              f"max(avg)={sum(series['max']) / n:.3f} "
              f"smoothed-max(peak)={max(series['smoothed_max']):.3f}")


def _fig7(scale) -> None:
    from repro.experiments.fig7_levels import run_fig7

    results = run_fig7(scale=scale)
    levels = len(next(iter(results.values())))
    print("  level " + " ".join(f"{k:>11}" for k in results))
    for lvl in range(levels):
        row = " ".join(f"{results[k][lvl]:11.2f}" for k in results)
        print(f"  {lvl:>5} {row}")


def _fig8(scale) -> None:
    from repro.experiments.fig8_stabilization import decay_ratio, run_fig8

    for name, buckets in run_fig8(scale=scale).items():
        ratio = decay_ratio(buckets) if sum(buckets) else float("nan")
        print(f"  {name:>12} buckets={[round(b) for b in buckets]} "
              f"decay={ratio:.2f}")


def _fig9(scale) -> None:
    from repro.experiments.fig9_scalability import run_fig9

    results = run_fig9(scale=scale)
    print(f"  {'servers':>8} {'hops':>6} {'latency(ms)':>12} "
          f"{'replications':>13} {'drop%':>7}")
    for n, s in results.items():
        print(f"  {n:>8} {s['mean_hops']:>6.2f} "
              f"{s['mean_latency'] * 1000:>12.1f} "
              f"{s['replicas_created']:>13.0f} "
              f"{100 * s['drop_fraction']:>7.2f}")


def _churn(scale) -> None:
    from repro.experiments.churn_digests import MODES, run_churn

    results = run_churn(scale=scale)
    print(f"  {'rfact':>7} " + " ".join(f"{m:>12}" for m in MODES)
          + "   (stale-hop rate)")
    for rfact, per_mode in results.items():
        row = " ".join(f"{per_mode[m]['stale_hop_rate']:12.4f}"
                       for m in MODES)
        print(f"  {rfact:>7} {row}")


def _heterogeneity(scale) -> None:
    from repro.experiments.heterogeneity import run_heterogeneity

    results = run_heterogeneity(scale=scale)
    print(f"  {'case':>20} {'drop%':>7} {'slow hosted %':>14}")
    for label, s in results.items():
        print(f"  {label:>20} {100 * s['drop_fraction']:>7.2f} "
              f"{100 * s['slow_hosted_share']:>14.1f}")


def _resilience(scale) -> None:
    from repro.experiments.resilience import run_resilience

    for k, v in run_resilience(scale=scale).items():
        print(f"  {k:<20} {v:,.3f}")


def _static(scale) -> None:
    from repro.experiments.static_vs_adaptive import run_static_vs_adaptive

    results = run_static_vs_adaptive(scale=scale)
    print(f"  {'mode':>10} {'warm-up':>9} {'shifting':>9} {'replicas':>9}")
    for mode, s in results.items():
        print(f"  {mode:>10} {s['drop_warmup']:>9.4f} "
              f"{s['drop_shifting']:>9.4f} {s['replicas_created']:>9.0f}")


def _table1(scale) -> None:
    from repro.experiments.table1_state import run_table1

    for rel, count in run_table1(scale=scale).items():
        print(f"  {rel:>12}: {count}")


EXPERIMENTS: Dict[str, Callable] = {
    "table1": _table1,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "churn": _churn,
    "heterogeneity": _heterogeneity,
    "resilience": _resilience,
    "static": _static,
}


def main(argv: List[str]) -> None:
    scale = get_scale()
    wanted = argv or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}"
        )
    print(f"scale={scale.name}  servers={scale.n_servers}  "
          f"N_S=2^{scale.ns_levels + 1}-1 nodes  N_C={scale.nc_nodes} nodes")
    for name in wanted:
        t0 = time.time()
        print(f"\n=== {name} ===")
        EXPERIMENTS[name](scale)
        print(f"  [{time.time() - t0:.1f}s]")


if __name__ == "__main__":
    main(sys.argv[1:])
