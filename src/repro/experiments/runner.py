"""Run every experiment and print a combined report.

A thin shell over the experiment registry in
:mod:`repro.experiments.campaign`: every block below is produced by the
owning module's ``EXPERIMENT`` (specs -> execute -> assemble -> render),
so this file holds no per-figure glue.

Usage::

    python -m repro.experiments.runner             # tiny scale
    REPRO_SCALE=small python -m repro.experiments.runner
    python -m repro.experiments.runner fig5 fig7   # subset
"""

from __future__ import annotations

import functools
import sys
import time
from typing import Callable, Dict, List

from repro.experiments.campaign import (
    EXPERIMENT_NAMES,
    execute_specs,
    get_experiment,
)
from repro.experiments.common import get_scale, get_seed


def run_and_render(name: str, scale) -> None:
    """Execute one registered experiment in memory; print its block."""
    exp = get_experiment(name)
    specs = exp.specs(scale, seed=get_seed())
    exp.render(exp.assemble(specs, execute_specs(specs)))


EXPERIMENTS: Dict[str, Callable] = {
    name: functools.partial(run_and_render, name)
    for name in EXPERIMENT_NAMES
}
"""Name -> ``f(scale)`` printing that experiment's report block (the
interface ``repro.sim.profile`` drives)."""


def main(argv: List[str]) -> None:
    """Print the combined report for the requested experiment subset."""
    scale = get_scale()
    # det: ok(sized-presence-truthiness) -- an empty argv means "print
    # every figure"; emptiness IS the signal here, not absence
    wanted = argv or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}"
        )
    print(f"scale={scale.name}  servers={scale.n_servers}  "
          f"N_S=2^{scale.ns_levels + 1}-1 nodes  N_C={scale.nc_nodes} nodes")
    for name in wanted:
        t0 = time.perf_counter()
        print(f"\n=== {name} ===")
        EXPERIMENTS[name](scale)
        print(f"  [{time.perf_counter() - t0:.1f}s]")


if __name__ == "__main__":
    main(sys.argv[1:])
