"""Static vs adaptive replication (the section 2.3 argument).

The paper: static replication can fix the *hierarchical* bottleneck,
but demand-induced hot-spots move, so an adaptive scheme is required.
We run three systems against the same workload -- a uniform warm-up
followed by shifting Zipf hot-spots:

* ``static``   -- caching + statically replicated top levels, adaptive
  replication disabled;
* ``adaptive`` -- the full BCR protocol;
* ``both``     -- static top-level replicas plus the adaptive protocol.

Static matches adaptive while demand is uniform (both neutralise the
tree-top bottleneck) and falls behind once hot-spots start moving.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.series import rate_series
from repro.analysis.summary import run_summary
from repro.core.static_replication import replicate_top_levels
from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
)
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import cuzipf_stream

MODES = ("static", "adaptive", "both")


def static_mode_run(
    scale: Scale,
    mode: str,
    utilization: float,
    alpha: float,
    depth_limit: int,
    copies: int,
    seed: int,
) -> Tuple[str, Dict[str, float]]:
    """One replication mode against the shared workload -- task unit."""
    ns = make_ns(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    overrides = {}
    if mode == "static":
        overrides["replication_enabled"] = False
    system = build(ns, scale, preset="BCR", seed=seed, **overrides)
    if mode in ("static", "both"):
        replicate_top_levels(
            system, depth_limit=depth_limit, copies=copies, seed=seed
        )
    driver = WorkloadDriver(system, spec)
    driver.start()
    system.run_until(spec.duration + scale.drain)

    summary = run_summary(system)
    n_bins = int(spec.duration) + 1
    injected = rate_series(system, "injected", n_bins)
    drops = rate_series(system, "drops", n_bins)
    w = int(scale.warmup)
    inj_w, drop_w = sum(injected[:w]), sum(drops[:w])
    inj_z, drop_z = sum(injected[w:]), sum(drops[w:])
    summary["drop_warmup"] = drop_w / inj_w if inj_w else 0.0
    summary["drop_shifting"] = drop_z / inj_z if inj_z else 0.0
    return mode, summary


def static_vs_adaptive_specs(
    scale: Scale,
    seed: int = 0,
    utilization: float = 0.4,
    alpha: float = 1.25,
    depth_limit: int = 2,
    copies: int = 4,
    modes=MODES,
) -> List[RunSpec]:
    """Declare the run list: one spec per replication mode."""
    return [
        RunSpec(
            experiment="static",
            task=mode,
            fn="repro.experiments.static_vs_adaptive:static_mode_run",
            params=dict(scale=scale, mode=mode, utilization=utilization,
                        alpha=alpha, depth_limit=depth_limit, copies=copies,
                        seed=seed),
        )
        for mode in modes
    ]


def assemble_static_vs_adaptive(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, Dict[str, float]]:
    """Rebuild the ``{mode: summary}`` mapping from run payloads."""
    return {mode: summary for mode, summary in payloads}


def run_static_vs_adaptive(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    alpha: float = 1.25,
    depth_limit: int = 2,
    copies: int = 4,
    seed: Optional[int] = None,
    modes=MODES,
) -> Dict[str, Dict[str, float]]:
    """Returns ``{mode: summary}`` with per-epoch drop fractions added
    (``drop_warmup`` for the uniform prefix, ``drop_shifting`` for the
    Zipf phases)."""
    scale = scale or get_scale()
    specs = static_vs_adaptive_specs(
        scale, seed=get_seed(seed), utilization=utilization, alpha=alpha,
        depth_limit=depth_limit, copies=copies, modes=modes,
    )
    return assemble_static_vs_adaptive(specs, execute_specs(specs))


def render_static_vs_adaptive(results: Dict[str, Dict[str, float]]) -> None:
    """The combined-report block (``python -m repro static``)."""
    print(f"  {'mode':>10} {'warm-up':>9} {'shifting':>9} {'replicas':>9}")
    for mode, s in results.items():
        print(f"  {mode:>10} {s['drop_warmup']:>9.4f} "
              f"{s['drop_shifting']:>9.4f} {s['replicas_created']:>9.0f}")


EXPERIMENT = Experiment(
    name="static",
    title="static vs adaptive replication under shifting hot-spots",
    specs=static_vs_adaptive_specs,
    assemble=assemble_static_vs_adaptive,
    render=render_static_vs_adaptive,
)


def main() -> None:  # pragma: no cover
    results = run_static_vs_adaptive()
    print("Static vs adaptive replication (drop fraction)")
    print(f"{'mode':>10} {'warm-up':>9} {'shifting':>9} {'overall':>9} "
          f"{'replicas':>9}")
    for mode, s in results.items():
        print(f"{mode:>10} {s['drop_warmup']:>9.4f} "
              f"{s['drop_shifting']:>9.4f} {s['drop_fraction']:>9.4f} "
              f"{s['replicas_created']:>9.0f}")


if __name__ == "__main__":  # pragma: no cover
    main()
