"""Generic parameter sweeps over the protocol's knobs.

The paper hand-picks a handful of parameter points (Rfact in the churn
study, cache/Rmap growth in Fig. 9).  :func:`sweep` generalises that:
run the same workload across any set of :class:`SystemConfig` field
values and collect the summaries -- the one-liner behind sensitivity
studies like "how does l_high affect drop rate vs replica churn?".

Sweep points are independent runs, so they parallelise via
``REPRO_WORKERS`` like every other campaign.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.analysis.summary import run_summary
from repro.cluster.config import SystemConfig
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.experiments.parallel import parallel_map
from repro.workload.streams import cuzipf_stream

_VALID_FIELDS = {f.name for f in dataclasses.fields(SystemConfig)}


def sweep_point(
    scale: Scale,
    field: str,
    value: Any,
    preset: str,
    utilization: float,
    alpha: float,
    seed: int,
) -> Tuple[Any, Dict[str, float]]:
    """One sweep point -- picklable task unit."""
    ns = make_ns(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, alpha, warmup=scale.warmup, phase=scale.phase,
        n_phases=scale.n_phases, seed=seed,
    )
    system = build(ns, scale, preset=preset, seed=seed, **{field: value})
    run_workload(system, spec, drain=scale.drain)
    return value, run_summary(system)


def sweep(
    field: str,
    values: Sequence[Any],
    scale: Optional[Scale] = None,
    preset: str = "BCR",
    utilization: float = 0.4,
    alpha: float = 1.0,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[Any, Dict[str, float]]:
    """Run the standard workload once per value of ``field``.

    Args:
        field: any :class:`SystemConfig` field name (validated).
        values: the values to sweep.

    Returns:
        ``{value: run_summary}`` in the order given.

    Raises:
        ValueError: for an unknown config field or empty values.
    """
    if field not in _VALID_FIELDS:
        raise ValueError(
            f"unknown SystemConfig field {field!r}; "
            f"valid fields include e.g. l_high, rfact, rmap, cache_slots"
        )
    if not values:
        raise ValueError("values must be non-empty")
    scale = scale or get_scale()
    tasks = [
        dict(scale=scale, field=field, value=v, preset=preset,
             utilization=utilization, alpha=alpha, seed=seed)
        for v in values
    ]
    out: Dict[Any, Dict[str, float]] = {}
    for value, summary in parallel_map(sweep_point, tasks, workers):
        out[value] = summary
    return out


def main() -> None:  # pragma: no cover
    import sys

    field = sys.argv[1] if len(sys.argv) > 1 else "l_high"
    raw = sys.argv[2:] or ["0.5", "0.7", "0.9"]
    values = [float(v) for v in raw]
    results = sweep(field, values)
    print(f"sweep over {field}")
    print(f"{field:>10} {'drop%':>8} {'latency(ms)':>12} {'replicas':>9} "
          f"{'stale%':>7}")
    for v, s in results.items():
        print(f"{v:>10} {100 * s['drop_fraction']:>8.3f} "
              f"{1000 * s['mean_latency']:>12.1f} "
              f"{s['replicas_created']:>9.0f} "
              f"{100 * s['stale_hop_rate']:>7.3f}")


if __name__ == "__main__":  # pragma: no cover
    main()
