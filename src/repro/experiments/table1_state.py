"""Table 1: audit a live system against the server-node state matrix.

After driving a workload (so caches fill and replicas exist), every
peer is audited: each node it has any state for is classified (owned /
replicated / neighboring / cached) and the maintained state columns are
checked against the paper's Table 1.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.campaign import Experiment, RunSpec, execute_specs
from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    get_seed,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.server.state import Relationship, audit_peer
from repro.workload.streams import cuzipf_stream


def table1_audit(
    scale: Scale, utilization: float, seed: int
) -> Dict[str, int]:
    """Drive a workload, then audit every peer -- picklable task unit.

    Raises:
        AssertionError: if any peer maintains state deviating from
            Table 1 (too much or missing mandatory columns).
    """
    ns = make_ns(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, 1.0, warmup=scale.warmup, phase=scale.phase,
        n_phases=2, seed=seed,
    )
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)

    totals: Dict[Relationship, int] = {r: 0 for r in Relationship}
    for peer in system.peers:
        for rel, count in audit_peer(peer).items():
            totals[rel] += count
    return {rel.value: count for rel, count in totals.items()}


def table1_specs(
    scale: Scale, seed: int = 0, utilization: float = 0.4
) -> List[RunSpec]:
    """Declare the (single-run) Table 1 audit campaign."""
    return [RunSpec(
        experiment="table1",
        task="audit",
        fn="repro.experiments.table1_state:table1_audit",
        params=dict(scale=scale, utilization=utilization, seed=seed),
    )]


def assemble_table1(
    specs: Sequence[RunSpec], payloads: Sequence[Any]
) -> Dict[str, int]:
    """The single audit's relationship counts."""
    return payloads[0]


def run_table1(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Audit all peers; returns aggregate node counts per relationship.

    Raises:
        AssertionError: if any peer maintains state deviating from
            Table 1 (too much or missing mandatory columns).
    """
    scale = scale or get_scale()
    specs = table1_specs(scale, seed=get_seed(seed), utilization=utilization)
    return assemble_table1(specs, execute_specs(specs))


def render_table1(counts: Dict[str, int]) -> None:
    """The combined-report block (``python -m repro table1``)."""
    for rel, count in counts.items():
        print(f"  {rel:>12}: {count}")


EXPERIMENT = Experiment(
    name="table1",
    title="audit live server state against the Table 1 matrix",
    specs=table1_specs,
    assemble=assemble_table1,
    render=render_table1,
)


def main() -> None:  # pragma: no cover
    counts = run_table1()
    print("Table 1 audit -- nodes per server-node relationship (all servers)")
    for rel, count in counts.items():
        print(f"{rel:>12}: {count}")


if __name__ == "__main__":  # pragma: no cover
    main()
