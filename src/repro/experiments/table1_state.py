"""Table 1: audit a live system against the server-node state matrix.

After driving a workload (so caches fill and replicas exist), every
peer is audited: each node it has any state for is classified (owned /
replicated / neighboring / cached) and the maintained state columns are
checked against the paper's Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    Scale,
    build,
    get_scale,
    make_ns,
    rate_for_utilization,
    run_workload,
)
from repro.server.state import Relationship, audit_peer
from repro.workload.streams import cuzipf_stream


def run_table1(
    scale: Optional[Scale] = None,
    utilization: float = 0.4,
    seed: int = 0,
) -> Dict[str, int]:
    """Audit all peers; returns aggregate node counts per relationship.

    Raises:
        AssertionError: if any peer maintains state deviating from
            Table 1 (too much or missing mandatory columns).
    """
    scale = scale or get_scale()
    ns = make_ns(scale)
    rate = rate_for_utilization(
        utilization, scale.n_servers, hops_estimate=scale.hops_estimate
    )
    spec = cuzipf_stream(
        rate, 1.0, warmup=scale.warmup, phase=scale.phase,
        n_phases=2, seed=seed,
    )
    system = build(ns, scale, preset="BCR", seed=seed)
    run_workload(system, spec, drain=scale.drain)

    totals: Dict[Relationship, int] = {r: 0 for r in Relationship}
    for peer in system.peers:
        for rel, count in audit_peer(peer).items():
            totals[rel] += count
    return {rel.value: count for rel, count in totals.items()}


def main() -> None:  # pragma: no cover
    counts = run_table1()
    print("Table 1 audit -- nodes per server-node relationship (all servers)")
    for rel, count in counts.items():
        print(f"{rel:>12}: {count}")


if __name__ == "__main__":  # pragma: no cover
    main()
