"""Bloom filters and inverse-mapping digests (paper section 3.6)."""

from repro.filters.bloom import BloomFilter, optimal_bits, optimal_hashes
from repro.filters.digest import Digest, DigestDirectory

__all__ = [
    "BloomFilter",
    "Digest",
    "DigestDirectory",
    "optimal_bits",
    "optimal_hashes",
]
