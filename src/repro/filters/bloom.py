"""A from-scratch Bloom filter over integer keys.

The bit vector is a list of 64-bit words, so membership tests touch
only machine-word ints (Python big-int shifts would dominate the
simulator's routing hot path).  A *snapshot* is the tuple of words:
immutable, cheap to share, and exactly what soft-state digest
dissemination needs -- a server piggybacks its current snapshot on a
message and remote copies go stale independently at zero copy cost.

Hash family: double hashing over two splitmix64-style mixes,
``h_i(x) = (h1(x) + i * h2(x)) mod m`` -- the Kirsch-Mitzenmacher
construction, which preserves the asymptotic false-positive rate of k
independent hashes.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

_MASK64 = (1 << 64) - 1

Snapshot = Tuple[int, ...]

try:
    _popcount = int.bit_count  # Python >= 3.10: native popcount
except AttributeError:  # pragma: no cover - exercised on Python 3.9
    def _popcount(w: int) -> int:
        return bin(w).count("1")


def _splitmix64(x: int) -> int:
    """One splitmix64 scramble round (avalanching 64-bit mix)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def optimal_bits(capacity: int, fp_rate: float) -> int:
    """Bit count m for a target false-positive rate at ``capacity`` items."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    m = -capacity * math.log(fp_rate) / (math.log(2) ** 2)
    return max(64, int(math.ceil(m / 64.0)) * 64)


def optimal_hashes(bits: int, capacity: int) -> int:
    """Hash count k minimising the false-positive rate."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    k = bits / capacity * math.log(2)
    return max(1, min(8, int(round(k))))


class BloomFilter:
    """Bloom filter over non-negative integer keys.

    >>> bf = BloomFilter.with_capacity(100, fp_rate=0.01)
    >>> bf.add(42)
    >>> 42 in bf
    True
    """

    __slots__ = ("n_bits", "n_hashes", "words", "n_items", "_salt", "pos_cache")

    def __init__(self, n_bits: int, n_hashes: int, salt: int = 0) -> None:
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        # round up to whole words
        self.n_bits = ((n_bits + 63) // 64) * 64
        self.n_hashes = n_hashes
        self.words: List[int] = [0] * (self.n_bits // 64)
        self.n_items = 0
        self._salt = salt & _MASK64
        # key -> tuple of bit positions; share one dict across all
        # same-geometry filters (the simulator probes the same node ids
        # against many digests, so hashing each id once ever pays off)
        self.pos_cache: dict = {}

    def share_cache_with(self, other: "BloomFilter") -> None:
        """Share the position cache of ``other`` (requires same geometry)."""
        if (self.n_bits, self.n_hashes, self._salt) != (
            other.n_bits,
            other.n_hashes,
            other._salt,
        ):
            raise ValueError("geometry mismatch; cannot share position cache")
        self.pos_cache = other.pos_cache

    def _positions(self, key: int) -> Tuple[int, ...]:
        """Cached bit positions for ``key``."""
        pos = self.pos_cache.get(key)
        if pos is None:
            h1, h2 = self._hash_pair(key)
            m = self.n_bits
            out = []
            for _ in range(self.n_hashes):
                out.append(h1 % m)
                h1 = (h1 + h2) & _MASK64
            pos = tuple(out)
            self.pos_cache[key] = pos
        return pos

    @classmethod
    def with_capacity(
        cls, capacity: int, fp_rate: float = 0.01, salt: int = 0
    ) -> "BloomFilter":
        """Size a filter for ``capacity`` items at the given FP rate."""
        m = optimal_bits(capacity, fp_rate)
        return cls(m, optimal_hashes(m, capacity), salt=salt)

    def _hash_pair(self, key: int) -> Tuple[int, int]:
        h1 = _splitmix64(key ^ self._salt)
        h2 = _splitmix64(h1) | 1  # odd step avoids short cycles
        return h1, h2

    def add(self, key: int) -> None:
        """Insert an integer key."""
        words = self.words
        for pos in self._positions(key):
            words[pos >> 6] |= 1 << (pos & 63)
        self.n_items += 1

    def update(self, keys: Iterable[int]) -> None:
        for k in keys:
            self.add(k)

    def __contains__(self, key: int) -> bool:
        words = self.words
        for pos in self._positions(key):
            if not (words[pos >> 6] >> (pos & 63)) & 1:
                return False
        return True

    def clear(self) -> None:
        """Remove all items (Bloom filters do not support point deletion)."""
        self.words = [0] * (self.n_bits // 64)
        self.n_items = 0

    def snapshot(self) -> Snapshot:
        """An immutable copy of the bit vector (tuple of 64-bit words)."""
        return tuple(self.words)

    def test_snapshot(self, snapshot_words: Snapshot, key: int) -> bool:
        """Test ``key`` against a previously taken :meth:`snapshot`."""
        for pos in self._positions(key):
            if not (snapshot_words[pos >> 6] >> (pos & 63)) & 1:
                return False
        return True

    @property
    def set_bits(self) -> int:
        """Number of bits currently set."""
        return sum(map(_popcount, self.words))

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation indicator)."""
        return self.set_bits / self.n_bits

    def expected_fp_rate(self) -> float:
        """FP rate estimate from the actual fill ratio."""
        return self.fill_ratio**self.n_hashes

    def __or__(self, other: "BloomFilter") -> "BloomFilter":
        """Union of two filters with identical geometry.

        ``n_items`` counts insertions, not distinct keys, so the
        union's count is the sum of both sides' insertion counts -- an
        upper bound on the number of distinct keys it holds (keys added
        to both sides are counted twice; :attr:`set_bits` /
        :attr:`fill_ratio` reflect the true saturation).
        """
        if (self.n_bits, self.n_hashes, self._salt) != (
            other.n_bits,
            other.n_hashes,
            other._salt,
        ):
            raise ValueError("cannot union Bloom filters of differing geometry")
        out = BloomFilter(self.n_bits, self.n_hashes, salt=self._salt)
        out.words = [a | b for a, b in zip(self.words, other.words)]
        out.n_items = self.n_items + other.n_items
        return out
