"""Inverse-mapping digests (paper section 3.6).

A *digest* approximates the inverse of the name-to-host mapping: given
a server, which nodes does it host?  Each server maintains a Bloom
filter over the ids of the nodes it hosts (owned + replicated) and
piggybacks versioned snapshots of it on outgoing messages.  Remote
servers keep the most recent snapshot per peer in a
:class:`DigestDirectory` and use it to

* discover routing shortcuts (test the destination and its ancestors
  against known digests -- section 3.6.1), and
* prune stale entries from node maps (section 3.6.2).

Snapshots are ``(version, bits)`` pairs; ``bits`` is the Bloom filter's
integer bit vector, so snapshotting never copies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.filters.bloom import BloomFilter, Snapshot


class Digest:
    """A server's own digest of the node ids it currently hosts.

    Bloom filters cannot delete, so un-hosting a node triggers a rebuild
    from the live host set; the version number increments on every
    mutation so remote snapshots can be ordered.
    """

    __slots__ = ("_bloom", "version", "owner_server")

    def __init__(
        self,
        capacity: int,
        fp_rate: float = 0.01,
        owner_server: int = -1,
        salt: int = 0x7E44AD12,
    ) -> None:
        self._bloom = BloomFilter.with_capacity(capacity, fp_rate, salt=salt)
        self.version = 0
        self.owner_server = owner_server

    @property
    def bloom(self) -> BloomFilter:
        """The underlying filter (exposed for geometry/cache sharing)."""
        return self._bloom

    def add(self, node: int) -> None:
        """Record that this server now hosts ``node``."""
        self._bloom.add(node)
        self.version += 1

    def rebuild(self, hosted: Iterable[int]) -> None:
        """Rebuild after un-hosting (replica eviction)."""
        self._bloom.clear()
        for v in hosted:
            self._bloom.add(v)
        self.version += 1

    def __contains__(self, node: int) -> bool:
        return node in self._bloom

    def snapshot(self) -> Tuple[int, int]:
        """A ``(version, bits)`` pair cheap enough to piggyback anywhere."""
        return (self.version, self._bloom.snapshot())

    def test_snapshot(self, snap: Tuple[int, int], node: int) -> bool:
        """Test ``node`` against a snapshot taken from a same-geometry digest."""
        return self._bloom.test_snapshot(snap[1], node)


class DigestDirectory:
    """Per-server store of the freshest known digest snapshot per peer.

    All digests in one simulated system share Bloom geometry, so any
    :class:`Digest` instance can evaluate any snapshot; the directory
    keeps a reference digest for that purpose.

    The directory is read once per routing decision but mutates only
    when piggybacked snapshots arrive, so the eligible-snapshot list
    the digest shortcut probes is cached and invalidated by a directory
    version counter (bumped on every stored/forgotten snapshot).
    """

    __slots__ = ("_ref", "_snaps", "max_peers", "version",
                 "_snaps_cache_key", "_snaps_cache")

    def __init__(self, reference: Digest, max_peers: int = 0) -> None:
        self._ref = reference
        self._snaps: Dict[int, Tuple[int, int]] = {}
        self.max_peers = max_peers  # 0 = unbounded
        #: bumped on every mutation; keys the eligible-snapshot cache
        self.version = 0
        self._snaps_cache_key: Optional[Tuple[int, int, int]] = None
        self._snaps_cache: List[Tuple[int, Snapshot]] = []

    def __len__(self) -> int:
        return len(self._snaps)

    @property
    def reference(self) -> Digest:
        """The digest used to evaluate snapshots (shared Bloom geometry)."""
        return self._ref

    def observe(self, server: int, snap: Tuple[int, int]) -> bool:
        """Record a snapshot for ``server`` if newer; return True if stored."""
        cur = self._snaps.get(server)
        if cur is not None and cur[0] >= snap[0]:
            return False
        if (
            cur is None
            and self.max_peers
            and len(self._snaps) >= self.max_peers
        ):
            # evict the stalest snapshot (lowest version) to make room
            victim = min(self._snaps, key=lambda s: self._snaps[s][0])
            del self._snaps[victim]
        self._snaps[server] = snap
        self.version += 1
        return True

    def forget(self, server: int) -> None:
        if self._snaps.pop(server, None) is not None:
            self.version += 1

    def eligible_snaps(
        self, exclude: int, limit: int = 0
    ) -> List[Tuple[int, Snapshot]]:
        """The ``(server, words)`` list the digest shortcut probes.

        Directory iteration order, skipping ``exclude``, truncated to
        the first ``limit`` entries (0 = unbounded) -- identical to the
        inline loop it replaces.  The list is cached until the
        directory's :attr:`version` moves (or the probe parameters
        change), so steady-state routing decisions reuse one list
        instead of re-materialising it per hop.
        """
        key = (self.version, exclude, limit)
        if key == self._snaps_cache_key:
            return self._snaps_cache
        out: List[Tuple[int, Snapshot]] = []
        for server, snap in self._snaps.items():
            if server == exclude:
                continue
            out.append((server, snap[1]))
            if limit and len(out) >= limit:
                break
        self._snaps_cache_key = key
        self._snaps_cache = out
        return out

    def get(self, server: int) -> Optional[Tuple[int, int]]:
        return self._snaps.get(server)

    def test(self, server: int, node: int) -> Optional[bool]:
        """Does ``server`` (by its last known digest) host ``node``?

        Returns None when no snapshot is known for ``server``.
        """
        snap = self._snaps.get(server)
        if snap is None:
            return None
        return self._ref.test_snapshot(snap, node)

    def servers(self) -> Iterable[int]:
        return self._snaps.keys()

    def known_hosts_of(self, node: int) -> Iterable[int]:
        """Servers whose last known digest claims to host ``node``."""
        ref = self._ref
        return [
            s for s, snap in self._snaps.items() if ref.test_snapshot(snap, node)
        ]
