"""Hierarchical namespace substrate for TerraDir.

A TerraDir namespace is a rooted tree of fully-qualified hierarchical
names (``/university/public/people/...``).  Internally nodes are dense
integer identifiers (the root is always ``0``) so that the hot routing
path never touches strings; :class:`~repro.namespace.tree.Namespace`
maps between the two representations.
"""

from repro.namespace.name import (
    ROOT_NAME,
    ancestors_of_name,
    basename,
    is_prefix,
    join,
    parent_name,
    split,
    validate_name,
)
from repro.namespace.graph import GraphNamespace, mesh_of_trees
from repro.namespace.meta import MetaStore, NodeMeta
from repro.namespace.tree import Namespace, NamespaceBuilder
from repro.namespace.generators import (
    balanced_tree,
    coda_like_tree,
    path_tree,
    random_tree,
    university_tree,
)

__all__ = [
    "GraphNamespace",
    "MetaStore",
    "NodeMeta",
    "ROOT_NAME",
    "Namespace",
    "NamespaceBuilder",
    "ancestors_of_name",
    "balanced_tree",
    "basename",
    "coda_like_tree",
    "is_prefix",
    "join",
    "mesh_of_trees",
    "parent_name",
    "path_tree",
    "random_tree",
    "split",
    "university_tree",
    "validate_name",
]
