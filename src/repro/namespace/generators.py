"""Namespace generators for the paper's two evaluation namespaces.

* :func:`balanced_tree` -- the synthetic N_S namespace: a perfectly
  balanced k-ary tree (the paper uses a binary tree with levels 0..14,
  i.e. 32,767 nodes).
* :func:`coda_like_tree` -- stands in for the paper's N_C namespace, the
  file tree of the Coda server *barber* (January 1993 trace).  We do not
  have that trace; this generator produces a deterministic synthetic
  file-system-shaped tree instead (see DESIGN.md, substitutions).
* :func:`random_tree` -- uniform random recursive tree, useful in tests.
* :func:`university_tree` -- the 11-node example of the paper's Fig. 1.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.namespace.tree import Namespace, NamespaceBuilder


def balanced_tree(levels: int, arity: int = 2) -> Namespace:
    """A perfectly balanced ``arity``-ary tree with depths ``0..levels``.

    ``balanced_tree(14)`` reproduces the paper's N_S namespace:
    ``2**15 - 1 == 32767`` nodes.

    Args:
        levels: depth of the deepest level (the root is level 0).
        arity: children per internal node.
    """
    if levels < 0:
        raise ValueError("levels must be >= 0")
    if arity < 1:
        raise ValueError("arity must be >= 1")
    b = NamespaceBuilder()
    frontier = [0]
    for _ in range(levels):
        nxt: List[int] = []
        for p in frontier:
            for i in range(arity):
                nxt.append(b.add_child(p, f"n{i}"))
        frontier = nxt
    return b.build()


def path_tree(length: int) -> Namespace:
    """A degenerate single-path tree of the given depth (worst-case shape)."""
    b = NamespaceBuilder()
    node = 0
    for i in range(length):
        node = b.add_child(node, f"p{i}")
    return b.build()


def random_tree(n_nodes: int, seed: int = 0, attach_power: float = 0.0) -> Namespace:
    """A random recursive tree with ``n_nodes`` nodes.

    Each new node attaches to an existing node chosen uniformly at
    random (``attach_power == 0``) or with probability proportional to
    ``(1 + degree)**attach_power`` (preferential attachment, producing
    heavier fan-out skew).
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    rng = random.Random(seed)
    b = NamespaceBuilder()
    degrees = [0]
    # attachment weights maintained incrementally: only the chosen
    # parent's entry changes per step, and ``(1 + d) ** p`` is a pure
    # function of the degree, so the values (and hence every
    # ``rng.choices`` draw) are bit-identical to a full rebuild
    weights = [1.0]
    for v in range(1, n_nodes):
        if attach_power <= 0.0:
            parent = rng.randrange(v)
        else:
            parent = rng.choices(range(v), weights=weights, k=1)[0]
        b.add_child(parent, f"n{v}")
        degrees[parent] += 1
        degrees.append(0)
        weights[parent] = (1.0 + degrees[parent]) ** attach_power
        weights.append(1.0)
    return b.build()


class _FrontierSampler:
    """A frontier supporting ``pop(i)`` at random indices in O(log n).

    Reproduces plain-``list`` semantics exactly -- ``pop(i)`` returns
    the *i*-th live entry in insertion order and preserves the order of
    the rest, ``append`` adds at the end -- so swapping it in changes
    no ``rng``-draw-to-entry correspondence.  Internally entries are
    tombstoned in an append-only slot list and a Fenwick tree counts
    live slots, replacing the O(n) ``list.pop(i)`` shift that made
    million-node ``coda_like_tree`` builds quadratic.  The slot list is
    compacted in chunks once tombstones outnumber live entries.
    """

    __slots__ = ("_slots", "_tree", "_alive")

    def __init__(self) -> None:
        self._slots: List[Optional[Tuple[int, int]]] = []
        self._tree: List[int] = [0]  # 1-based Fenwick over slot liveness
        self._alive = 0

    def __len__(self) -> int:
        return self._alive

    def _prefix(self, i: int) -> int:
        s = 0
        while i > 0:
            s += self._tree[i]
            i -= i & -i
        return s

    def append(self, item: Tuple[int, int]) -> None:
        self._slots.append(item)
        i = len(self._slots)
        # new Fenwick cell covers slots (i - lowbit(i), i]
        lsb = i & -i
        self._tree.append(self._prefix(i - 1) - self._prefix(i - lsb) + 1)
        self._alive += 1

    def pop(self, idx: int) -> Tuple[int, int]:
        if not 0 <= idx < self._alive:
            raise IndexError("pop index out of range")
        # binary lifting: largest pos with prefix(pos) <= idx, answer pos+1
        size = len(self._slots)
        pos, rem = 0, idx
        bit = 1 << (size.bit_length() - 1) if size else 0
        while bit:
            nxt = pos + bit
            if nxt <= size and self._tree[nxt] <= rem:
                pos = nxt
                rem -= self._tree[nxt]
            bit >>= 1
        slot = pos  # 0-based index of the (idx+1)-th live slot
        item = self._slots[slot]
        assert item is not None
        self._slots[slot] = None
        self._alive -= 1
        i = slot + 1
        while i <= size:
            self._tree[i] -= 1
            i += i & -i
        if size >= 1024 and self._alive * 2 < size:
            self._compact()
        return item

    def _compact(self) -> None:
        live = [s for s in self._slots if s is not None]
        self._slots = live
        self._tree = [0] * (len(live) + 1)
        for i in range(1, len(live) + 1):
            self._tree[i] = i & -i  # every slot alive: cell = span size
        self._alive = len(live)


def coda_like_tree(
    n_nodes: int = 73752,
    seed: int = 1993,
    mean_fanout: float = 9.0,
    max_depth: int = 16,
    dir_fraction: float = 0.22,
) -> Namespace:
    """A synthetic file-system-shaped namespace (stand-in for Coda N_C).

    The generator grows directories breadth-first.  Each directory gets
    a geometrically distributed number of entries (mean ``mean_fanout``)
    of which a fraction ``dir_fraction`` are subdirectories, producing
    the deep, fan-out-skewed shape typical of file servers: most nodes
    are leaves (files), internal nodes have highly variable degree, and
    the depth profile is unimodal around depth 6-9 rather than placing
    half the nodes at the deepest level like a balanced binary tree.

    That shape difference is exactly what the paper's N_S/N_C contrast
    exercises (caching behaves differently on the two namespaces in
    Fig. 5; the per-level replica profile differs).

    Args:
        n_nodes: total node count target (exact in the returned tree).
        seed: RNG seed; the tree is deterministic given the arguments.
        mean_fanout: mean entries per directory.
        max_depth: directories below this depth produce only files.
        dir_fraction: fraction of directory entries that are directories.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    rng = random.Random(seed)
    b = NamespaceBuilder()
    # frontier of (node, depth) directories still accepting children
    frontier = _FrontierSampler()
    frontier.append((0, 0))
    count = 1
    serial = 0
    while count < n_nodes:
        if not frontier:
            # namespace closed early: reopen a random existing node
            frontier.append((rng.randrange(count), max_depth // 2))
        idx = rng.randrange(len(frontier))
        node, depth = frontier.pop(idx)
        # geometric fan-out with mean `mean_fanout`
        p = 1.0 / mean_fanout
        fanout = 1
        while rng.random() > p and fanout < 4 * mean_fanout:
            fanout += 1
        for _ in range(fanout):
            if count >= n_nodes:
                break
            serial += 1
            is_dir = depth < max_depth and rng.random() < dir_fraction
            label = (f"d{serial}" if is_dir else f"f{serial}")
            child = b.add_child(node, label)
            count += 1
            if is_dir:
                frontier.append((child, depth + 1))
    return b.build()


def university_tree() -> Namespace:
    """The 11-node example namespace of the paper's Fig. 1/Fig. 2.

    ::

        /university
          /university/public
            /university/public/people
              .../faculty   (John, Steve under students in Fig.2)
              .../students  (John, Steve)
          /university/private
            /university/private/people
              .../staff   (Ann, Mary)
              .../faculty (Lisa)
    """
    b = NamespaceBuilder()
    for name in (
        "/university",
        "/university/public",
        "/university/public/people",
        "/university/public/people/faculty",
        "/university/public/people/students",
        "/university/public/people/students/John",
        "/university/public/people/students/Steve",
        "/university/private",
        "/university/private/people",
        "/university/private/people/staff",
        "/university/private/people/staff/Ann",
        "/university/private/people/staff/Mary",
        "/university/private/people/faculty",
        "/university/private/people/faculty/Lisa",
    ):
        b.add_path(name)
    return b.build()


def assign_nodes_to_servers(
    ns: Namespace, n_servers: int, seed: int = 0
) -> List[int]:
    """Uniform-random node-to-server mapping (paper section 4.1).

    Returns ``owner[node_id] -> server_id``.  Every server owns at least
    one node when ``n_servers <= len(ns)`` (assignment is a random
    balanced partition: node counts per server differ by at most one).
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    rng = random.Random(seed)
    ids = list(range(len(ns)))
    rng.shuffle(ids)
    owner = [0] * len(ns)
    for i, v in enumerate(ids):
        owner[v] = i % n_servers
    return owner
