"""Graph-rooted namespaces (paper section 2.1 generality).

"TerraDir allows arbitrary graph-rooted topologies to be specified.
Here we assume the structure of the namespace is that of a tree."

We support rooted DAG topologies the way a hierarchical router can
exploit them while keeping the tree machinery's guarantees: the
namespace is a *spanning tree* (each node's primary parent defines
names, depth, and the distance metric that guarantees incremental
progress) plus a set of **cross links** -- additional graph edges.
Cross links extend every endpoint's routing context (its neighbor set),
so replicas carry them and routing gains extra shortcut candidates;
because the greedy step still minimises spanning-tree distance, all
correctness properties are preserved and cross links can only shorten
routes.

This matches how a graph-rooted TerraDir namespace behaves: alternative
name paths exist, one canonical path defines the hierarchy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.namespace.tree import Namespace


class GraphNamespace(Namespace):
    """A namespace tree augmented with cross links (rooted DAG).

    ``neighbors(v)`` returns the tree neighbors plus any cross-linked
    nodes; the distance metric and routing paths remain those of the
    spanning tree.
    """

    __slots__ = ("cross", "n_cross_links")

    def __init__(
        self,
        parent: Sequence[int],
        label: Sequence[str],
        children: Sequence[Sequence[int]],
        cross_links: Iterable[Tuple[int, int]] = (),
    ) -> None:
        super().__init__(parent, label, children)
        cross: Dict[int, Set[int]] = {}
        count = 0
        for a, b in cross_links:
            if not (0 <= a < len(parent) and 0 <= b < len(parent)):
                raise ValueError(f"cross link ({a}, {b}) out of range")
            if a == b:
                raise ValueError("self cross link")
            if b in self.neighbors_tree(a):
                continue  # already a tree edge
            if b in cross.get(a, ()):
                continue
            cross.setdefault(a, set()).add(b)
            cross.setdefault(b, set()).add(a)
            count += 1
        self.cross = {k: tuple(sorted(v)) for k, v in cross.items()}
        self.n_cross_links = count

    @classmethod
    def from_tree(
        cls, ns: Namespace, cross_links: Iterable[Tuple[int, int]]
    ) -> "GraphNamespace":
        """Augment an existing tree namespace with cross links."""
        return cls(
            ns.parent,
            [ns.label_of(v) for v in range(len(ns))],
            ns.children,
            cross_links,
        )

    def neighbors_tree(self, v: int) -> Tuple[int, ...]:
        """The spanning-tree neighbors only (parent + children)."""
        return super().neighbors(v)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Tree neighbors plus cross-linked nodes (the routing context)."""
        extra = self.cross.get(v)
        base = super().neighbors(v)
        if not extra:
            return base
        return base + extra

    def _arena_extra_state(self) -> Dict[str, object]:
        """Cross links ride in the arena handle (small, picklable)."""
        return {"cross": self.cross, "n_cross_links": self.n_cross_links}

    def _arena_restore_extra(self, extra: Dict[str, object]) -> None:
        self.cross = extra["cross"]  # type: ignore[assignment]
        self.n_cross_links = extra["n_cross_links"]  # type: ignore[assignment]

    def graph_distance(self, a: int, b: int, max_depth: int = 64) -> int:
        """True shortest-path distance using all edges (BFS).

        Used by tests/analysis; the router itself still minimises
        spanning-tree distance (its progress guarantee), so
        ``graph_distance <= distance`` always holds.
        """
        if a == b:
            return 0
        frontier = [a]
        seen = {a}
        d = 0
        while frontier and d < max_depth:
            d += 1
            nxt: List[int] = []
            for u in frontier:
                for w in self.neighbors(u):
                    if w == b:
                        return d
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        raise ValueError(f"no path from {a} to {b} within {max_depth} hops")


def mesh_of_trees(levels: int, arity: int = 2, link_stride: int = 2,
                  link_depth: int = 2) -> GraphNamespace:
    """A balanced tree whose nodes at ``link_depth`` are cross-linked in
    a ring -- a simple graph-rooted topology for tests and examples."""
    from repro.namespace.generators import balanced_tree

    ns = balanced_tree(levels=levels, arity=arity)
    ring = ns.nodes_at_depth(min(link_depth, ns.max_depth))
    links = [
        (ring[i], ring[(i + link_stride) % len(ring)])
        for i in range(len(ring))
        if len(ring) > 2
    ]
    return GraphNamespace.from_tree(ns, links)
