"""Node data and meta-data (paper section 2.1).

Nodes export two types of optional application-supplied information:

* **data** -- the node's actual contents (for a file system, the file),
  exported only by the owner;
* **meta-data** -- annotations, most commonly attributes (name-value
  pairs) and searchable keywords.

Only the owner may modify meta-data; replicas keep the newest version
they have encountered (no freshness guarantees -- soft state).  The
:class:`MetaStore` is the owner-side container; replica sides carry
only the version counter (see :class:`repro.server.peer.Replica`) plus
whatever the application chooses to piggyback.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


class NodeMeta:
    """Meta-data of one node: attributes, keywords, and a version."""

    __slots__ = ("attributes", "keywords", "version")

    def __init__(self) -> None:
        self.attributes: Dict[str, str] = {}
        self.keywords: Set[str] = set()
        self.version = 0

    def set_attribute(self, name: str, value: str) -> int:
        """Set one attribute; returns the new meta-data version."""
        self.attributes[name] = value
        self.version += 1
        return self.version

    def remove_attribute(self, name: str) -> int:
        if name in self.attributes:
            del self.attributes[name]
            self.version += 1
        return self.version

    def add_keywords(self, words: Iterable[str]) -> int:
        added = False
        for w in words:
            if w not in self.keywords:
                self.keywords.add(w)
                added = True
        if added:
            self.version += 1
        return self.version

    def matches(self, keyword: Optional[str] = None,
                attribute: Optional[Tuple[str, str]] = None) -> bool:
        """True if this meta-data satisfies the given predicates."""
        if keyword is not None and keyword not in self.keywords:
            return False
        if attribute is not None:
            name, value = attribute
            if self.attributes.get(name) != value:
                return False
        return True

    def snapshot(self) -> "NodeMeta":
        """A detached copy (what a replica would carry)."""
        out = NodeMeta()
        out.attributes = dict(self.attributes)
        out.keywords = set(self.keywords)
        out.version = self.version
        return out


class MetaStore:
    """Owner-side store of node data and meta-data.

    Data is opaque to the protocol (we store whatever bytes/objects the
    application supplies); only its placement semantics matter: the
    owner is the server that exports it, and lookup never moves it.
    """

    __slots__ = ("_meta", "_data")

    def __init__(self) -> None:
        self._meta: Dict[int, NodeMeta] = {}
        self._data: Dict[int, object] = {}

    def __contains__(self, node: int) -> bool:
        return node in self._meta or node in self._data

    def meta(self, node: int) -> NodeMeta:
        """The node's meta-data (created empty on first access)."""
        m = self._meta.get(node)
        if m is None:
            m = NodeMeta()
            self._meta[node] = m
        return m

    def peek_meta(self, node: int) -> Optional[NodeMeta]:
        return self._meta.get(node)

    def set_data(self, node: int, data: object) -> None:
        self._data[node] = data

    def get_data(self, node: int) -> Optional[object]:
        return self._data.get(node)

    def has_data(self, node: int) -> bool:
        return node in self._data

    def nodes_matching(
        self,
        among: Iterable[int],
        keyword: Optional[str] = None,
        attribute: Optional[Tuple[str, str]] = None,
    ) -> List[int]:
        """Nodes in ``among`` whose meta-data satisfies the predicates."""
        out = []
        for node in among:
            m = self._meta.get(node)
            if m is not None and m.matches(keyword, attribute):
                out.append(node)
        return out
