"""Fully-qualified hierarchical names.

TerraDir names look like Unix paths: ``/university/public/people``.
The root of every namespace is the name ``/``.  These helpers are pure
string manipulation; the simulator itself works with integer node ids
(see :mod:`repro.namespace.tree`) and only materialises names at the
API boundary.
"""

from __future__ import annotations

from typing import List, Tuple

ROOT_NAME = "/"

_SEPARATOR = "/"


class InvalidNameError(ValueError):
    """Raised when a string is not a valid fully-qualified name."""


def validate_name(name: str) -> str:
    """Return ``name`` if it is a valid fully-qualified hierarchical name.

    A valid name is ``/`` or starts with ``/``, has no empty components,
    no trailing separator, and no component equal to ``.`` or ``..``.

    Raises:
        InvalidNameError: if the name is malformed.
    """
    if name == ROOT_NAME:
        return name
    if not name or not name.startswith(_SEPARATOR):
        raise InvalidNameError(f"name must be absolute (start with '/'): {name!r}")
    if name.endswith(_SEPARATOR):
        raise InvalidNameError(f"name must not end with '/': {name!r}")
    for comp in name[1:].split(_SEPARATOR):
        if not comp:
            raise InvalidNameError(f"empty component in {name!r}")
        if comp in (".", ".."):
            raise InvalidNameError(f"relative component {comp!r} in {name!r}")
    return name


def split(name: str) -> Tuple[str, ...]:
    """Split a validated name into its components (root splits to ``()``)."""
    if name == ROOT_NAME:
        return ()
    return tuple(name[1:].split(_SEPARATOR))


def join(*components: str) -> str:
    """Join components into a fully-qualified name (``join()`` is the root)."""
    if not components:
        return ROOT_NAME
    return _SEPARATOR + _SEPARATOR.join(components)


def parent_name(name: str) -> str:
    """Return the parent of ``name``; the root's parent is itself."""
    if name == ROOT_NAME:
        return ROOT_NAME
    idx = name.rfind(_SEPARATOR)
    return name[:idx] if idx > 0 else ROOT_NAME


def basename(name: str) -> str:
    """Return the last component of ``name`` (empty string for the root)."""
    if name == ROOT_NAME:
        return ""
    return name[name.rfind(_SEPARATOR) + 1 :]


def ancestors_of_name(name: str) -> List[str]:
    """All ancestors of ``name`` from the root down to ``name`` inclusive.

    This is the "prefix extraction" used when testing names against
    inverse-mapping digests (paper section 3.6.1).
    """
    if name == ROOT_NAME:
        return [ROOT_NAME]
    out = [ROOT_NAME]
    idx = name.find(_SEPARATOR, 1)
    while idx != -1:
        out.append(name[:idx])
        idx = name.find(_SEPARATOR, idx + 1)
    out.append(name)
    return out


def is_prefix(ancestor: str, name: str) -> bool:
    """True if ``ancestor`` is ``name`` or a proper namespace ancestor of it."""
    if ancestor == ROOT_NAME:
        return True
    if ancestor == name:
        return True
    return name.startswith(ancestor + _SEPARATOR)
