"""Array-backed (CSR/arena) representation of a TerraDir namespace tree.

The routing hot path computes thousands of namespace distances per
simulated second, and the million-node namespaces of the scaled
experiments must fit in laptop RAM, so the tree is stored as flat
``array`` arenas indexed by node id -- no per-node Python containers:

* ``parent[v]``      -- parent id (root's parent is itself), ``array('i')``;
* ``depth[v]``       -- distance from the root, ``array('i')``;
* ``anc_arena`` / ``anc_off``     -- every node's ancestor chain
  ``(root, ..., v)`` concatenated into one flat ``array('i')``; node
  ``v``'s chain is ``anc_arena[anc_off[v]:anc_off[v + 1]]``;
* ``child_arena`` / ``child_off`` -- the children lists in CSR form:
  node ``v``'s children are ``child_arena[child_off[v]:child_off[v+1]]``.

``anc`` and ``children`` remain as zero-copy *views* over the arenas
(``ns.anc[v]`` / ``ns.children[v]`` return ``array('i')`` slices), so
every pre-arena call site keeps working; hot-path consumers (the tree
metrics below, :class:`repro.core.nsindex.AncestorIndex`) index the
arenas directly.

Names are fully lazy: labels are interned at build time, ``name_of``
joins one ancestor chain on demand, and ``id_of`` resolves a path by
walking children per component -- nothing ever materialises all *n*
name strings, and nothing on the hot path touches strings.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.namespace.name import ROOT_NAME, join, split, validate_name

ROOT = 0


class _ArenaView:
    """Sequence-of-sequences view over a flat arena + offset array.

    ``view[v]`` is an ``array('i')`` slice -- cheap (one memcpy of at
    most ``max_depth + 1`` or ``fanout`` ints), supports ``len``,
    indexing, iteration, and comparison, exactly like the tuples it
    replaces.
    """

    __slots__ = ("_arena", "_off", "_n")

    def __init__(self, arena: array, off: array) -> None:
        self._arena = arena
        self._off = off
        self._n = len(off) - 1

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, v: int) -> array:
        if v < 0:
            v += self._n
        if not 0 <= v < self._n:
            raise IndexError(f"node id {v} out of range")
        return self._arena[self._off[v]:self._off[v + 1]]

    def __iter__(self) -> Iterator[array]:
        arena, off = self._arena, self._off
        for v in range(self._n):
            yield arena[off[v]:off[v + 1]]

    def __repr__(self) -> str:
        return f"_ArenaView(n={self._n}, ints={len(self._arena)})"


class NamespaceBuilder:
    """Incrementally build a :class:`Namespace`.

    Nodes must be added parent-before-child; the root exists implicitly.
    The builder is streaming: it holds two flat append-only columns
    (parent ids and interned labels) and **no per-node child lists** --
    the CSR child arena is produced by :meth:`build` in two passes
    (count children, then fill), so building an *n*-node namespace
    allocates O(n) ints, not O(n) Python lists.

    >>> b = NamespaceBuilder()
    >>> u = b.add_child(0, "university")
    >>> pub = b.add_child(u, "public")
    >>> ns = b.build()
    >>> ns.name_of(pub)
    '/university/public'
    """

    def __init__(self) -> None:
        self._parent = array("i", (ROOT,))
        self._label: List[str] = [""]
        # label object dedup: balanced trees repeat a handful of labels
        # across hundreds of thousands of nodes; one shared str each
        self._intern: Dict[str, str] = {"": ""}
        # (parent, label) -> node, built lazily on first add_path
        self._path_index: Optional[Dict[Tuple[int, str], int]] = None

    def __len__(self) -> int:
        return len(self._parent)

    def add_child(self, parent: int, label: str) -> int:
        """Add a child with component ``label`` under ``parent``; return its id."""
        if not 0 <= parent < len(self._parent):
            raise IndexError(f"unknown parent id {parent}")
        if not label or "/" in label:
            raise ValueError(f"invalid component label {label!r}")
        node = len(self._parent)
        label = self._intern.setdefault(label, label)
        self._parent.append(parent)
        self._label.append(label)
        if self._path_index is not None:
            self._path_index.setdefault((parent, label), node)
        return node

    def add_path(self, name: str) -> int:
        """Ensure every node on ``name``'s path exists; return the final id.

        Unlike :meth:`add_child` this deduplicates: adding the same path
        twice returns the same node id.
        """
        validate_name(name)
        index = self._path_index
        if index is None:
            index = {}
            for v in range(1, len(self._parent)):
                index.setdefault((self._parent[v], self._label[v]), v)
            self._path_index = index
        node = ROOT
        for comp in split(name):
            child = index.get((node, comp))
            node = child if child is not None else self.add_child(node, comp)
        return node

    def build(self) -> "Namespace":
        return Namespace(self._parent, self._label)


class Namespace:
    """An immutable rooted tree of hierarchical names.

    Attributes:
        parent: flat parent-id array (``parent[0] == 0``).
        depth: flat depth array (``depth[0] == 0``).
        children: per-node child-id view over the CSR arena.
        anc: per-node ancestor-chain view (root to the node, inclusive).
        anc_arena / anc_off: the flat ancestor arena and its offsets.
        child_arena / child_off: the flat CSR child arena and offsets.
    """

    __slots__ = (
        "parent",
        "depth",
        "children",
        "anc",
        "anc_arena",
        "anc_off",
        "child_arena",
        "child_off",
        "_label",
        "_levels",
        "n_leaves",
        "max_depth",
    )

    def __init__(
        self,
        parent: Sequence[int],
        label: Sequence[str],
        children: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        n = len(parent)
        if n == 0 or parent[ROOT] != ROOT:
            raise ValueError("namespace must contain a root whose parent is itself")
        par = parent if isinstance(parent, array) and parent.typecode == "i" \
            else array("i", parent)
        self.parent: array = par
        self._label: Tuple[str, ...] = tuple(label)

        # depths + ancestor-chain offsets in one pass.  Chain v has
        # depth[v] + 1 entries; offsets are the running prefix sum.
        depth = array("i", bytes(4 * n))
        anc_off = array("q", bytes(8 * (n + 1)))
        total = 1  # the root's chain (ROOT,)
        max_depth = 0
        # parent-before-child ordering is guaranteed by NamespaceBuilder
        for v in range(1, n):
            p = par[v]
            if p >= v:
                raise ValueError("nodes must be ordered parent-before-child")
            d = depth[p] + 1
            depth[v] = d
            if d > max_depth:
                max_depth = d
            anc_off[v] = total
            total += d + 1
        anc_off[n] = total
        self.depth: array = depth
        self.max_depth: int = max_depth

        # fill the ancestor arena: chain(v) = chain(parent) + (v,), a
        # single slice copy (memmove) per node
        arena = array("i", bytes(4 * total))
        arena[0] = ROOT
        for v in range(1, n):
            o = anc_off[v]
            dv = depth[v]  # parent's chain length
            po = anc_off[par[v]]
            arena[o:o + dv] = arena[po:po + dv]
            arena[o + dv] = v
        self.anc_arena: array = arena
        self.anc_off: array = anc_off
        self.anc = _ArenaView(arena, anc_off)

        # children in CSR form.  When no explicit child lists are given
        # (the builder's streaming path) they are derived from `parent`:
        # children appear in increasing id order, which is exactly the
        # order the old list-of-lists builder appended them in.
        child_off = array("q", bytes(8 * (n + 1)))
        if children is None:
            for v in range(1, n):
                child_off[par[v] + 1] += 1
            for v in range(n):
                child_off[v + 1] += child_off[v]
            child_arena = array("i", bytes(4 * (n - 1 if n else 0)))
            cursor = array("q", child_off[:n])
            for v in range(1, n):
                p = par[v]
                child_arena[cursor[p]] = v
                cursor[p] += 1
        else:
            if len(children) != n:
                raise ValueError("children length must equal node count")
            flat: List[int] = []
            for v, kids in enumerate(children):
                flat.extend(kids)
                child_off[v + 1] = len(flat)
            child_arena = array("i", flat)
        self.child_arena: array = child_arena
        self.child_off: array = child_off
        self.children = _ArenaView(child_arena, child_off)
        leaves = 0
        for v in range(n):
            if child_off[v] == child_off[v + 1]:
                leaves += 1
        self.n_leaves: int = leaves
        self._levels: Optional[List[array]] = None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.parent)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self.parent)))

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Parent plus children of ``v`` (the node's routing context)."""
        kids = self.child_arena[self.child_off[v]:self.child_off[v + 1]]
        if v == ROOT:
            return tuple(kids)
        return (self.parent[v], *kids)

    def is_leaf(self, v: int) -> bool:
        return self.child_off[v] == self.child_off[v + 1]

    def _level_lists(self) -> List[array]:
        """Per-depth node-id arrays, computed once on first use."""
        if self._levels is None:
            levels = [array("i") for _ in range(self.max_depth + 1)]
            for v, d in enumerate(self.depth):
                levels[d].append(v)
            self._levels = levels
        return self._levels

    def nodes_at_depth(self, d: int) -> List[int]:
        """All node ids at depth ``d`` (ascending; cached as ``array('i')``)."""
        levels = self._level_lists()
        return list(levels[d]) if 0 <= d < len(levels) else []

    # ------------------------------------------------------------------
    # names (lazy: nothing materialises all n strings)
    # ------------------------------------------------------------------

    def name_of(self, v: int) -> str:
        """The fully-qualified name of node ``v`` (built on demand)."""
        if v == ROOT:
            return ROOT_NAME
        label = self._label
        o = self.anc_off[v]
        chain = self.anc_arena[o + 1:self.anc_off[v + 1]]
        return join(*(label[u] for u in chain))

    def id_of(self, name: str) -> int:
        """The node id of a fully-qualified name.

        Resolved by walking children per path component -- O(depth x
        fanout), no name table.

        Raises:
            KeyError: if the name does not exist in this namespace.
        """
        validate_name(name)
        label = self._label
        arena, off = self.child_arena, self.child_off
        node = ROOT
        for comp in split(name):
            for i in range(off[node], off[node + 1]):
                child = arena[i]
                if label[child] == comp:
                    node = child
                    break
            else:
                raise KeyError(name)
        return node

    def label_of(self, v: int) -> str:
        """The last path component of node ``v`` (empty for the root)."""
        return self._label[v]

    # ------------------------------------------------------------------
    # tree metrics (the routing hot path)
    # ------------------------------------------------------------------

    def lca_depth(self, a: int, b: int) -> int:
        """Depth of the lowest common ancestor of ``a`` and ``b``."""
        arena = self.anc_arena
        off = self.anc_off
        oa, ob = off[a], off[b]
        # common prefix scan; element 0 (the root) always matches
        n = off[a + 1] - oa
        nb = off[b + 1] - ob
        if nb < n:
            n = nb
        d = 0
        while d < n and arena[oa + d] == arena[ob + d]:
            d += 1
        return d - 1

    def lca(self, a: int, b: int) -> int:
        """The lowest common ancestor of ``a`` and ``b``."""
        return self.anc_arena[self.anc_off[a] + self.lca_depth(a, b)]

    def distance(self, a: int, b: int) -> int:
        """Namespace (tree) distance between ``a`` and ``b``."""
        return self.depth[a] + self.depth[b] - 2 * self.lca_depth(a, b)

    def is_ancestor(self, a: int, b: int) -> bool:
        """True if ``a`` is ``b`` or a proper ancestor of ``b``."""
        da = self.depth[a]
        return da <= self.depth[b] and \
            self.anc_arena[self.anc_off[b] + da] == a

    def step_toward(self, a: int, b: int) -> int:
        """The neighbor of ``a`` one namespace hop closer to ``b``.

        The child on the path down to ``b`` when ``a`` is an ancestor
        of ``b``, otherwise ``a``'s parent (the up-then-down geodesic
        of :meth:`route_path`, taken one step at a time).

        Raises:
            ValueError: if ``a == b`` (there is no step to take).
        """
        if a == b:
            raise ValueError(f"no step from node {a} toward itself")
        da = self.depth[a]
        ob = self.anc_off[b]
        if da <= self.depth[b] and self.anc_arena[ob + da] == a:
            return self.anc_arena[ob + da + 1]
        return self.parent[a]

    def route_path(self, src: int, dst: int) -> List[int]:
        """The canonical up-then-down node path from ``src`` to ``dst``.

        This is the route the *base* protocol follows when no caches,
        replicas, or digests provide a shortcut (paper section 2.2.1).
        """
        arena, off = self.anc_arena, self.anc_off
        ld = self.lca_depth(src, dst)
        os_, od = off[src], off[dst]
        up = [arena[os_ + d] for d in range(self.depth[src], ld - 1, -1)]
        down = [arena[od + d] for d in range(ld + 1, self.depth[dst] + 1)]
        return up + down

    def subtree(self, v: int) -> List[int]:
        """All ids in the subtree rooted at ``v`` (preorder)."""
        arena, off = self.child_arena, self.child_off
        out: List[int] = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            o, e = off[u], off[u + 1]
            if e > o:
                stack.extend(reversed(arena[o:e]))
        return out

    def level_sizes(self) -> List[int]:
        """Node count per depth level, index = depth (computed once)."""
        return [len(level) for level in self._level_lists()]

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "Namespace":
        """Build a namespace containing every name in ``names`` (plus ancestors)."""
        b = NamespaceBuilder()
        for nm in names:
            b.add_path(nm)
        return b.build()

    # ------------------------------------------------------------------
    # shared-memory arena export (subclass hooks)
    # ------------------------------------------------------------------

    def _arena_extra_state(self) -> Dict[str, Any]:
        """Non-arena state a subclass needs to survive export/attach.

        Must be small and picklable -- it rides in the
        :class:`ArenaHandle`, not in shared memory.
        """
        return {}

    def _arena_restore_extra(self, extra: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`_arena_extra_state`."""


class _LabelTable:
    """Lazy per-node label sequence over a packed label-id column.

    Balanced and Coda-like trees repeat a handful of distinct labels
    across millions of nodes; in shared memory each node stores a
    4-byte index into the (tiny, pickled) unique-label tuple instead of
    a Python string reference, so the attached namespace materialises
    no per-node string objects at all.
    """

    __slots__ = ("_uniques", "_ids")

    def __init__(self, uniques: Tuple[str, ...], ids: Sequence[int]) -> None:
        self._uniques = uniques
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, v: int) -> str:
        return self._uniques[self._ids[v]]

    def __iter__(self) -> Iterator[str]:
        uniques = self._uniques
        for i in self._ids:
            yield uniques[i]

    def __repr__(self) -> str:
        return f"_LabelTable(n={len(self._ids)}, uniques={len(self._uniques)})"


def _nbytes(a: Any) -> int:
    return len(a) * a.itemsize


class ArenaHandle:
    """Picklable descriptor of a namespace's shared-memory arenas.

    The handle is what crosses the worker pipe: the shm segment name,
    the section lengths, the unique-label table, the namespace class,
    and any subclass extra state. :meth:`attach` maps the segment
    read-only and rebuilds a fully functional namespace whose arena
    slots are zero-copy ``memoryview`` casts into the shared block --
    O(1) time and O(1) per-worker memory regardless of namespace size.
    """

    __slots__ = (
        "shm_name", "cls", "n", "n_anc", "n_child", "n_owner",
        "uniques", "n_leaves", "max_depth", "extra",
    )

    def __init__(
        self,
        shm_name: str,
        cls: type,
        n: int,
        n_anc: int,
        n_child: int,
        n_owner: int,
        uniques: Tuple[str, ...],
        n_leaves: int,
        max_depth: int,
        extra: Dict[str, Any],
    ) -> None:
        self.shm_name = shm_name
        self.cls = cls
        self.n = n
        self.n_anc = n_anc
        self.n_child = n_child
        self.n_owner = n_owner
        self.uniques = uniques
        self.n_leaves = n_leaves
        self.max_depth = max_depth
        self.extra = extra

    def __reduce__(self) -> Tuple[Any, ...]:
        return (ArenaHandle, (
            self.shm_name, self.cls, self.n, self.n_anc, self.n_child,
            self.n_owner, self.uniques, self.n_leaves, self.max_depth,
            self.extra,
        ))

    def attach(self) -> "AttachedArenas":
        """Map the shared block and rebuild the namespace (zero-copy).

        The returned :class:`AttachedArenas` must stay alive as long as
        the namespace is in use -- its views pin the mapping.
        """
        from multiprocessing import resource_tracker, shared_memory

        # Pre-3.13 attaches register with the resource tracker, which
        # would unlink the segment when this worker exits even though
        # the parent still owns it (bpo-39959).  Suppress registration
        # during the attach (single-threaded worker init) rather than
        # unregistering afterwards: workers share the parent's tracker
        # process, and N unregisters of the same name make it log
        # KeyErrors.
        _orig_register = resource_tracker.register

        def _no_shm_register(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                _orig_register(name, rtype)

        resource_tracker.register = _no_shm_register  # type: ignore[assignment]
        try:
            shm = shared_memory.SharedMemory(name=self.shm_name)
        finally:
            resource_tracker.register = _orig_register  # type: ignore[assignment]
        n = self.n
        buf = memoryview(shm.buf)
        off = 0

        def take(typecode: str, count: int) -> memoryview:
            nonlocal off
            size = count * (8 if typecode == "q" else 4)
            # read-only: an accidental write would corrupt every worker
            view = buf[off:off + size].cast(typecode).toreadonly()
            off += size
            return view

        # q-sized offset arrays first (8-byte aligned at offset 0)
        anc_off = take("q", n + 1)
        child_off = take("q", n + 1)
        parent = take("i", n)
        depth = take("i", n)
        anc_arena = take("i", self.n_anc)
        child_arena = take("i", self.n_child)
        label_ids = take("i", n)
        owner = take("i", self.n_owner) if self.n_owner else None

        ns = self.cls.__new__(self.cls)
        ns.parent = parent
        ns.depth = depth
        ns.anc_arena = anc_arena
        ns.anc_off = anc_off
        ns.anc = _ArenaView(anc_arena, anc_off)
        ns.child_arena = child_arena
        ns.child_off = child_off
        ns.children = _ArenaView(child_arena, child_off)
        ns._label = _LabelTable(self.uniques, label_ids)
        ns._levels = None
        ns.n_leaves = self.n_leaves
        ns.max_depth = self.max_depth
        ns._arena_restore_extra(self.extra)
        return AttachedArenas(shm, ns, owner)


class AttachedArenas:
    """A worker-side attachment: keeps the shm mapping alive.

    Workers ``close()`` (never unlink) when done; the exporting parent
    owns the segment's lifetime via :class:`SharedArenas`.
    """

    __slots__ = ("shm", "ns", "owner")

    def __init__(self, shm: Any, ns: Namespace, owner: Optional[memoryview]) -> None:
        self.shm = shm
        self.ns = ns
        self.owner = owner

    def close(self) -> None:
        # the namespace's arena views pin the mapping; when callers
        # still hold them the unmap is deferred to process exit
        self.owner = None
        self.ns = None  # type: ignore[assignment]
        shm = self.shm
        if shm is None:
            return
        self.shm = None
        try:
            shm.close()
        except BufferError:
            # Views exported from the mapping keep it alive.  Disarm
            # the SharedMemory finalizer (it would retry close() at
            # interpreter shutdown and print "Exception ignored"
            # noise) by dropping its mmap reference and closing the fd
            # ourselves; the mmap itself is freed when the last arena
            # view dies.
            try:
                shm._mmap = None
                fd = shm._fd
                if fd >= 0:
                    shm._fd = -1
                    os.close(fd)
            except (AttributeError, OSError):  # pragma: no cover
                pass


class SharedArenas:
    """The parent-side owner of an exported arena block.

    Hands out the picklable :attr:`handle`; :meth:`close` both closes
    and unlinks the segment (the owner is the only unlinker).
    """

    __slots__ = ("shm", "handle")

    def __init__(self, shm: Any, handle: ArenaHandle) -> None:
        self.shm = shm
        self.handle = handle

    @property
    def nbytes(self) -> int:
        return self.shm.size

    def close(self) -> None:
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def export_arenas(
    ns: Namespace, owner: Optional[Sequence[int]] = None
) -> SharedArenas:
    """Copy a namespace's flat arenas into one shared-memory block.

    Layout (little-endian, q-arrays first so every section is
    naturally aligned)::

        anc_off  (n+1) x q | child_off (n+1) x q | parent n x i |
        depth n x i | anc_arena x i | child_arena x i |
        label_id n x i | [owner x i]

    ``owner`` optionally co-locates the node->server assignment so
    workers never materialise their own copy. Returns the owning
    :class:`SharedArenas`; ship ``shared.handle`` to workers.
    """
    from multiprocessing import shared_memory

    n = len(ns)
    idmap: Dict[str, int] = {}
    uniques: List[str] = []
    label_ids = array("i", bytes(4 * n))
    for v in range(n):
        lab = ns.label_of(v)
        i = idmap.get(lab)
        if i is None:
            i = idmap[lab] = len(uniques)
            uniques.append(lab)
        label_ids[v] = i

    owner_arr: Optional[array] = None
    if owner is not None:
        owner_arr = owner if isinstance(owner, array) and owner.typecode == "i" \
            else array("i", owner)

    sections: List[Any] = [
        ns.anc_off, ns.child_off, ns.parent, ns.depth,
        ns.anc_arena, ns.child_arena, label_ids,
    ]
    if owner_arr is not None:
        sections.append(owner_arr)
    total = sum(_nbytes(s) for s in sections)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    off = 0
    for s in sections:
        nb = _nbytes(s)
        shm.buf[off:off + nb] = memoryview(s).cast("B")
        off += nb

    handle = ArenaHandle(
        shm.name,
        type(ns),
        n,
        len(ns.anc_arena),
        len(ns.child_arena),
        len(owner_arr) if owner_arr is not None else 0,
        tuple(uniques),
        ns.n_leaves,
        ns.max_depth,
        ns._arena_extra_state(),
    )
    return SharedArenas(shm, handle)
