"""Dense-integer representation of a TerraDir namespace tree.

The routing hot path computes thousands of namespace distances per
simulated second, so the tree is stored as flat parallel lists indexed
by node id:

* ``parent[v]``   -- parent id (root's parent is itself),
* ``depth[v]``    -- distance from the root,
* ``children[v]`` -- tuple of child ids,
* ``anc[v]``      -- ancestor chain ``(root, ..., v)`` as a tuple.

Names are materialised lazily; nothing on the hot path touches strings.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.namespace.name import ROOT_NAME, join, split, validate_name

ROOT = 0


class NamespaceBuilder:
    """Incrementally build a :class:`Namespace`.

    Nodes must be added parent-before-child; the root exists implicitly.

    >>> b = NamespaceBuilder()
    >>> u = b.add_child(0, "university")
    >>> pub = b.add_child(u, "public")
    >>> ns = b.build()
    >>> ns.name_of(pub)
    '/university/public'
    """

    def __init__(self) -> None:
        self._parent: List[int] = [ROOT]
        self._label: List[str] = [""]
        self._children: List[List[int]] = [[]]

    def __len__(self) -> int:
        return len(self._parent)

    def add_child(self, parent: int, label: str) -> int:
        """Add a child with component ``label`` under ``parent``; return its id."""
        if not 0 <= parent < len(self._parent):
            raise IndexError(f"unknown parent id {parent}")
        if not label or "/" in label:
            raise ValueError(f"invalid component label {label!r}")
        node = len(self._parent)
        self._parent.append(parent)
        self._label.append(label)
        self._children.append([])
        self._children[parent].append(node)
        return node

    def add_path(self, name: str) -> int:
        """Ensure every node on ``name``'s path exists; return the final id.

        Unlike :meth:`add_child` this deduplicates: adding the same path
        twice returns the same node id.
        """
        validate_name(name)
        node = ROOT
        for comp in split(name):
            for child in self._children[node]:
                if self._label[child] == comp:
                    node = child
                    break
            else:
                node = self.add_child(node, comp)
        return node

    def build(self) -> "Namespace":
        return Namespace(self._parent, self._label, self._children)


class Namespace:
    """An immutable rooted tree of hierarchical names.

    Attributes:
        parent: flat parent-id list (``parent[0] == 0``).
        depth: flat depth list (``depth[0] == 0``).
        children: per-node tuple of child ids.
        anc: per-node ancestor chain from the root to the node, inclusive.
    """

    __slots__ = (
        "parent",
        "depth",
        "children",
        "anc",
        "_label",
        "_names",
        "_name_index",
        "n_leaves",
        "max_depth",
    )

    def __init__(
        self,
        parent: Sequence[int],
        label: Sequence[str],
        children: Sequence[Sequence[int]],
    ) -> None:
        n = len(parent)
        if n == 0 or parent[ROOT] != ROOT:
            raise ValueError("namespace must contain a root whose parent is itself")
        self.parent: Tuple[int, ...] = tuple(parent)
        self._label: Tuple[str, ...] = tuple(label)
        self.children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(c) for c in children
        )
        depth = [0] * n
        anc: List[Tuple[int, ...]] = [()] * n
        anc[ROOT] = (ROOT,)
        # parent-before-child ordering is guaranteed by NamespaceBuilder
        for v in range(1, n):
            p = parent[v]
            if p >= v:
                raise ValueError("nodes must be ordered parent-before-child")
            depth[v] = depth[p] + 1
            anc[v] = anc[p] + (v,)
        self.depth: Tuple[int, ...] = tuple(depth)
        self.anc: Tuple[Tuple[int, ...], ...] = tuple(anc)
        self.max_depth: int = max(depth)
        self.n_leaves: int = sum(1 for c in self.children if not c)
        self._names: Optional[Tuple[str, ...]] = None
        self._name_index: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.parent)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self.parent)))

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Parent plus children of ``v`` (the node's routing context)."""
        if v == ROOT:
            return self.children[v]
        return (self.parent[v],) + self.children[v]

    def is_leaf(self, v: int) -> bool:
        return not self.children[v]

    def nodes_at_depth(self, d: int) -> List[int]:
        return [v for v in range(len(self.parent)) if self.depth[v] == d]

    # ------------------------------------------------------------------
    # names
    # ------------------------------------------------------------------

    def _materialise_names(self) -> Tuple[str, ...]:
        if self._names is None:
            names = [""] * len(self.parent)
            names[ROOT] = ROOT_NAME
            for v in range(1, len(self.parent)):
                names[v] = join(*(self._label[u] for u in self.anc[v][1:]))
            self._names = tuple(names)
            self._name_index = {nm: v for v, nm in enumerate(self._names)}
        return self._names

    def name_of(self, v: int) -> str:
        """The fully-qualified name of node ``v``."""
        return self._materialise_names()[v]

    def id_of(self, name: str) -> int:
        """The node id of a fully-qualified name.

        Raises:
            KeyError: if the name does not exist in this namespace.
        """
        self._materialise_names()
        assert self._name_index is not None
        return self._name_index[validate_name(name)]

    def label_of(self, v: int) -> str:
        """The last path component of node ``v`` (empty for the root)."""
        return self._label[v]

    # ------------------------------------------------------------------
    # tree metrics (the routing hot path)
    # ------------------------------------------------------------------

    def lca_depth(self, a: int, b: int) -> int:
        """Depth of the lowest common ancestor of ``a`` and ``b``."""
        aa, ab = self.anc[a], self.anc[b]
        # common prefix scan; element 0 (the root) always matches
        n = min(len(aa), len(ab))
        d = 0
        while d < n and aa[d] == ab[d]:
            d += 1
        return d - 1

    def lca(self, a: int, b: int) -> int:
        """The lowest common ancestor of ``a`` and ``b``."""
        return self.anc[a][self.lca_depth(a, b)]

    def distance(self, a: int, b: int) -> int:
        """Namespace (tree) distance between ``a`` and ``b``."""
        return self.depth[a] + self.depth[b] - 2 * self.lca_depth(a, b)

    def is_ancestor(self, a: int, b: int) -> bool:
        """True if ``a`` is ``b`` or a proper ancestor of ``b``."""
        ab = self.anc[b]
        da = self.depth[a]
        return da < len(ab) and ab[da] == a

    def step_toward(self, a: int, b: int) -> int:
        """The neighbor of ``a`` one namespace hop closer to ``b``.

        The child on the path down to ``b`` when ``a`` is an ancestor
        of ``b``, otherwise ``a``'s parent (the up-then-down geodesic
        of :meth:`route_path`, taken one step at a time).

        Raises:
            ValueError: if ``a == b`` (there is no step to take).
        """
        if a == b:
            raise ValueError(f"no step from node {a} toward itself")
        ab = self.anc[b]
        da = self.depth[a]
        if da < len(ab) and ab[da] == a:
            return ab[da + 1]
        return self.parent[a]

    def route_path(self, src: int, dst: int) -> List[int]:
        """The canonical up-then-down node path from ``src`` to ``dst``.

        This is the route the *base* protocol follows when no caches,
        replicas, or digests provide a shortcut (paper section 2.2.1).
        """
        ld = self.lca_depth(src, dst)
        up = [self.anc[src][d] for d in range(self.depth[src], ld - 1, -1)]
        down = [self.anc[dst][d] for d in range(ld + 1, self.depth[dst] + 1)]
        return up + down

    def subtree(self, v: int) -> List[int]:
        """All ids in the subtree rooted at ``v`` (preorder)."""
        out: List[int] = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self.children[u]))
        return out

    def level_sizes(self) -> List[int]:
        """Node count per depth level, index = depth."""
        sizes = [0] * (self.max_depth + 1)
        for d in self.depth:
            sizes[d] += 1
        return sizes

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "Namespace":
        """Build a namespace containing every name in ``names`` (plus ancestors)."""
        b = NamespaceBuilder()
        for nm in names:
            b.add_path(nm)
        return b.build()
