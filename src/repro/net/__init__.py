"""Network substrate: message types and constant-latency transport."""

from repro.net.message import (
    Advertisement,
    ControlKind,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
    ReplicaPayload,
)
from repro.net.transport import Transport

__all__ = [
    "Advertisement",
    "ControlKind",
    "ProbeMessage",
    "ProbeReplyMessage",
    "QueryMessage",
    "ReplicaPayload",
    "ResponseMessage",
    "TransferAckMessage",
    "TransferMessage",
    "Transport",
]
