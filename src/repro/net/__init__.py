"""Network substrate: message types and constant-latency transport."""

from repro.net.dispatch import DispatchRegistry, UnknownMessageError
from repro.net.message import (
    Advertisement,
    AdvertMessage,
    ControlKind,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
    ReplicaPayload,
)
from repro.net.transport import Transport

__all__ = [
    "Advertisement",
    "AdvertMessage",
    "ControlKind",
    "DataReply",
    "DataRequest",
    "DispatchRegistry",
    "ProbeMessage",
    "ProbeReplyMessage",
    "QueryMessage",
    "ReplicaPayload",
    "ResponseMessage",
    "TransferAckMessage",
    "TransferMessage",
    "Transport",
    "UnknownMessageError",
]
