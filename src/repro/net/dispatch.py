"""Typed message dispatch: a message-class -> handler registry.

Replaces hand-rolled ``isinstance``/``__class__`` chains at transport
endpoints.  A :class:`DispatchRegistry` maps concrete message classes
to handlers; an endpoint binds the registry once against itself and
then dispatches every inbound message through a plain dict lookup --
the same cost as the class-comparison chain it replaces, but open for
extension (new message types register themselves) and override (a
later registration for the same class wins, so tests and alternative
endpoints can swap individual handlers).

Handlers are registered either as callables ``handler(target, msg)``
or as attribute names looked up on the target at bind time -- the name
form resolves through normal attribute lookup, so subclasses of the
target override a handler simply by overriding the method.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Union

Handler = Union[str, Callable[[Any, Any], None]]
BoundHandler = Callable[[Any], None]


class UnknownMessageError(TypeError):
    """Raised when a message type has no registered handler."""


class DispatchRegistry:
    """Maps message classes to handlers for a transport endpoint.

    Lookup is by exact class (no subclass walking): message types are
    flat, final structs, and exactness keeps dispatch a single dict
    probe on the hot path.
    """

    __slots__ = ("name", "_handlers")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._handlers: Dict[type, Handler] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self, msg_type: type, handler: Optional[Handler] = None
    ) -> Callable[..., Any]:
        """Register ``handler`` for ``msg_type`` (last registration wins).

        ``handler`` is a callable ``(target, msg)`` or the name of a
        target attribute taking ``(msg)``.  With ``handler`` omitted
        this is usable as a decorator::

            @registry.register(QueryMessage)
            def _on_query(target, msg): ...
        """
        if not isinstance(msg_type, type):
            raise TypeError(f"msg_type must be a class, got {msg_type!r}")
        if handler is None:
            def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
                self._handlers[msg_type] = fn
                return fn
            return decorator
        if not (isinstance(handler, str) or callable(handler)):
            raise TypeError(
                f"handler must be a callable or attribute name, got {handler!r}"
            )
        self._handlers[msg_type] = handler
        return handler

    def unregister(self, msg_type: type) -> bool:
        """Drop the handler for ``msg_type``; True if one was registered."""
        return self._handlers.pop(msg_type, None) is not None

    # ------------------------------------------------------------------
    # lookup and dispatch
    # ------------------------------------------------------------------

    def handler_for(self, msg_type: type) -> Handler:
        """The registered handler for ``msg_type``.

        Raises:
            UnknownMessageError: no handler is registered.
        """
        try:
            return self._handlers[msg_type]
        except KeyError:
            raise UnknownMessageError(
                f"no handler registered for message type "
                f"{msg_type.__name__}"
                + (f" in registry {self.name!r}" if self.name else "")
            ) from None

    def dispatch(self, target: Any, msg: Any) -> None:
        """Route one message to its handler on ``target``."""
        handler = self.handler_for(msg.__class__)
        if isinstance(handler, str):
            getattr(target, handler)(msg)
        else:
            handler(target, msg)

    def bind(self, target: Any) -> Dict[type, BoundHandler]:
        """Snapshot ``{message class: bound handler}`` for ``target``.

        The returned dict is what endpoints keep for hot-path delivery:
        one dict probe plus one call per message, no registry overhead.
        Later registry changes do not affect existing bindings.
        """
        bound: Dict[type, BoundHandler] = {}
        for msg_type, handler in self._handlers.items():
            if isinstance(handler, str):
                bound[msg_type] = getattr(target, handler)
            else:
                # freeze the loop variable per entry
                def _call(
                    msg: Any, _h: Callable[..., Any] = handler, _t: Any = target
                ) -> None:
                    _h(_t, msg)
                bound[msg_type] = _call
        return bound

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def types(self) -> Tuple[type, ...]:
        return tuple(self._handlers)

    def __contains__(self, msg_type: type) -> bool:
        return msg_type in self._handlers

    def __len__(self) -> int:
        return len(self._handlers)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"DispatchRegistry({label.strip()} "
            f"types={[t.__name__ for t in self._handlers]})"
        )
