"""Framed wire serialization for live-mode transport.

The simulator passes message objects by reference; live mode
(:mod:`repro.runtime.async_wire`) moves the *same* message classes
across TCP/UDS sockets.  This module is the codec both ends share:

* **Framing** -- each message is one length-prefixed frame: a 4-byte
  big-endian payload length followed by the payload.  A stream is any
  concatenation of frames; :class:`FrameReader` reassembles frames
  from arbitrarily fragmented reads (sockets deliver whatever they
  feel like), buffering partial headers and partial payloads.
* **Payload codec** -- pickle (protocol 4) restricted to the closed
  set of wire types in :data:`WIRE_TYPES`.  Pickle keeps perfect
  fidelity for the message structs' mixed tuples/lists/sets/dicts
  (``QueryMessage.path`` is a list of tuples, digest snapshots are
  tuples, ``NodeMeta.keywords`` is a set) -- a JSON mapping would
  silently rewrite tuples to lists and diverge from the simulator.
  Decoding refuses any global outside the allowlist, so a frame can
  only ever instantiate message structs: a malicious or corrupt peer
  cannot reach arbitrary constructors through the unpickler.

Both directions are pure functions of their input bytes/objects; no
clocks, RNG, or I/O live here (the module stays protocol-classified
under the determinism lint).
"""

from __future__ import annotations

import io
import pickle
import struct
from typing import Any, Dict, List, Tuple, Type

from repro.namespace.meta import NodeMeta
from repro.net.message import (
    Advertisement,
    AdvertMessage,
    ClientLookup,
    ClientLookupReply,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)

__all__ = [
    "FrameError",
    "FrameReader",
    "MAX_FRAME",
    "WIRE_TYPES",
    "decode_message",
    "encode_frame",
    "encode_message",
    "register_wire_type",
]

#: frame header: payload length, 4 bytes big-endian
_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: hard per-frame payload cap (16 MiB); a header exceeding it means a
#: corrupt or hostile stream, not a large message
MAX_FRAME = 1 << 24


class FrameError(ValueError):
    """Malformed frame, oversized frame, or disallowed payload type."""


#: every message class that may cross the wire (peer plane + client
#: plane + the payload structs they embed)
WIRE_TYPES: Tuple[Type[Any], ...] = (
    Advertisement,
    AdvertMessage,
    ClientLookup,
    ClientLookupReply,
    DataReply,
    DataRequest,
    NodeMeta,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)

_ALLOWED: Dict[Tuple[str, str], Type[Any]] = {
    (cls.__module__, cls.__name__): cls for cls in WIRE_TYPES
}
_ENCODABLE = set(WIRE_TYPES)


def register_wire_type(cls: Type[Any]) -> Type[Any]:
    """Admit an additional message class to the wire (tests, extensions).

    Usable as a class decorator; returns ``cls`` unchanged.
    """
    _ALLOWED[(cls.__module__, cls.__name__)] = cls
    _ENCODABLE.add(cls)
    return cls


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler whose global lookup is the wire-type allowlist."""

    def find_class(self, module: str, name: str) -> Any:
        cls = _ALLOWED.get((module, name))
        if cls is None:
            raise FrameError(
                f"frame references disallowed global {module}.{name}; "
                f"only registered wire types may cross the wire"
            )
        return cls


def encode_message(msg: Any) -> bytes:
    """Serialize one wire message to payload bytes."""
    if type(msg) not in _ENCODABLE:
        raise FrameError(
            f"{type(msg).__name__} is not a registered wire type"
        )
    return pickle.dumps(msg, protocol=4)


def decode_message(payload: bytes) -> Any:
    """Deserialize payload bytes produced by :func:`encode_message`."""
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except FrameError:
        raise
    except Exception as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc


def encode_frame(msg: Any) -> bytes:
    """One complete frame (header + payload) for ``msg``."""
    payload = encode_message(msg)
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"frame payload {len(payload)} bytes exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameReader:
    """Incremental frame reassembly over a fragmented byte stream.

    Feed it whatever the socket produced -- half a header, three and a
    half frames, one byte -- and it returns each *payload* exactly once,
    in stream order, as soon as it completes.
    """

    __slots__ = ("_buf", "max_frame", "n_frames")

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self._buf = bytearray()
        self.max_frame = max_frame
        self.n_frames = 0

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return every payload completed by it."""
        buf = self._buf
        buf.extend(data)
        out: List[bytes] = []
        offset = 0
        while True:
            if len(buf) - offset < HEADER_SIZE:
                break
            (length,) = _HEADER.unpack_from(buf, offset)
            if length > self.max_frame:
                raise FrameError(
                    f"frame header announces {length} bytes "
                    f"(max {self.max_frame}); stream is corrupt"
                )
            end = offset + HEADER_SIZE + length
            if len(buf) < end:
                break
            out.append(bytes(buf[offset + HEADER_SIZE:end]))
            self.n_frames += 1
            offset = end
        if offset:
            del buf[:offset]
        return out

    def pending(self) -> int:
        """Bytes buffered awaiting frame completion."""
        return len(self._buf)

    def __repr__(self) -> str:
        return f"FrameReader(pending={len(self._buf)}, frames={self.n_frames})"
