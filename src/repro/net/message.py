"""Message types exchanged between TerraDir servers.

Two traffic classes exist:

* **Query traffic** (:class:`QueryMessage`, :class:`ResponseMessage`)
  competes for each server's bounded request queue and exponential
  service time; queries arriving at a full queue are dropped.
* **Control traffic** (replication probes/transfers) bypasses the
  request queue -- the paper reports load-balancing messages are at
  least two orders of magnitude rarer than queries, and we count them
  to verify exactly that claim.

All in-band soft-state dissemination is piggybacked on query messages:
the sender's load sample, its digest snapshot, the destination node's
map as merged so far, new-replica advertisements, and the query path
walked so far (for path-propagation caching).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple


class Advertisement:
    """A "server X now replicates node v" notice piggybacked on messages."""

    __slots__ = ("node", "server")

    def __init__(self, node: int, server: int) -> None:
        self.node = node
        self.server = server

    def __repr__(self) -> str:
        return f"Advertisement(node={self.node}, server={self.server})"


class AdvertMessage:
    """Back-propagated new-replica notice (paper section 3.7).

    When s1 forwards a query to s2 on behalf of node v and s1 recently
    created replicas for v, s1 lets s2 know about them -- and vice
    versa: we send it from the *processing* server back to the message
    sender, off the critical path.
    """

    __slots__ = ("node", "servers")

    def __init__(self, node: int, servers: List[int]) -> None:
        self.node = node
        self.servers = servers

    def __repr__(self) -> str:
        return f"AdvertMessage(node={self.node}, servers={self.servers})"


class QueryMessage:
    """A lookup query in flight.

    Attributes:
        qid: unique query id.
        dest: destination node id.
        origin: server where the query was initiated.
        created_at: simulation time of initiation.
        hops: network hops taken so far.
        sender: server that forwarded this message (piggyback source).
        sender_load: sender's load sample at send time.
        sender_digest: ``(version, bits)`` digest snapshot of the sender.
        dest_map: merged map (server ids) for the destination node.
        path: ``(node, server)`` pairs logically visited so far, used
            for path-propagation caching (paper section 2.4).
        adverts: new-replica advertisements back-/forward-propagated.
        stale_hops: hops that landed on a server no longer hosting the
            node it was selected for (routing accuracy metric).
        via: the node on whose behalf this message was forwarded (the
            routing candidate the sender selected); -1 at injection.
    """

    __slots__ = (
        "qid",
        "dest",
        "origin",
        "created_at",
        "hops",
        "sender",
        "sender_load",
        "sender_digest",
        "dest_map",
        "path",
        "adverts",
        "stale_hops",
        "via",
    )

    def __init__(self, qid: int, dest: int, origin: int, created_at: float) -> None:
        self.qid = qid
        self.dest = dest
        self.origin = origin
        self.created_at = created_at
        self.hops = 0
        self.sender = origin
        self.sender_load = 0.0
        self.sender_digest: Optional[Tuple[int, int]] = None
        self.dest_map: List[int] = []
        self.path: List[Tuple[int, int]] = []
        self.adverts: List[Advertisement] = []
        self.stale_hops = 0
        self.via = -1

    def __repr__(self) -> str:
        return (
            f"QueryMessage(qid={self.qid}, dest={self.dest}, "
            f"origin={self.origin}, hops={self.hops})"
        )


class ResponseMessage:
    """Query completion sent directly back to the origin server.

    Carries the resolved node's map (the lookup result: name resolution
    to a set of hosting servers) and the full query path so the origin
    can install path-propagated cache entries.
    """

    __slots__ = (
        "qid",
        "dest",
        "origin",
        "created_at",
        "hops",
        "resolver",
        "dest_map",
        "path",
        "stale_hops",
        "sender_load",
        "sender_digest",
        "meta_version",
    )

    def __init__(
        self,
        query: QueryMessage,
        resolver: int,
        dest_map: List[int],
        meta_version: int = 0,
    ) -> None:
        self.qid = query.qid
        self.dest = query.dest
        self.origin = query.origin
        self.created_at = query.created_at
        self.hops = query.hops
        self.resolver = resolver
        self.dest_map = dest_map
        self.path = query.path
        self.stale_hops = query.stale_hops
        self.sender_load = 0.0
        self.sender_digest: Optional[Tuple[int, int]] = None
        self.meta_version = meta_version


class ControlKind(enum.Enum):
    """Replication-protocol control message kinds."""

    PROBE = "probe"
    PROBE_REPLY = "probe_reply"
    TRANSFER = "transfer"
    TRANSFER_ACK = "transfer_ack"


class ProbeMessage:
    """Step 2 of replica creation: overloaded server asks a candidate's load."""

    __slots__ = ("session", "src", "src_load")

    def __init__(self, session: int, src: int, src_load: float) -> None:
        self.session = session
        self.src = src
        self.src_load = src_load


class ProbeReplyMessage:
    """Candidate's reply: its actual load and willingness to host replicas."""

    __slots__ = ("session", "src", "load", "willing")

    def __init__(self, session: int, src: int, load: float, willing: bool) -> None:
        self.session = session
        self.src = src
        self.load = load
        self.willing = willing


class ReplicaPayload:
    """Everything needed to install one replica on the target server.

    Per the paper's constraints (section 2.3): node meta-data, a map for
    the node itself, plus the node's *context* -- a map for each of its
    namespace neighbors -- so routing through the replica is functionally
    equivalent to routing through the original.
    """

    __slots__ = ("node", "meta_version", "node_map", "context", "meta")

    def __init__(
        self,
        node: int,
        meta_version: int,
        node_map: List[int],
        context: Dict[int, List[int]],
        meta: Any = None,
    ) -> None:
        self.node = node
        self.meta_version = meta_version
        self.node_map = node_map
        self.context = context
        self.meta = meta


class TransferMessage:
    """Step 3: the replica payloads shipped to the chosen target server.

    ``load_delta`` is the ideal load shift ``(ls - lt) / 2`` the source
    computed; the target books it as its hysteresis adjustment (step 4).
    """

    __slots__ = ("session", "src", "payloads", "load_delta")

    def __init__(
        self,
        session: int,
        src: int,
        payloads: List[ReplicaPayload],
        load_delta: float = 0.0,
    ) -> None:
        self.session = session
        self.src = src
        self.payloads = payloads
        self.load_delta = load_delta


class TransferAckMessage:
    """Target's confirmation listing the node ids actually installed."""

    __slots__ = ("session", "src", "installed")

    def __init__(self, session: int, src: int, installed: List[int]) -> None:
        self.session = session
        self.src = src
        self.installed = installed


class DataRequest:
    """Client data/meta retrieval: the second step of a TerraDir access.

    A lookup resolves a name to a map; the client then requests the
    node's data (or fresh meta-data) from one of the mapped servers.
    Routing replicas hold no data, so a non-owner target answers with a
    redirect carrying its own map for the node.
    """

    __slots__ = ("rid", "node", "origin", "want_meta")

    def __init__(self, rid: int, node: int, origin: int,
                 want_meta: bool = False) -> None:
        self.rid = rid
        self.node = node
        self.origin = origin
        self.want_meta = want_meta


class ClientLookup:
    """Live-mode client plane: a lookup request sent over a socket.

    In the simulator clients call :meth:`System.inject` directly; a
    live client instead frames one of these to its home server, which
    injects the query locally and answers with a
    :class:`ClientLookupReply` carrying the lookup outcome.  ``cqid``
    is the *client's* correlation id (per-connection), distinct from
    the server-minted query id.
    """

    __slots__ = ("cqid", "node")

    def __init__(self, cqid: int, node: int) -> None:
        self.cqid = cqid
        self.node = node

    def __repr__(self) -> str:
        return f"ClientLookup(cqid={self.cqid}, node={self.node})"


class ClientLookupReply:
    """Live-mode client plane: the home server's answer to a lookup.

    ``ok=False`` means the query was dropped or timed out inside the
    cluster (the home server gave up after its server-side deadline);
    the remaining fields mirror the simulator's ``LookupResult``.
    """

    __slots__ = (
        "cqid", "node", "ok", "servers", "meta_version", "hops", "latency",
    )

    def __init__(
        self,
        cqid: int,
        node: int,
        ok: bool,
        servers: Optional[List[int]] = None,
        meta_version: int = 0,
        hops: int = 0,
        latency: float = 0.0,
    ) -> None:
        self.cqid = cqid
        self.node = node
        self.ok = ok
        self.servers = servers if servers is not None else []
        self.meta_version = meta_version
        self.hops = hops
        self.latency = latency

    def __repr__(self) -> str:
        return (
            f"ClientLookupReply(cqid={self.cqid}, node={self.node}, "
            f"ok={self.ok}, hops={self.hops})"
        )


class DataReply:
    """Answer to a :class:`DataRequest`.

    Exactly one of the outcomes applies: ``data``/``meta`` filled in
    (the target owns the node), or ``redirect_map`` filled in (the
    target does not export the data; try one of these servers).
    """

    __slots__ = ("rid", "node", "responder", "data", "meta", "redirect_map")

    def __init__(self, rid: int, node: int, responder: int) -> None:
        self.rid = rid
        self.node = node
        self.responder = responder
        self.data = None
        self.meta = None
        self.redirect_map: List[int] = []
