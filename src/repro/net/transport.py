"""Constant-latency message transport.

The paper's methodology fixes the application-layer network time at a
constant per hop and explicitly does not model network contention; the
transport therefore only delays delivery by ``net_delay`` and invokes
the destination server's handler.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict

from repro.sim.engine import Engine
from repro.sim.rng import exponential


class Transport:
    """Delivers messages between servers with a fixed one-way delay.

    Supports fail-stop server failures: messages addressed to a failed
    server are silently lost (after notifying the optional ``on_lost``
    hook so the system can account for vanished queries).  Failure is
    checked both at send time and at delivery time, so messages already
    in flight when the server dies are lost too.
    """

    __slots__ = (
        "engine",
        "net_delay",
        "net_jitter",
        "_jitter_rng",
        "_endpoints",
        "failed",
        "on_lost",
        "n_sent",
        "n_control_sent",
        "n_lost",
    )

    def __init__(self, engine: Engine, net_delay: float,
                 net_jitter: float = 0.0, jitter_seed: int = 0) -> None:
        if net_delay < 0:
            raise ValueError("net_delay must be >= 0")
        if net_jitter < 0:
            raise ValueError("net_jitter must be >= 0")
        self.engine = engine
        self.net_delay = net_delay
        self.net_jitter = net_jitter
        self._jitter_rng = random.Random(jitter_seed ^ 0x31AB5)
        self._endpoints: Dict[int, Callable[[Any], None]] = {}
        self.failed: set = set()
        self.on_lost: Callable[[int, Any], None] = None  # type: ignore
        self.n_sent = 0
        self.n_control_sent = 0
        self.n_lost = 0

    def register(self, server_id: int, handler: Callable[[Any], None]) -> None:
        """Register a server's delivery handler."""
        if server_id in self._endpoints:
            raise ValueError(f"server {server_id} already registered")
        self._endpoints[server_id] = handler

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        """Schedule delivery of ``msg`` at ``dest`` after ``net_delay``.

        Args:
            control: marks replication-protocol traffic (counted
                separately to validate the paper's claim that control
                traffic is >=100x rarer than queries).
        """
        handler = self._endpoints.get(dest)
        if handler is None:
            raise KeyError(f"no server registered with id {dest}")
        if dest in self.failed:
            self._lose(dest, msg)
            return
        if control:
            self.n_control_sent += 1
        else:
            self.n_sent += 1
        delay = self.net_delay
        if self.net_jitter > 0:
            delay += exponential(self._jitter_rng, self.net_jitter)
        self.engine.schedule_after(delay, self._deliver, dest, msg)

    def _deliver(self, dest: int, msg: Any) -> None:
        if dest in self.failed:
            self._lose(dest, msg)
            return
        self._endpoints[dest](msg)

    def _lose(self, dest: int, msg: Any) -> None:
        self.n_lost += 1
        if self.on_lost is not None:
            self.on_lost(dest, msg)

    def fail_server(self, server_id: int) -> None:
        """Fail-stop ``server_id``: all traffic to it is lost."""
        if server_id not in self._endpoints:
            raise KeyError(f"no server registered with id {server_id}")
        self.failed.add(server_id)

    def recover_server(self, server_id: int) -> None:
        self.failed.discard(server_id)

    @property
    def n_servers(self) -> int:
        return len(self._endpoints)
