"""Constant-latency message transport.

The paper's methodology fixes the application-layer network time at a
constant per hop and explicitly does not model network contention; the
transport therefore only delays delivery by ``net_delay`` and invokes
the destination server's handler.

Delivery ring (the constant-delay fast path)
--------------------------------------------
With a constant delay ``d`` every message sent at engine time ``t``
delivers at ``t + d``, and sends only happen while the engine clock is
non-decreasing -- so delivery times are non-decreasing and FIFO send
order *is* delivery-time order.  Instead of one heap entry per
in-flight message the transport keeps a plain FIFO ring of
``(deliver_at, dest, msg)`` and at most **one** scheduled engine event
(the drain for the ring head).  The drain delivers every head entry due
at its timestamp, then re-arms itself for the new head.  This keeps the
engine heap small no matter how many messages are in flight, and
preserves determinism: entries sharing a delivery time fire in send
order, exactly as their per-message heap entries would have (``seq``
tie-breaking).  Handlers may send during a drain; the new entries land
at ``now + d``, strictly later than the batch being drained, so the
ring stays time-ordered.

The per-message heap path remains and is used whenever it must be:
with ``net_jitter > 0`` delivery times are not monotone, and with
``net_delay == 0`` a drain could chase same-timestamp sends forever.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import Engine
from repro.sim.rng import exponential


class Transport:
    """Delivers messages between servers with a fixed one-way delay.

    Supports fail-stop server failures: messages addressed to a failed
    server are silently lost (after notifying the optional ``on_lost``
    hook so the system can account for vanished queries).  Failure is
    checked both at send time and at delivery time, so messages already
    in flight when the server dies are lost too.
    """

    __slots__ = (
        "engine",
        "net_delay",
        "net_jitter",
        "_jitter_rng",
        "_endpoints",
        "failed",
        "on_lost",
        "n_sent",
        "n_control_sent",
        "n_lost",
        "_ring",
        "_ring_enabled",
        "_drain_armed",
    )

    def __init__(self, engine: Engine, net_delay: float,
                 net_jitter: float = 0.0, jitter_seed: int = 0) -> None:
        if net_delay < 0:
            raise ValueError("net_delay must be >= 0")
        if net_jitter < 0:
            raise ValueError("net_jitter must be >= 0")
        self.engine = engine
        self.net_delay = net_delay
        self.net_jitter = net_jitter
        self._jitter_rng = random.Random(jitter_seed ^ 0x31AB5)
        self._endpoints: Dict[int, Callable[[Any], None]] = {}
        self.failed: set = set()
        self.on_lost: Optional[Callable[[int, Any], None]] = None
        self.n_sent = 0
        self.n_control_sent = 0
        self.n_lost = 0
        self._ring: Deque[Tuple[float, int, Any]] = deque()
        self._ring_enabled = net_jitter == 0.0 and net_delay > 0.0
        self._drain_armed = False

    def register(self, server_id: int, handler: Callable[[Any], None]) -> None:
        """Register a server's delivery handler."""
        if server_id in self._endpoints:
            raise ValueError(f"server {server_id} already registered")
        self._endpoints[server_id] = handler

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        """Schedule delivery of ``msg`` at ``dest`` after ``net_delay``.

        Args:
            control: marks replication-protocol traffic (counted
                separately to validate the paper's claim that control
                traffic is >=100x rarer than queries).
        """
        if dest not in self._endpoints:
            raise KeyError(f"no server registered with id {dest}")
        if dest in self.failed:
            self._lose(dest, msg)
            return
        if control:
            self.n_control_sent += 1
        else:
            self.n_sent += 1
        engine = self.engine
        if self._ring_enabled:
            at = engine.now + self.net_delay
            self._ring.append((at, dest, msg))
            if not self._drain_armed:
                self._drain_armed = True
                engine.schedule(at, self._drain)
            return
        delay = self.net_delay
        if self.net_jitter > 0:
            delay += exponential(self._jitter_rng, self.net_jitter)
        engine.schedule_after(delay, self._deliver, dest, msg)

    def _drain(self) -> None:
        """Deliver every ring entry due now, then re-arm for the head."""
        ring = self._ring
        now = self.engine.now
        failed = self.failed
        endpoints = self._endpoints
        while ring and ring[0][0] <= now:
            _, dest, msg = ring.popleft()
            if dest in failed:
                self._lose(dest, msg)
            else:
                endpoints[dest](msg)
        if ring:
            self.engine.schedule(ring[0][0], self._drain)
        else:
            self._drain_armed = False

    def _deliver(self, dest: int, msg: Any) -> None:
        if dest in self.failed:
            self._lose(dest, msg)
            return
        self._endpoints[dest](msg)

    def _lose(self, dest: int, msg: Any) -> None:
        self.n_lost += 1
        if self.on_lost is not None:
            self.on_lost(dest, msg)

    @property
    def n_in_flight(self) -> int:
        """Messages accepted but not yet delivered on the ring path.

        Always 0 on the heap fallback path (jitter or zero delay),
        where in-flight messages live on the engine heap instead.
        """
        return len(self._ring)

    def fail_server(self, server_id: int) -> None:
        """Fail-stop ``server_id``: all traffic to it is lost."""
        if server_id not in self._endpoints:
            raise KeyError(f"no server registered with id {server_id}")
        self.failed.add(server_id)

    def recover_server(self, server_id: int) -> None:
        self.failed.discard(server_id)

    @property
    def n_servers(self) -> int:
        return len(self._endpoints)
