"""Constant-latency message transport.

The paper's methodology fixes the application-layer network time at a
constant per hop and explicitly does not model network contention; the
transport therefore only delays delivery by ``net_delay`` and invokes
the destination server's handler.

Delivery ring (the constant-delay fast path)
--------------------------------------------
With a constant delay ``d`` every message sent at engine time ``t``
delivers at ``t + d``, and sends only happen while the engine clock is
non-decreasing -- so delivery times are non-decreasing and FIFO send
order *is* delivery-time order.  Instead of one heap entry per
in-flight message the transport keeps a plain FIFO ring of
``(deliver_at, dest, msg)`` and at most **one** scheduled engine event
(the drain for the ring head).  The drain delivers every head entry due
at its timestamp, then re-arms itself for the new head.  This keeps the
engine heap small no matter how many messages are in flight, and
preserves determinism: entries sharing a delivery time fire in send
order, exactly as their per-message heap entries would have (``seq``
tie-breaking).  Handlers may send during a drain; the new entries land
at ``now + d``, strictly later than the batch being drained, so the
ring stays time-ordered.

The per-message heap path remains and is used whenever it must be:
with ``net_jitter > 0`` delivery times are not monotone, and with
``net_delay == 0`` a drain could chase same-timestamp sends forever.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.sim.engine import Engine, EventHandle, ShardError
from repro.sim.rng import exponential


def shard_of_sid(sid: int, n_servers: int, n_shards: int) -> int:
    """The shard owning server ``sid`` (contiguous balanced blocks).

    Contiguity matters for determinism, not just locality: per-shard
    event logs are merged by ``(time, shard, seq)`` at barriers, and
    simultaneous per-server records (the maintenance tick's load
    samples) are emitted in ascending sid order within each shard -- so
    monotone contiguous blocks make the merged order equal the serial
    all-sids-ascending order exactly.
    """
    return sid * n_shards // n_servers


def shard_sids(shard_id: int, n_servers: int, n_shards: int) -> List[int]:
    """All server ids assigned to ``shard_id``."""
    return [
        s for s in range(n_servers)
        if shard_of_sid(s, n_servers, n_shards) == shard_id
    ]


class Transport:
    """Delivers messages between servers with a fixed one-way delay.

    Supports fail-stop server failures: messages addressed to a failed
    server are silently lost (after notifying the optional ``on_lost``
    hook so the system can account for vanished queries).  Failure is
    checked both at send time and at delivery time, so messages already
    in flight when the server dies are lost too.
    """

    __slots__ = (
        "engine",
        "net_delay",
        "net_jitter",
        "_jitter_rng",
        "_endpoints",
        "failed",
        "on_lost",
        "n_sent",
        "n_control_sent",
        "n_lost",
        "_ring",
        "_ring_enabled",
        "_drain_armed",
    )

    def __init__(self, engine: Engine, net_delay: float,
                 net_jitter: float = 0.0, jitter_seed: int = 0) -> None:
        if net_delay < 0:
            raise ValueError("net_delay must be >= 0")
        if net_jitter < 0:
            raise ValueError("net_jitter must be >= 0")
        self.engine = engine
        self.net_delay = net_delay
        self.net_jitter = net_jitter
        self._jitter_rng = random.Random(jitter_seed ^ 0x31AB5)
        self._endpoints: Dict[int, Callable[[Any], None]] = {}
        self.failed: Set[int] = set()
        self.on_lost: Optional[Callable[[int, Any], None]] = None
        self.n_sent = 0
        self.n_control_sent = 0
        self.n_lost = 0
        self._ring: Deque[Tuple[float, int, Any]] = deque()
        self._ring_enabled = net_jitter == 0.0 and net_delay > 0.0
        self._drain_armed = False

    def register(self, server_id: int, handler: Callable[[Any], None]) -> None:
        """Register a server's delivery handler."""
        if server_id in self._endpoints:
            raise ValueError(f"server {server_id} already registered")
        self._endpoints[server_id] = handler

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        """Schedule delivery of ``msg`` at ``dest`` after ``net_delay``.

        Args:
            control: marks replication-protocol traffic (counted
                separately to validate the paper's claim that control
                traffic is >=100x rarer than queries).
        """
        if dest not in self._endpoints:
            raise KeyError(f"no server registered with id {dest}")
        if dest in self.failed:
            self._lose(dest, msg)
            return
        if control:
            self.n_control_sent += 1
        else:
            self.n_sent += 1
        engine = self.engine
        if self._ring_enabled:
            at = engine.now + self.net_delay
            self._ring.append((at, dest, msg))
            if not self._drain_armed:
                self._drain_armed = True
                engine.schedule(at, self._drain)
            return
        delay = self.net_delay
        if self.net_jitter > 0:
            delay += exponential(self._jitter_rng, self.net_jitter)
        engine.schedule_after(delay, self._deliver, dest, msg)

    def _drain(self) -> None:
        """Deliver every ring entry due now, then re-arm for the head."""
        ring = self._ring
        now = self.engine.now
        failed = self.failed
        endpoints = self._endpoints
        while ring and ring[0][0] <= now:
            _, dest, msg = ring.popleft()
            if dest in failed:
                self._lose(dest, msg)
            else:
                endpoints[dest](msg)
        if ring:
            self.engine.schedule(ring[0][0], self._drain)
        else:
            self._drain_armed = False

    def _deliver(self, dest: int, msg: Any) -> None:
        if dest in self.failed:
            self._lose(dest, msg)
            return
        self._endpoints[dest](msg)

    def _lose(self, dest: int, msg: Any) -> None:
        self.n_lost += 1
        if self.on_lost is not None:
            self.on_lost(dest, msg)

    @property
    def n_in_flight(self) -> int:
        """Messages accepted but not yet delivered on the ring path.

        Always 0 on the heap fallback path (jitter or zero delay),
        where in-flight messages live on the engine heap instead.
        """
        return len(self._ring)

    def fail_server(self, server_id: int) -> None:
        """Fail-stop ``server_id``: all traffic to it is lost."""
        if server_id not in self._endpoints:
            raise KeyError(f"no server registered with id {server_id}")
        self.failed.add(server_id)

    def recover_server(self, server_id: int) -> None:
        self.failed.discard(server_id)

    @property
    def n_servers(self) -> int:
        return len(self._endpoints)


class ShardTransport(Transport):
    """One shard's slice of the transport under windowed execution.

    Local deliveries keep the constant-delay ring fast path; sends to
    servers on other shards are buffered in per-destination-shard
    egress lists that the :class:`~repro.sim.shard.WindowedCoordinator`
    exchanges at each window barrier.  Every in-flight entry is a
    ``(deliver_at, src_shard, send_seq, dest, msg)`` tuple: the leading
    triple is a globally unique, totally ordered key (``send_seq`` is a
    per-shard monotone counter), so merging remote batches into the
    local ring with :func:`heapq.merge` yields one canonical delivery
    order -- ties in ``deliver_at`` across shards break by
    ``(src_shard, send_seq)``, which is the documented merge rule.

    Constant lookahead is load-bearing: with ``net_jitter > 0``
    delivery times are not ``now + net_delay`` and the window argument
    collapses, and with ``net_delay == 0`` the window width would be
    zero -- both raise :class:`~repro.sim.engine.ShardError` so callers
    fall back to the serial engine loudly, never silently diverge.
    """

    __slots__ = (
        "shard_id",
        "n_shards",
        "total_servers",
        "_send_seq",
        "_egress",
        "_drain_handle",
        "_drain_at",
    )

    def __init__(
        self,
        engine: Engine,
        net_delay: float,
        *,
        shard_id: int,
        n_shards: int,
        n_servers: int,
        net_jitter: float = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        if net_jitter > 0:
            raise ShardError(
                "sharded execution requires constant delivery delay "
                f"(net_jitter={net_jitter} breaks the conservative "
                "lookahead); run with net_jitter=0 or on the serial engine"
            )
        if net_delay <= 0:
            raise ShardError(
                "sharded execution requires net_delay > 0 "
                "(the window width equals the delivery delay)"
            )
        if not 0 <= shard_id < n_shards:
            raise ValueError(f"shard_id {shard_id} out of range for {n_shards}")
        super().__init__(engine, net_delay, net_jitter=0.0,
                         jitter_seed=jitter_seed)
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.total_servers = n_servers
        self._send_seq = 0
        self._egress: Dict[int, List[Tuple]] = {}
        self._drain_handle: Optional[EventHandle] = None
        self._drain_at = 0.0

    # ------------------------------------------------------------------

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        """Ring-buffer local deliveries; buffer cross-shard sends."""
        if not 0 <= dest < self.total_servers:
            raise KeyError(f"no server registered with id {dest}")
        if dest in self.failed:
            self._lose(dest, msg)
            return
        if control:
            self.n_control_sent += 1
        else:
            self.n_sent += 1
        at = self.engine.now + self.net_delay
        self._send_seq += 1
        entry = (at, self.shard_id, self._send_seq, dest, msg)
        dest_shard = shard_of_sid(dest, self.total_servers, self.n_shards)
        if dest_shard == self.shard_id:
            self._ring.append(entry)
            if self._drain_handle is None:
                self._arm(at)
        else:
            self._egress.setdefault(dest_shard, []).append(entry)

    def _arm(self, at: float) -> None:
        self._drain_handle = self.engine.schedule(
            at, self._drain, handle=True
        )
        self._drain_at = at

    def _drain(self) -> None:
        """Deliver every ring entry due now, then re-arm for the head."""
        ring = self._ring
        now = self.engine.now
        failed = self.failed
        endpoints = self._endpoints
        self._drain_handle = None
        while ring and ring[0][0] <= now:
            _, _, _, dest, msg = ring.popleft()
            if dest in failed:
                self._lose(dest, msg)
            else:
                endpoints[dest](msg)
        if ring:
            self._arm(ring[0][0])

    # ------------------------------------------------------------------
    # barrier protocol (driven by the WindowedCoordinator)
    # ------------------------------------------------------------------

    def collect_egress(self) -> Dict[int, List[Tuple]]:
        """Hand over (and reset) the buffered cross-shard batches.

        Each batch is already sorted by ``(deliver_at, src_shard,
        send_seq)``: sends happen in non-decreasing engine time with a
        monotone sequence counter, so append order is sorted order.
        """
        out = self._egress
        self._egress = {}
        return out

    def ingest(self, batches: List[List[Tuple]]) -> None:
        """Merge remote batches into the local ring (window barrier).

        The merged ring is sorted by the canonical key; delivery then
        proceeds through the normal drain, so entries sharing a
        delivery time fire in key order exactly as documented.
        """
        batches = [b for b in batches if b]
        if not batches:
            return
        merged = list(heapq.merge(list(self._ring), *batches))
        if merged[0][0] < self.engine.now:
            raise ShardError(
                f"window protocol violation: message for t={merged[0][0]} "
                f"arrived at barrier t={self.engine.now}"
            )
        self._ring = deque(merged)
        if self._drain_handle is not None:
            self._drain_handle.cancel()
            self._drain_handle = None
        self._arm(merged[0][0])

    # ------------------------------------------------------------------

    @property
    def n_in_flight(self) -> int:
        """Ring entries plus not-yet-exchanged egress entries."""
        return len(self._ring) + sum(len(b) for b in self._egress.values())

    def fail_server(self, server_id: int) -> None:
        """Fail-stop a *local* server (cross-shard failures need a
        coordination channel the windowed protocol does not carry)."""
        if server_id not in self._endpoints:
            raise ShardError(
                f"server {server_id} is not local to shard {self.shard_id}; "
                "failure injection across shards is not supported -- run "
                "resilience experiments on the serial engine"
            )
        self.failed.add(server_id)
