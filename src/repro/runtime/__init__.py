"""Engine-agnostic runtime seam (clock / scheduler / wire).

Protocol code is written against :class:`~repro.runtime.base.Runtime`
and runs unchanged under either implementation:

* :class:`~repro.runtime.sim_runtime.SimRuntime` -- the discrete-event
  simulator (engine clock, delivery ring, timer-wheel); bit-identical
  to the pre-seam direct calls by construction.
* :class:`~repro.runtime.async_runtime.AsyncRuntime` -- an asyncio
  event loop with a wall clock and a framed TCP/UDS transport
  (:mod:`repro.runtime.async_wire`), hosting live peers via
  :mod:`repro.runtime.async_service` (``python -m repro serve``).

The async modules import lazily so simulation-only users never pay the
asyncio import (and so the determinism linter's wall-clock chokepoint
stays a leaf of the import graph).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.runtime.base import CancelHandle, Clock, Runtime, Scheduler, Wire
from repro.runtime.sim_runtime import SimRuntime

if TYPE_CHECKING:  # pragma: no cover - typing-only re-exports
    from repro.runtime.async_runtime import AsyncRuntime

__all__ = [
    "AsyncRuntime",
    "CancelHandle",
    "Clock",
    "Runtime",
    "Scheduler",
    "SimRuntime",
    "Wire",
]

_LAZY = {"AsyncRuntime": "repro.runtime.async_runtime"}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
