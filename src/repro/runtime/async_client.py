"""Live clients: framed lookups and closed-loop capacity discovery.

:class:`HomeConnection` is the minimal client endpoint: one framed
stream to a home peer's listener, correlation-id matching of
:class:`~repro.net.message.ClientLookup` requests to their replies,
and per-lookup timeout/retry (lookups are idempotent, so a timed-out
attempt is simply reissued -- the same masking strategy as the
simulator's :class:`~repro.client.client.TerraDirClient`).

:class:`AdaptiveLoadClient` drives a whole cluster with an AIMD
(additive-increase / multiplicative-decrease) controller, the classic
closed-loop rate-discovery shape used by telephony load generators:
offer an open-loop Poisson stream at the current target rate for one
epoch, measure p99 latency and drop rate, then

* **increase** the target additively while the epoch met the SLO
  (p99 at or under ``slo_p99``, drops at or under ``slo_drop_rate``),
* **back off** multiplicatively the moment it did not.

The oscillation around the knee *is* the measurement: the emitted
capacity curve (one point per epoch: target QPS, achieved QPS, p99,
drop rate) traces out sustainable throughput against latency, and the
reported ``max_sustainable_qps`` is the highest achieved rate of any
SLO-compliant epoch.

Destinations follow a :class:`~repro.workload.streams.WorkloadSpec` --
the same segment vocabulary (Zipf alpha, reshuffles, per-segment rate
multipliers) the simulated :class:`~repro.workload.arrivals
.WorkloadDriver` consumes -- so a live capacity run and a simulated
one can share a single workload definition.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.net.frame import FrameError, FrameReader, decode_message, encode_frame
from repro.net.message import ClientLookup, ClientLookupReply
from repro.sim.rng import ZipfSampler, exponential
from repro.workload.streams import WorkloadSpec

__all__ = ["AdaptiveLoadClient", "HomeConnection", "SegmentSampler"]

_READ_CHUNK = 65536


class HomeConnection:
    """One client's framed connection to its home peer."""

    def __init__(self, loop: asyncio.AbstractEventLoop, address: Tuple[Any, ...]) -> None:
        self.loop = loop
        self.address = address
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[ClientLookupReply]"] = {}
        self._cqid = 0
        self._pump: Optional["asyncio.Task[None]"] = None
        self.n_sent = 0
        self.n_replies = 0
        self.n_timeouts = 0

    async def connect(self, retries: int = 100, backoff: float = 0.05) -> None:
        last: Optional[OSError] = None
        for _attempt in range(retries):
            try:
                if self.address[0] == "uds":
                    self.reader, self.writer = await asyncio.open_unix_connection(
                        self.address[1]
                    )
                else:
                    self.reader, self.writer = await asyncio.open_connection(
                        self.address[1], self.address[2]
                    )
                break
            except OSError as exc:
                last = exc
                await asyncio.sleep(backoff)
        if self.writer is None:
            raise ConnectionError(
                f"could not reach home peer at {self.address}: {last}"
            )
        self._pump = self.loop.create_task(self._read_replies())

    async def _read_replies(self) -> None:
        frames = FrameReader()
        reader = self.reader
        assert reader is not None
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for payload in frames.feed(data):
                    msg = decode_message(payload)
                    fut = self._pending.pop(msg.cqid, None)
                    if fut is not None and not fut.done():
                        self.n_replies += 1
                        fut.set_result(msg)
        except (ConnectionError, FrameError, asyncio.CancelledError):
            pass

    async def lookup(
        self, node: int, timeout: float, retries: int = 0
    ) -> Optional[ClientLookupReply]:
        """Resolve ``node``; None when every attempt timed out.

        A reply with ``ok=False`` (the server-side deadline fired) also
        consumes an attempt -- the query died inside the cluster and
        reissuing is the correct client response.
        """
        for _attempt in range(retries + 1):
            reply = await self._lookup_once(node, timeout)
            if reply is not None and reply.ok:
                return reply
        return None

    async def _lookup_once(
        self, node: int, timeout: float
    ) -> Optional[ClientLookupReply]:
        writer = self.writer
        if writer is None or writer.is_closing():
            self.n_timeouts += 1
            return None
        self._cqid += 1
        cqid = self._cqid
        fut: "asyncio.Future[ClientLookupReply]" = self.loop.create_future()
        self._pending[cqid] = fut
        self.n_sent += 1
        writer.write(encode_frame(ClientLookup(cqid, node)))
        try:
            return await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(cqid, None)
            self.n_timeouts += 1
            return None

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:
                pass


class SegmentSampler:
    """Destination sampling over a :class:`WorkloadSpec`'s segments.

    Mirrors :class:`~repro.workload.arrivals.WorkloadDriver`'s
    semantics -- one popularity permutation, reshuffled at segment
    boundaries flagged ``reshuffle``, Zipf samplers cached per alpha --
    driven by *elapsed* time instead of engine time.  Past the final
    boundary the last segment's shape keeps applying (a live capacity
    run outlives its nominal spec duration by design).
    """

    def __init__(self, spec: WorkloadSpec, n_nodes: int, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.perm: List[int] = list(range(n_nodes))
        rng.shuffle(self.perm)
        self._samplers: Dict[float, ZipfSampler] = {}
        self._boundaries = spec.boundaries()
        self._idx = 0

    def _advance(self, rel_t: float) -> None:
        idx = self._idx
        last = len(self.spec.segments) - 1
        while idx < last and rel_t >= self._boundaries[idx]:
            idx += 1
            if self.spec.segments[idx].reshuffle:
                self.rng.shuffle(self.perm)
        self._idx = idx

    def segment_at(self, rel_t: float):
        self._advance(rel_t)
        return self.spec.segments[self._idx]

    def dest(self, rel_t: float) -> int:
        """Draw a destination node for time-offset ``rel_t``."""
        seg = self.segment_at(rel_t)
        if seg.alpha == 0.0:
            return self.rng.randrange(len(self.perm))
        sampler = self._samplers.get(seg.alpha)
        if sampler is None:
            sampler = ZipfSampler(len(self.perm), seg.alpha)
            self._samplers[seg.alpha] = sampler
        return self.perm[sampler.sample(self.rng)]


class AdaptiveLoadClient:
    """AIMD capacity discovery against a live cluster."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        addresses: Dict[int, Tuple[Any, ...]],
        home_sids: List[int],
        spec: WorkloadSpec,
        n_nodes: int,
        slo_p99: float = 0.25,
        slo_drop_rate: float = 0.01,
        start_rate: float = 50.0,
        add_step: float = 25.0,
        md_factor: float = 0.65,
        epoch: float = 1.0,
        lookup_timeout: float = 1.0,
        lookup_retries: int = 0,
        max_in_flight: int = 2000,
    ) -> None:
        if not home_sids:
            raise ValueError("need at least one home sid")
        if not 0.0 < md_factor < 1.0:
            raise ValueError("md_factor must be in (0, 1)")
        self.loop = loop
        self.addresses = addresses
        self.home_sids = list(home_sids)
        self.spec = spec
        self.slo_p99 = slo_p99
        self.slo_drop_rate = slo_drop_rate
        self.rate = start_rate
        self.add_step = add_step
        self.md_factor = md_factor
        self.epoch = epoch
        self.lookup_timeout = lookup_timeout
        self.lookup_retries = lookup_retries
        self.max_in_flight = max_in_flight
        self._rng = random.Random(spec.seed ^ 0xA11CE5)
        self._sampler = SegmentSampler(spec, n_nodes, self._rng)
        self._conns: List[HomeConnection] = []
        self._in_flight = 0
        self._shed = 0
        self.points: List[Dict[str, float]] = []
        self.n_issued = 0
        self.n_completed = 0
        self.n_dropped = 0

    # ------------------------------------------------------------------

    async def connect(self) -> None:
        for sid in self.home_sids:
            conn = HomeConnection(self.loop, self.addresses[sid])
            await conn.connect()
            self._conns.append(conn)

    async def close(self) -> None:
        for conn in self._conns:
            await conn.close()
        self._conns.clear()

    # ------------------------------------------------------------------

    async def run(self, duration: float) -> Dict[str, Any]:
        """Drive the cluster for ``duration`` seconds; return the curve."""
        if not self._conns:
            await self.connect()
        t0 = self.loop.time()
        deadline = t0 + duration
        epoch_idx = 0
        while self.loop.time() < deadline:
            epoch_end = min(self.loop.time() + self.epoch, deadline)
            stats = await self._run_epoch(t0, epoch_end)
            self._control(epoch_idx, stats)
            epoch_idx += 1
        return self.result()

    async def _run_epoch(
        self, t0: float, epoch_end: float
    ) -> Dict[str, float]:
        """Offer an open-loop Poisson stream at the current target rate."""
        issued = 0
        outcomes: List[Optional[float]] = []  # latency, or None = drop
        done: List["asyncio.Task[None]"] = []
        started = self.loop.time()
        rng = self._rng
        while True:
            now = self.loop.time()
            if now >= epoch_end:
                break
            rel_t = now - t0
            seg = self._sampler.segment_at(rel_t)
            rate = self.rate * seg.rate_mult
            gap = exponential(rng, 1.0 / rate) if rate > 0 else self.epoch
            sleep_for = min(gap, epoch_end - now)
            await asyncio.sleep(sleep_for)
            if self.loop.time() >= epoch_end:
                break
            if self._in_flight >= self.max_in_flight:
                # protect the process; an overloaded cluster already
                # shows up as drops, shed arrivals count the same way
                self._shed += 1
                outcomes.append(None)
                issued += 1
                continue
            node = self._sampler.dest(self.loop.time() - t0)
            conn = self._conns[issued % len(self._conns)]
            issued += 1
            self._in_flight += 1
            done.append(
                self.loop.create_task(self._one_lookup(conn, node, outcomes))
            )
        if done:
            await asyncio.gather(*done, return_exceptions=True)
        elapsed = max(self.loop.time() - started, 1e-9)
        latencies = sorted(v for v in outcomes if v is not None)
        completed = len(latencies)
        dropped = len(outcomes) - completed
        p99 = latencies[
            max(0, int(0.99 * (completed - 1)))
        ] if completed else float("inf")
        self.n_issued += issued
        self.n_completed += completed
        self.n_dropped += dropped
        return {
            "issued": float(issued),
            "completed": float(completed),
            "dropped": float(dropped),
            "elapsed": elapsed,
            "achieved_qps": completed / elapsed,
            "offered_qps": issued / elapsed,
            "p99": p99,
            "drop_rate": dropped / issued if issued else 0.0,
        }

    async def _one_lookup(
        self, conn: HomeConnection, node: int, outcomes: List[Optional[float]]
    ) -> None:
        t = self.loop.time()
        try:
            reply = await conn.lookup(
                node, self.lookup_timeout, self.lookup_retries
            )
        finally:
            self._in_flight -= 1
        if reply is None:
            outcomes.append(None)
        else:
            outcomes.append(self.loop.time() - t)

    def _control(self, epoch_idx: int, stats: Dict[str, float]) -> None:
        """The AIMD step: one rate decision per measured epoch."""
        met_slo = (
            stats["completed"] > 0
            and stats["p99"] <= self.slo_p99
            and stats["drop_rate"] <= self.slo_drop_rate
        )
        point = dict(stats)
        point["epoch"] = float(epoch_idx)
        point["target_qps"] = self.rate
        point["met_slo"] = 1.0 if met_slo else 0.0
        self.points.append(point)
        if met_slo:
            self.rate += self.add_step
        else:
            self.rate = max(1.0, self.rate * self.md_factor)

    def result(self) -> Dict[str, Any]:
        """The capacity-curve artifact payload."""
        sustainable = [
            p["achieved_qps"] for p in self.points if p["met_slo"] > 0
        ]
        return {
            "workload": self.spec.name,
            "slo_p99": self.slo_p99,
            "slo_drop_rate": self.slo_drop_rate,
            "epoch_seconds": self.epoch,
            "n_epochs": len(self.points),
            "n_issued": self.n_issued,
            "n_completed": self.n_completed,
            "n_dropped": self.n_dropped,
            "n_shed": self._shed,
            "max_sustainable_qps": max(sustainable) if sustainable else 0.0,
            "points": self.points,
        }
