"""The live runtime: the protocol trio over an asyncio event loop.

This module is a sanctioned *wall-clock chokepoint* (detlint DET001):
live mode genuinely runs in real time, and every wall-clock read in
the codebase funnels through here.  ``rt.now`` is the loop's monotonic
clock zeroed at runtime construction, so protocol timestamps are small
non-negative floats directly comparable to simulated seconds (latency
arithmetic, load windows, and idle timeouts all behave identically).

Scheduling maps onto ``loop.call_at`` / ``loop.call_later``.  There is
no timer-wheel: asyncio's timer heap already handles cancelled entries
lazily, and live clusters arm orders of magnitude fewer concurrent
timers than paper-scale simulations, so ``timer_after`` is plain
``call_later`` with a cancel handle.

Determinism caveat (see DESIGN.md section 14): under AsyncRuntime the
*interleaving* of peers is whatever the loop and the kernel produce --
two live runs are not bit-identical.  What stays deterministic is each
peer's sequential behaviour given its inbound message order; the
sim-vs-live conformance suite exploits this by driving strictly
sequential traffic.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.runtime.base import Wire

__all__ = ["AsyncHandle", "AsyncRuntime"]


class AsyncHandle:
    """Cancel handle wrapping one ``asyncio.TimerHandle``."""

    __slots__ = ("_timer", "cancelled")

    def __init__(self, timer: asyncio.TimerHandle) -> None:
        self._timer = timer
        self.cancelled = False

    def cancel(self) -> None:
        """Disarm the callback (idempotent; safe after it has fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        self._timer.cancel()

    def __repr__(self) -> str:
        return f"AsyncHandle(cancelled={self.cancelled})"


class AsyncRuntime:
    """Bind the :mod:`repro.runtime.base` trio to an event loop.

    The wire is attached after construction (``rt.wire = ...``): the
    transport needs the runtime's loop to spawn connector tasks, so
    the two reference each other and the runtime is built first.
    """

    __slots__ = ("loop", "wire", "_t0")

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        wire: Optional[Wire] = None,
    ) -> None:
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self.wire = wire
        self._t0 = self.loop.time()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since runtime construction (monotonic)."""
        return self.loop.time() - self._t0

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def schedule(
        self, at: float, fn: Callable[..., None], *args: Any,
        handle: bool = False,
    ) -> Optional[AsyncHandle]:
        timer = self.loop.call_at(self._t0 + at, fn, *args)
        return AsyncHandle(timer) if handle else None

    def schedule_after(
        self, delay: float, fn: Callable[..., None], *args: Any,
        handle: bool = False,
    ) -> Optional[AsyncHandle]:
        timer = self.loop.call_later(delay if delay > 0.0 else 0.0, fn, *args)
        return AsyncHandle(timer) if handle else None

    def timer_after(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> AsyncHandle:
        timer = self.loop.call_later(delay if delay > 0.0 else 0.0, fn, *args)
        return AsyncHandle(timer)

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        wire = self.wire
        if wire is None:
            raise RuntimeError("AsyncRuntime has no wire attached")
        wire.send(dest, msg, control=control)

    def __repr__(self) -> str:
        return f"AsyncRuntime(t={self.now:.3f})"
