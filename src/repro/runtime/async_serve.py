"""``python -m repro serve`` -- host a live TerraDir cluster.

Boots N peers over real sockets (unix-domain by default, TCP with
``--transport tcp``) in this process, starts the maintenance ticks,
and -- with ``--drive adaptive`` -- runs the closed-loop AIMD load
client against it to discover the deployment's maximum sustainable
QPS.  The capacity curve (one point per control epoch) is printed,
optionally written to ``--out`` as JSON, and optionally stored as a
campaign artifact via :class:`~repro.experiments.campaign.ResultStore`
with ``--results DIR``.

This module runs in real time by design: it is part of the sanctioned
wall-clock chokepoint (see :mod:`repro.runtime.async_runtime`).

Examples::

    # 5 peers on unix sockets, 10 s of adaptive load
    python -m repro serve --servers 5 --duration 10 --drive adaptive \\
        --out capacity.json

    # host only; talk to it with your own client over TCP
    python -m repro serve --transport tcp --port-base 47000 --drive none
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import tempfile
import time
from typing import Any, Dict, Optional

from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.runtime.async_client import AdaptiveLoadClient
from repro.runtime.async_runtime import AsyncRuntime
from repro.runtime.async_service import LiveService, build_live_system
from repro.runtime.async_wire import AsyncWire, tcp_addresses, uds_addresses
from repro.workload.streams import unif_stream, uzipf_stream

__all__ = ["main"]

_PRESETS = {
    "replicated": SystemConfig.replicated,
    "caching": SystemConfig.caching,
}


def _parse_args(argv) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="host a live TerraDir cluster over UDS/TCP",
    )
    ap.add_argument("--servers", type=int, default=5)
    ap.add_argument("--levels", type=int, default=8,
                    help="balanced-tree namespace depth (2**(L+1)-1 nodes)")
    ap.add_argument("--preset", choices=sorted(_PRESETS), default="replicated")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument("--transport", choices=("uds", "tcp"), default="uds")
    ap.add_argument("--dir", default=None,
                    help="socket directory for --transport uds "
                         "(default: a fresh temp dir)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port-base", type=int, default=47000)
    ap.add_argument("--duration", type=float, default=10.0,
                    help="seconds to run (0 = until interrupted)")
    ap.add_argument("--drive", choices=("adaptive", "none"),
                    default="adaptive")
    ap.add_argument("--alpha", type=float, default=0.0,
                    help="Zipf alpha for the driven workload (0 = uniform)")
    ap.add_argument("--slo-p99", type=float, default=0.25)
    ap.add_argument("--slo-drop-rate", type=float, default=0.01)
    ap.add_argument("--start-rate", type=float, default=50.0)
    ap.add_argument("--add-step", type=float, default=25.0)
    ap.add_argument("--md-factor", type=float, default=0.65)
    ap.add_argument("--epoch", type=float, default=1.0)
    ap.add_argument("--lookup-timeout", type=float, default=1.0)
    ap.add_argument("--out", default=None,
                    help="write the capacity-curve JSON here")
    ap.add_argument("--results", default=None,
                    help="also store the artifact in this ResultStore dir")
    return ap.parse_args(argv)


def _fingerprint(params: Dict[str, Any]) -> str:
    blob = json.dumps(params, sort_keys=True).encode()
    return "serve-" + hashlib.sha256(blob).hexdigest()[:16]


async def _amain(args: argparse.Namespace) -> Dict[str, Any]:
    loop = asyncio.get_running_loop()
    ns = balanced_tree(levels=args.levels)
    cfg = _PRESETS[args.preset](n_servers=args.servers, seed=args.seed)

    tmp: Optional[tempfile.TemporaryDirectory] = None
    if args.transport == "uds":
        sock_dir = args.dir
        if sock_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            sock_dir = tmp.name
        addresses = uds_addresses(sock_dir, args.servers)
    else:
        addresses = tcp_addresses(args.host, args.port_base, args.servers)

    runtime = AsyncRuntime(loop)
    wire = AsyncWire(loop, addresses)
    system = build_live_system(ns, cfg, runtime, wire)
    service = LiveService(system)
    service.attach(wire)
    await wire.start_listeners()
    system.start_maintenance()
    print(f"serving {args.servers} peers over {args.transport} "
          f"({len(ns)} nodes, preset={args.preset})")

    curve: Dict[str, Any] = {}
    try:
        if args.drive == "adaptive":
            if args.alpha > 0:
                spec = uzipf_stream(args.start_rate, max(args.duration, 1.0),
                                    args.alpha, seed=args.seed)
            else:
                spec = unif_stream(args.start_rate, max(args.duration, 1.0),
                                   seed=args.seed)
            client = AdaptiveLoadClient(
                loop, addresses, list(range(args.servers)), spec, len(ns),
                slo_p99=args.slo_p99,
                slo_drop_rate=args.slo_drop_rate,
                start_rate=args.start_rate,
                add_step=args.add_step,
                md_factor=args.md_factor,
                epoch=args.epoch,
                lookup_timeout=args.lookup_timeout,
            )
            try:
                curve = await client.run(args.duration or 10.0)
            finally:
                await client.close()
        elif args.duration > 0:
            await asyncio.sleep(args.duration)
        else:
            await asyncio.Event().wait()  # until interrupted
    finally:
        await wire.close()
        if tmp is not None:
            tmp.cleanup()

    curve["service"] = {
        "n_lookups": service.n_lookups,
        "n_completed": service.n_completed,
        "n_deadline_failures": service.n_deadline_failures,
        "n_replicas": system.total_replicas(),
    }
    return curve


def _report(curve: Dict[str, Any]) -> None:
    points = curve.get("points", [])
    for p in points:
        flag = "ok " if p["met_slo"] else "SLO"
        print(f"  epoch {int(p['epoch']):3d}  target {p['target_qps']:7.1f} "
              f"q/s  achieved {p['achieved_qps']:7.1f}  "
              f"p99 {p['p99'] * 1e3:7.1f} ms  "
              f"drops {100 * p['drop_rate']:5.1f}%  [{flag}]")
    print(f"max sustainable: {curve.get('max_sustainable_qps', 0.0):.1f} q/s "
          f"({curve.get('n_completed', 0)} lookups completed, "
          f"{curve.get('n_dropped', 0)} dropped)")


def main(argv) -> int:
    args = _parse_args(argv)
    started = time.time()
    try:
        curve = asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("interrupted")
        return 130
    if not curve.get("points"):
        # host-only runs have no curve; nothing to persist
        print(f"served for {time.time() - started:.1f}s")
        return 0
    _report(curve)
    params = {
        "experiment": "serve_capacity",
        "servers": args.servers,
        "levels": args.levels,
        "preset": args.preset,
        "seed": args.seed,
        "transport": args.transport,
        "alpha": args.alpha,
        "slo_p99": args.slo_p99,
        "duration": args.duration,
    }
    record = {
        "fingerprint": _fingerprint(params),
        "status": "ok",
        "params": params,
        "started_at": started,
        "elapsed": time.time() - started,
        "result": curve,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=1)
        print(f"capacity curve written to {args.out}")
    if args.results:
        from repro.experiments.campaign import ResultStore

        ResultStore(args.results).put(record)
        print(f"artifact {record['fingerprint']} stored in {args.results}")
    # a capacity run that completed zero lookups is a failed run
    return 0 if curve.get("n_completed", 0) > 0 else 1
