"""Live peer hosting: a TerraDir cluster over real sockets.

:class:`LiveSystem` is the event-loop counterpart of
:class:`repro.cluster.system.System`: it owns the namespace, config,
stats sink, RNG streams, and the peers hosted *in this process*, and
exposes the exact attribute surface the builder and the Peer pipeline
consume (``cfg``/``ns``/``rng_streams``/``stats``/``runtime``/
``peers``/``transport.register``).  Peer construction and wiring are
therefore **shared with the simulator** -- both paths call
:func:`repro.cluster.builder._populate_system`, so ownership maps,
neighbor pins, digest geometry, heterogeneity draws, and bootstrap
load knowledge are built by the same code with the same seeded draws.

A process may host all of a cluster's peers (the single-process
``python -m repro serve`` default and the conformance suite) or a
contiguous sid range (multi-process deployments); remote peers stay
``None`` in the sid-indexed ``peers`` list, exactly like
:class:`~repro.cluster.system.ShardSystem`.

:class:`LiveService` is the client plane: it answers
:class:`~repro.net.message.ClientLookup` frames arriving on a hosted
peer's listener by injecting the query locally, parking a completion
hook, and framing a :class:`~repro.net.message.ClientLookupReply` back
on the same connection -- with a server-side deadline so a dropped
query answers ``ok=False`` instead of leaking the hook.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.config import SystemConfig
from repro.namespace.tree import Namespace
from repro.net.frame import encode_frame
from repro.net.message import ClientLookup, ClientLookupReply
from repro.runtime.async_runtime import AsyncRuntime
from repro.runtime.async_wire import AsyncWire
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsSink, SystemStats

__all__ = ["LiveService", "LiveSystem", "build_live_system"]


class LiveSystem:
    """A live (event-loop) TerraDir deployment, or one process's slice."""

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        runtime: AsyncRuntime,
        wire: AsyncWire,
        owner: List[int],
        stats: Optional[StatsSink] = None,
    ) -> None:
        self.ns = ns
        self.cfg = cfg
        self.runtime = runtime
        self.transport = wire
        self.stats = stats if stats is not None else SystemStats(ns.max_depth)
        self.rng_streams = RngStreams(cfg.seed)
        # full-length sid-indexed list; None marks peers hosted by
        # other processes (the ShardSystem convention, which is also
        # what flips the builder into sparse-population mode)
        self.peers: List[Any] = [None] * cfg.n_servers
        self.local_peers: List[Any] = []
        self.owner = owner
        self._qid = 0
        self._maintenance_scheduled = False
        self.on_inject = None  # optional (now, src, dest) tap for tracing

    # ------------------------------------------------------------------
    # client API (local peers only)
    # ------------------------------------------------------------------

    def inject(self, src_server: int, dest_node: int) -> int:
        """Initiate a lookup for ``dest_node`` at local peer ``src_server``."""
        peer = self.peers[src_server]
        if peer is None:
            raise ValueError(f"server {src_server} is not hosted here")
        self._qid += 1
        if self.on_inject is not None:
            self.on_inject(self.runtime.now, src_server, dest_node)
        peer.inject(dest_node, self._qid)
        return self._qid

    def lookup_name(self, src_server: int, name: str) -> int:
        return self.inject(src_server, self.ns.id_of(name))

    # ------------------------------------------------------------------
    # maintenance (wall-clock ticks over local peers)
    # ------------------------------------------------------------------

    def start_maintenance(self) -> None:
        """Schedule the recurring maintenance ticks (idempotent)."""
        if self._maintenance_scheduled:
            return
        self._maintenance_scheduled = True
        rt = self.runtime
        rt.schedule_after(self.cfg.load_window, self._tick_windows)
        rt.schedule_after(self.cfg.rank_rescale_interval, self._tick_ranking)
        if self.cfg.replica_idle_timeout > 0:
            rt.schedule_after(
                self.cfg.replica_idle_timeout, self._tick_idle_eviction
            )

    def _tick_windows(self) -> None:
        now = self.runtime.now
        stats = self.stats
        sample = self.cfg.sample_loads_every > 0
        for peer in self.local_peers:
            if peer.failed:
                continue
            load = peer.roll_window(now)
            if sample:
                stats.sample_load(now, load)
        self.runtime.schedule_after(self.cfg.load_window, self._tick_windows)

    def _tick_ranking(self) -> None:
        for peer in self.local_peers:
            peer.rescale_ranking()
        self.runtime.schedule_after(
            self.cfg.rank_rescale_interval, self._tick_ranking
        )

    def _tick_idle_eviction(self) -> None:
        now = self.runtime.now
        for peer in self.local_peers:
            peer.evict_idle_replicas(now)
        self.runtime.schedule_after(
            self.cfg.replica_idle_timeout, self._tick_idle_eviction
        )

    # ------------------------------------------------------------------
    # introspection (local slice)
    # ------------------------------------------------------------------

    def total_replicas(self) -> int:
        return sum(len(p.replicas) for p in self.local_peers)

    def hosted_counts(self) -> List[int]:
        return [p.n_hosted for p in self.local_peers]

    def hosts_of(self, node: int) -> List[int]:
        return [p.sid for p in self.local_peers if p.hosts(node)]

    def __repr__(self) -> str:
        return (
            f"LiveSystem(servers={len(self.local_peers)}/"
            f"{self.cfg.n_servers}, nodes={len(self.ns)}, "
            f"t={self.runtime.now:.2f})"
        )


class LiveService:
    """The client plane of one live host: lookups over the socket."""

    def __init__(self, system: LiveSystem, lookup_deadline: float = 5.0) -> None:
        if lookup_deadline <= 0:
            raise ValueError("lookup_deadline must be > 0")
        self.system = system
        self.lookup_deadline = lookup_deadline
        self.n_lookups = 0
        self.n_completed = 0
        self.n_deadline_failures = 0

    def attach(self, wire: AsyncWire) -> None:
        """Install this service as the wire's client-plane handler."""
        wire.on_client = self.handle_client

    # the wire calls this synchronously from a listener's read task
    def handle_client(
        self, sid: int, msg: ClientLookup, writer: asyncio.StreamWriter
    ) -> None:
        system = self.system
        peer = system.peers[sid]
        rt = system.runtime
        self.n_lookups += 1
        qid = system.inject(sid, msg.node)
        timer = rt.timer_after(
            self.lookup_deadline, self._on_deadline, peer, qid, msg, writer
        )

        def on_response(resp: Any) -> None:
            timer.cancel()
            self.n_completed += 1
            self._reply(
                writer,
                ClientLookupReply(
                    msg.cqid, resp.dest, True,
                    servers=list(resp.dest_map),
                    meta_version=resp.meta_version,
                    hops=resp.hops,
                    latency=rt.now - resp.created_at,
                ),
            )

        peer.client_hooks[("lookup", qid)] = on_response

    def _on_deadline(
        self, peer: Any, qid: int, msg: ClientLookup,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The query died inside the cluster (queue drop, lost frame):
        fail the lookup instead of leaking its completion hook."""
        hook = peer.client_hooks.pop(("lookup", qid), None)
        if hook is None:
            return  # response raced the deadline; already answered
        self.n_deadline_failures += 1
        self._reply(writer, ClientLookupReply(msg.cqid, msg.node, False))

    @staticmethod
    def _reply(writer: asyncio.StreamWriter, reply: ClientLookupReply) -> None:
        if writer.is_closing():
            return  # client went away; nothing to answer
        writer.write(encode_frame(reply))


def build_live_system(
    ns: Namespace,
    cfg: SystemConfig,
    runtime: AsyncRuntime,
    wire: AsyncWire,
    owner: Optional[Sequence[int]] = None,
    host_sids: Optional[Sequence[int]] = None,
    stats: Optional[StatsSink] = None,
) -> LiveSystem:
    """Wire the peers hosted by this process onto a live runtime.

    Identical construction path to :func:`repro.cluster.builder
    .build_system` -- same owner resolution, same peer population
    (digests, pins, heterogeneity, bootstrap draws) -- but peers hang
    off an :class:`AsyncRuntime` and register with the framed wire.

    Args:
        host_sids: the sids this process hosts (default: all of them).
    """
    # imported here, not at module top: the builder pulls in the sim
    # engine stack, which live-only deployments never tick
    from repro.cluster.builder import _populate_system, _resolve_owner

    if cfg.oracle_maps:
        raise ValueError(
            "oracle_maps reads ground-truth peer state across the "
            "cluster; it cannot run over a real wire"
        )
    owner_list = _resolve_owner(ns, cfg, owner)
    system = LiveSystem(ns, cfg, runtime, wire, owner_list, stats=stats)
    sids = list(host_sids) if host_sids is not None else list(range(cfg.n_servers))
    _populate_system(system, owner_list, sids)
    runtime.wire = wire
    return system


# typing helper for callers that want the full dict of addresses
AddressMap = Dict[int, Any]
