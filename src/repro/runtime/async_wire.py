"""Framed asyncio transport: the live-mode :class:`Wire`.

One cluster is a set of peer endpoints, each listening on its own
address -- a unix-domain socket (``("uds", path)``) or a TCP port
(``("tcp", host, port)``).  Every peer-to-peer message is one frame
(:mod:`repro.net.frame`) written to the *destination's* listener over
a lazily opened, cached outbound connection; connections are
write-only in the peer plane (a response is an independent send to the
origin's listener, mirroring the simulator's transport, which has no
notion of a connection at all).

``send`` is synchronous fire-and-forget, exactly like
``Transport.send``: protocol code never awaits.  When no connection to
``dest`` exists yet, the frame queues in a per-destination outbox and
a connector task dials with retries (cluster processes boot in any
order); once connected the outbox flushes in send order, preserving
per-destination FIFO -- the same per-link ordering guarantee the
simulator's delivery ring provides.

Inbound, each listener reassembles frames, decodes, and hands peer
messages straight to the registered handler (``peer.deliver``);
client-plane messages (:class:`~repro.net.message.ClientLookup`)
divert to the ``on_client`` callback with the connection's writer so
the service can answer on the same socket.

Counter parity with :class:`repro.net.transport.Transport`: ``n_sent``
/ ``n_control_sent`` / ``n_lost`` have the same meaning, so live and
simulated runs report through the same introspection surface.
"""

from __future__ import annotations

import asyncio
import os
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.frame import (
    FrameError,
    FrameReader,
    decode_message,
    encode_frame,
)
from repro.net.message import ClientLookup

__all__ = ["AsyncWire", "tcp_addresses", "uds_addresses"]

#: ("uds", path) or ("tcp", host, port)
Address = Tuple[Any, ...]

_READ_CHUNK = 65536


def uds_addresses(sock_dir: str, n_servers: int) -> Dict[int, Address]:
    """One unix-domain socket per server under ``sock_dir``."""
    return {
        sid: ("uds", os.path.join(sock_dir, f"peer-{sid}.sock"))
        for sid in range(n_servers)
    }


def tcp_addresses(
    host: str, port_base: int, n_servers: int
) -> Dict[int, Address]:
    """One TCP port per server: ``port_base + sid`` on ``host``."""
    return {
        sid: ("tcp", host, port_base + sid) for sid in range(n_servers)
    }


class AsyncWire:
    """Live transport over framed UDS/TCP streams."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        addresses: Dict[int, Address],
        on_client: Optional[Callable[[int, Any, asyncio.StreamWriter], None]] = None,
        connect_retries: int = 100,
        connect_backoff: float = 0.05,
    ) -> None:
        self.loop = loop
        self.addresses = dict(addresses)
        self.on_client = on_client
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self._endpoints: Dict[int, Callable[[Any], None]] = {}
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._outbox: Dict[int, List[bytes]] = {}
        self._connecting: Set[int] = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._tasks: Set["asyncio.Task[Any]"] = set()
        self._closed = False
        self.n_sent = 0
        self.n_control_sent = 0
        self.n_lost = 0
        self.n_delivered = 0

    # ------------------------------------------------------------------
    # registration and listeners
    # ------------------------------------------------------------------

    def register(self, server_id: int, handler: Callable[[Any], None]) -> None:
        """Register a locally hosted peer's delivery handler."""
        if server_id in self._endpoints:
            raise ValueError(f"server {server_id} already registered")
        if server_id not in self.addresses:
            raise ValueError(f"server {server_id} has no wire address")
        self._endpoints[server_id] = handler

    async def start_listeners(self) -> None:
        """Bind one listener per locally registered peer."""
        for sid in sorted(self._endpoints):
            addr = self.addresses[sid]
            conn_cb = partial(self._serve_conn, sid)
            if addr[0] == "uds":
                path = addr[1]
                try:
                    os.unlink(path)  # stale socket from a previous run
                except OSError:
                    pass
                server = await asyncio.start_unix_server(conn_cb, path=path)
            else:
                server = await asyncio.start_server(
                    conn_cb, host=addr[1], port=addr[2]
                )
            self._servers.append(server)

    async def _serve_conn(
        self, sid: int, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Pump one inbound connection into peer ``sid``."""
        frames = FrameReader()
        deliver = self._endpoints[sid]
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for payload in frames.feed(data):
                    msg = decode_message(payload)
                    self.n_delivered += 1
                    if type(msg) is ClientLookup:
                        if self.on_client is not None:
                            self.on_client(sid, msg, writer)
                    else:
                        deliver(msg)
        except (ConnectionError, FrameError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        """Fire-and-forget framed delivery to ``dest``'s listener."""
        if control:
            self.n_control_sent += 1
        else:
            self.n_sent += 1
        if self._closed or dest not in self.addresses:
            self.n_lost += 1
            return
        frame = encode_frame(msg)
        writer = self._writers.get(dest)
        if writer is not None and not writer.is_closing():
            writer.write(frame)
            return
        self._outbox.setdefault(dest, []).append(frame)
        if dest not in self._connecting:
            self._connecting.add(dest)
            self._spawn(self._connect(dest))

    def _spawn(self, coro: Any) -> None:
        task = self.loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _connect(self, dest: int) -> None:
        """Dial ``dest`` with retries, then flush its outbox in order."""
        addr = self.addresses[dest]
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None
        for _attempt in range(self.connect_retries):
            if self._closed:
                break
            try:
                if addr[0] == "uds":
                    reader, writer = await asyncio.open_unix_connection(addr[1])
                else:
                    reader, writer = await asyncio.open_connection(
                        addr[1], addr[2]
                    )
                break
            except OSError:
                await asyncio.sleep(self.connect_backoff)
        self._connecting.discard(dest)
        if writer is None or reader is None:
            # peer unreachable: everything queued for it is lost
            self.n_lost += len(self._outbox.pop(dest, []))
            return
        self._writers[dest] = writer
        for frame in self._outbox.pop(dest, []):
            writer.write(frame)
        self._spawn(self._watch_peer(dest, reader, writer))

    async def _watch_peer(
        self, dest: int, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Outbound connections are write-only; watch for peer close so
        a later send re-dials instead of writing into a dead socket."""
        try:
            while await reader.read(_READ_CHUNK):
                pass
        except (ConnectionError, asyncio.CancelledError):
            pass
        if self._writers.get(dest) is writer:
            del self._writers[dest]

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Stop listeners, close connections, cancel helper tasks."""
        self._closed = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers.clear()
        for writer in list(self._writers.values()):
            try:
                writer.close()
            except Exception:
                pass
        self._writers.clear()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._tasks.clear()

    def __repr__(self) -> str:
        return (
            f"AsyncWire(local={sorted(self._endpoints)}, "
            f"conns={len(self._writers)}, sent={self.n_sent})"
        )
