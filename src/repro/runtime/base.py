"""The runtime seam: what protocol code may ask of its host.

Protocol components (the Peer pipeline, the replication manager, the
client) never touch an engine, an event loop, or a socket directly.
They hold one injected *runtime* handle and use exactly three
capabilities:

* :class:`Clock` -- ``rt.now``, the current time in seconds.  Under
  the simulator this is the engine clock; under asyncio it is a
  monotonic wall clock zeroed at runtime construction.
* :class:`Scheduler` -- ``rt.schedule(at, fn, *args)`` /
  ``rt.schedule_after(delay, fn, *args)`` for ordinary callbacks, and
  ``rt.timer_after(delay, fn, *args)`` for cancel-heavy timeouts
  (lookup timers, session liveness).  The split matters in the
  simulator, where ``timer_after`` routes through the
  :class:`~repro.sim.timerwheel.TimerWheel` to keep dead timeout
  entries off the event heap; an event loop maps both onto
  ``call_at``/``call_later``.
* :class:`Wire` -- ``rt.send(dest, msg, control=False)``, one-way
  message delivery to server ``dest``.  The simulator's delivery ring
  and the framed asyncio transport both sit behind this call.

The contract is deliberately minimal: nothing here exposes event
counts, heap access, run loops, or connection state, so a component
written against :class:`Runtime` cannot tell which world it is in.
``repro/runtime/sim_runtime.py`` binds the trio to the existing
discrete-event machinery (bit-identical by construction -- every
method *is* the underlying bound method); ``repro/runtime/async_*``
bind it to an asyncio event loop and real sockets.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Optional

if sys.version_info >= (3, 8):
    from typing import Protocol, runtime_checkable
else:  # pragma: no cover - repo floor is 3.9, guard kept for vendoring
    from typing_extensions import Protocol, runtime_checkable  # type: ignore

__all__ = [
    "CancelHandle",
    "Clock",
    "Runtime",
    "Scheduler",
    "Wire",
]


@runtime_checkable
class CancelHandle(Protocol):
    """A cancellable scheduled callback (engine event, wheel timer, or
    asyncio timer).  ``cancel`` is idempotent and safe after firing."""

    cancelled: bool

    def cancel(self) -> None:
        ...


@runtime_checkable
class Clock(Protocol):
    """Read-only access to the runtime's notion of "now" (seconds)."""

    @property
    def now(self) -> float:
        ...


@runtime_checkable
class Scheduler(Protocol):
    """Callback scheduling against the runtime clock."""

    def schedule(
        self, at: float, fn: Callable[..., None], *args: Any,
        handle: bool = False,
    ) -> Optional[CancelHandle]:
        """Run ``fn(*args)`` at absolute time ``at``; with
        ``handle=True`` return a :class:`CancelHandle` for it."""
        ...

    def schedule_after(
        self, delay: float, fn: Callable[..., None], *args: Any,
        handle: bool = False,
    ) -> Optional[CancelHandle]:
        """Run ``fn(*args)`` after ``delay`` seconds."""
        ...

    def timer_after(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> CancelHandle:
        """Arm a timeout expected to be cancelled before it fires.

        Semantically identical to ``schedule_after(..., handle=True)``
        but always returns a handle, and implementations route it
        through their cancel-cheap path (the sim timer-wheel)."""
        ...


@runtime_checkable
class Wire(Protocol):
    """One-way message delivery to another server."""

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        """Deliver ``msg`` to server ``dest``; ``control`` marks
        replication-protocol traffic (counted separately)."""
        ...


@runtime_checkable
class Runtime(Protocol):
    """The full bundle protocol components are injected with.

    Structurally the union of :class:`Clock`, :class:`Scheduler`, and
    :class:`Wire` (spelled out because ``Protocol`` intersection via
    inheritance breaks ``runtime_checkable`` property checks on some
    interpreter versions).
    """

    @property
    def now(self) -> float:
        ...

    def schedule(
        self, at: float, fn: Callable[..., None], *args: Any,
        handle: bool = False,
    ) -> Optional[CancelHandle]:
        ...

    def schedule_after(
        self, delay: float, fn: Callable[..., None], *args: Any,
        handle: bool = False,
    ) -> Optional[CancelHandle]:
        ...

    def timer_after(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> CancelHandle:
        ...

    def send(self, dest: int, msg: Any, control: bool = False) -> None:
        ...
