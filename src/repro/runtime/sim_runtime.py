"""The simulated runtime: the protocol trio over the existing DES.

:class:`SimRuntime` is deliberately *not* an adapter layer with its own
logic -- every scheduling and wire method on the instance **is** the
underlying bound method of the engine, transport, or timer-wheel,
assigned once at construction:

* ``rt.schedule``       is ``engine.schedule``
* ``rt.schedule_after`` is ``engine.schedule_after``
* ``rt.timer_after``    is ``timers.schedule_after`` (the wheel)
* ``rt.send``           is ``transport.send`` (the delivery ring)
* ``rt.now``            delegates to ``engine.now``

A call through the runtime therefore executes byte-for-byte the same
code as the pre-seam direct call, in the same order, with the same RNG
stream consumption -- which is how the fixed-seed fingerprint contract
(PRs 1/2/5/6/7) survives the re-layering *by construction* rather than
by re-verification of every call site.  The fingerprint regression in
``tests/test_shard.py`` and the shard-check CI job still verify it
empirically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.net.transport import Transport
    from repro.sim.engine import Engine
    from repro.sim.timerwheel import TimerWheel

__all__ = ["SimRuntime"]


class SimRuntime:
    """Bind the :mod:`repro.runtime.base` trio to DES machinery."""

    __slots__ = (
        "engine",
        "transport",
        "timers",
        "schedule",
        "schedule_after",
        "timer_after",
        "send",
    )

    def __init__(
        self, engine: "Engine", transport: "Transport", timers: "TimerWheel"
    ) -> None:
        self.engine = engine
        self.transport = transport
        self.timers = timers
        # direct method binding: zero indirection on the hot path, and
        # the bit-identity argument above holds trivially
        self.schedule = engine.schedule
        self.schedule_after = engine.schedule_after
        self.timer_after = timers.schedule_after
        self.send = transport.send

    @property
    def now(self) -> float:
        return self.engine.now

    def __repr__(self) -> str:
        return f"SimRuntime(t={self.engine.now:.3f})"
