"""The TerraDir server (peer) model: a layered message pipeline.

``Peer`` is a slim facade composing the pipeline components:
``IngressQueue`` (bounded FIFO + drops), ``SoftStateAbsorber``
(piggyback intake), ``RoutingCore`` (decision + forward), and
``ReplicaStore`` (replica lifecycle).
"""

from repro.server.cache import LRUCache
from repro.server.ingress import IngressQueue
from repro.server.peer import PEER_DISPATCH, Peer
from repro.server.replica_store import Replica, ReplicaStore
from repro.server.routing_core import RoutingCore
from repro.server.softstate import SoftStateAbsorber
from repro.server.state import Relationship, relationship_of, state_kinds

__all__ = [
    "IngressQueue",
    "LRUCache",
    "PEER_DISPATCH",
    "Peer",
    "Relationship",
    "Replica",
    "ReplicaStore",
    "RoutingCore",
    "SoftStateAbsorber",
    "relationship_of",
    "state_kinds",
]
