"""The TerraDir server (peer) model: queueing, state, caching."""

from repro.server.cache import LRUCache
from repro.server.peer import Peer, Replica
from repro.server.state import Relationship, relationship_of, state_kinds

__all__ = [
    "LRUCache",
    "Peer",
    "Relationship",
    "Replica",
    "relationship_of",
    "state_kinds",
]
