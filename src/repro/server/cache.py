"""LRU cache of node maps (paper section 2.4).

A cache entry for a node consists solely of some mapping for that node:
a bounded list of servers believed to host it.  Cache entries lack
routing context -- a hit cannot resolve a query by itself, it only
supplies a shortcut pointer.  Entries are replaced LRU, touched
whenever used in routing, and populated by *path propagation*: every
server along a query's path caches the path walked so far.

When an :class:`~repro.core.nsindex.AncestorIndex` is attached, every
membership/order mutation is mirrored into it, so the routing hot path
can find the closest cached node in O(depth) instead of scanning the
whole cache.  The index mirrors the ``OrderedDict`` order exactly:
inserts append at the back, ``get``/``touch``/merging ``put`` move to
the back, LRU eviction drops the front.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Iterator, Optional, Sequence, Tuple

from repro.core.nsindex import AncestorIndex


class LRUCache:
    """Bounded LRU map from node id to a node map of server ids.

    Entries are stored as ``array('i')`` (bounded, int-only) rather
    than lists of boxed ints; they behave as sequences everywhere they
    are consumed (iteration, ``in``, ``len``, random selection).

    >>> c = LRUCache(capacity=2, rmap=4)
    >>> c.put(1, [10]); c.put(2, [20]); c.put(3, [30])
    >>> c.get(1) is None  # evicted
    True
    """

    __slots__ = ("capacity", "rmap", "_entries", "hits", "misses",
                 "evictions", "index")

    def __init__(
        self,
        capacity: int,
        rmap: int = 4,
        index: Optional[AncestorIndex] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if rmap < 1:
            raise ValueError("rmap must be >= 1")
        self.capacity = capacity
        self.rmap = rmap
        self._entries: "OrderedDict[int, array]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.index = index

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: int) -> bool:
        return node in self._entries

    def nodes(self) -> Iterator[int]:
        """Iterate cached node ids (no LRU touch)."""
        return iter(self._entries.keys())

    def items(self) -> Iterator[Tuple[int, Sequence[int]]]:
        return iter(self._entries.items())

    def peek(self, node: int) -> Optional[Sequence[int]]:
        """Read an entry without touching LRU order or hit counters."""
        return self._entries.get(node)

    def get(self, node: int) -> Optional[Sequence[int]]:
        """Read an entry, marking it most-recently-used."""
        entry = self._entries.get(node)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(node)
        if self.index is not None:
            self.index.touch(node)
        self.hits += 1
        return entry

    def touch(self, node: int) -> None:
        """Mark as most-recently-used (an entry 'used in routing')."""
        if node in self._entries:
            self._entries.move_to_end(node)
            if self.index is not None:
                self.index.touch(node)

    def put(self, node: int, servers: Sequence[int]) -> None:
        """Insert or extend an entry (union, bounded by ``rmap``).

        The merged entry keeps existing servers and appends new ones up
        to ``rmap``; a fresh insert may evict the LRU entry.
        """
        if self.capacity == 0:
            return
        cur = self._entries.get(node)
        if cur is not None:
            for s in servers:
                if s not in cur and len(cur) < self.rmap:
                    cur.append(s)
            self._entries.move_to_end(node)
            if self.index is not None:
                self.index.touch(node)
            return
        entry = array("i")
        for s in servers:
            if s not in entry and len(entry) < self.rmap:
                entry.append(s)
        if not entry:
            return
        if len(self._entries) >= self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if self.index is not None:
                self.index.remove(victim)
        self._entries[node] = entry
        if self.index is not None:
            self.index.add(node)

    def replace(self, node: int, servers: Sequence[int]) -> None:
        """Overwrite an entry's map in place (post-merge/filter update).

        Keeps the entry's LRU position (this is a content update, not a
        use), so the attached index needs no order change either.
        """
        if node in self._entries:
            if servers:
                self._entries[node] = array("i", servers[: self.rmap])
            else:
                del self._entries[node]
                if self.index is not None:
                    self.index.remove(node)

    def remove(self, node: int) -> bool:
        """Drop an entry (e.g. it proved stale); True if present."""
        if self._entries.pop(node, None) is None:
            return False
        if self.index is not None:
            self.index.remove(node)
        return True

    def remove_server(self, node: int, server: int) -> None:
        """Drop one stale server from an entry, dropping the entry if emptied."""
        entry = self._entries.get(node)
        if entry is None:
            return
        try:
            entry.remove(server)
        except ValueError:
            return
        if not entry:
            del self._entries[node]
            if self.index is not None:
                self.index.remove(node)

    def clear(self) -> None:
        self._entries.clear()
        if self.index is not None:
            self.index.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
