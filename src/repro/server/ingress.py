"""Bounded FIFO query intake: the M/M/1/K station of one peer.

The paper's server model is a single service slot fed by a bounded
request queue; queries arriving while the slot is busy and the queue is
full are dropped.  :class:`IngressQueue` owns exactly that state -- the
FIFO, the capacity, the busy flag, and the drop count -- and nothing
else, so the queueing discipline can be audited (and swapped) without
touching routing or replication code.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class IngressQueue:
    """Bounded FIFO request queue with drop accounting.

    Attributes:
        queue: the waiting messages (excludes the one in service).
        capacity: maximum queued messages; arrivals beyond it drop.
        in_service: True while the single service slot is occupied.
        n_drops: queries dropped because the queue was full.
    """

    __slots__ = ("queue", "capacity", "in_service", "n_drops")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.queue: Deque = deque()
        self.capacity = capacity
        self.in_service = False
        self.n_drops = 0

    def offer(self, msg) -> bool:
        """Append ``msg`` unless the queue is full.

        Returns:
            True when the message was queued; False when it was
            dropped (and counted).
        """
        if len(self.queue) >= self.capacity:
            self.n_drops += 1
            return False
        self.queue.append(msg)
        return True

    def pop(self):
        """Dequeue the oldest waiting message (FIFO order)."""
        return self.queue.popleft()

    def clear(self) -> None:
        """Drop all waiting messages without counting them as drops.

        Used by fail-stop recovery: the requests died with the server
        and are accounted as failure losses, not queue drops.
        """
        self.queue.clear()

    def __len__(self) -> int:
        return len(self.queue)

    def __bool__(self) -> bool:
        return len(self.queue) > 0

    def __repr__(self) -> str:
        return (
            f"IngressQueue(depth={len(self.queue)}/{self.capacity}, "
            f"in_service={self.in_service}, drops={self.n_drops})"
        )
