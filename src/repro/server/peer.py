"""The TerraDir server (peer).

A peer owns a set of namespace nodes, may replicate others, and
processes one query at a time from a bounded FIFO request queue
(queries arriving in excess are dropped).  Per processed query it:

1. absorbs piggybacked soft state (load samples, digest snapshots,
   new-replica advertisements, path cache entries),
2. makes one routing decision (:mod:`repro.core.routing`),
3. forwards / resolves the query, piggybacking its own soft state, and
4. checks its load against the high-water threshold, possibly opening a
   replication session (:mod:`repro.core.replication`).

Control traffic (replication probes/transfers/acks, back-propagated
advertisements) and query responses bypass the request queue: they are
rare, tiny, and the paper accounts for them separately.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core import routing
from repro.core.load import BusyWindowLoadMeter
from repro.core.maps import merge_maps
from repro.core.ranking import NodeRanking
from repro.core.replication import ReplicationManager
from repro.filters.digest import Digest, DigestDirectory
from repro.net.message import (
    Advertisement,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)
from repro.namespace.meta import MetaStore, NodeMeta
from repro.server.cache import LRUCache
from repro.sim.rng import exponential


class Replica:
    """Soft state kept for one replicated node.

    Replicas keep the newest meta-data version they have encountered
    (and optionally a meta snapshot); only the owner mutates meta-data.
    """

    __slots__ = ("meta_version", "installed_at", "last_used", "meta")

    def __init__(
        self,
        meta_version: int,
        installed_at: float,
        meta: "NodeMeta" = None,
    ) -> None:
        self.meta_version = meta_version
        self.installed_at = installed_at
        self.last_used = installed_at
        self.meta = meta


class AdvertMessage:
    """Back-propagated new-replica notice (paper section 3.7).

    When s1 forwards a query to s2 on behalf of node v and s1 recently
    created replicas for v, s1 lets s2 know about them -- and vice
    versa: we send it from the *processing* server back to the message
    sender, off the critical path.
    """

    __slots__ = ("node", "servers")

    def __init__(self, node: int, servers: List[int]) -> None:
        self.node = node
        self.servers = servers


class Peer:
    """One TerraDir server in a simulated system."""

    __slots__ = (
        "sid",
        "sys",
        "cfg",
        "ns",
        "rng",
        "owned",
        "replicas",
        "hosted_list",
        "maps",
        "pin_refs",
        "metadata",
        "adverts_recent",
        "cache",
        "digest",
        "digest_dir",
        "known_loads",
        "ranking",
        "meter",
        "queue",
        "in_service",
        "repl",
        "n_processed",
        "n_queue_drops",
        "client_hooks",
        "failed",
        "service_mean",
        "rfact",
    )

    def __init__(self, sid: int, system, owned: Iterable[int]) -> None:
        self.sid = sid
        self.sys = system
        cfg = system.cfg
        self.cfg = cfg
        self.ns = system.ns
        self.rng = system.rng_streams.stream(f"peer-{sid}")
        self.owned = set(owned)
        self.replicas: Dict[int, Replica] = {}
        self.hosted_list: List[int] = list(self.owned)
        self.maps: Dict[int, List[int]] = {}
        self.pin_refs: Dict[int, int] = {}
        self.metadata = MetaStore()
        self.adverts_recent: Dict[int, Deque[int]] = {}
        self.cache = LRUCache(
            cfg.cache_slots if cfg.caching_enabled else 0, rmap=cfg.rmap
        )
        self.digest: Optional[Digest] = None  # wired by the builder
        self.digest_dir: Optional[DigestDirectory] = None
        self.known_loads: Dict[int, Tuple[float, float]] = {}
        self.ranking = NodeRanking(decay=cfg.rank_decay)
        self.meter = BusyWindowLoadMeter(window=cfg.load_window)
        self.queue: Deque[QueryMessage] = deque()
        self.in_service = False
        self.repl = ReplicationManager(self)
        self.n_processed = 0
        self.n_queue_drops = 0
        # client-layer completion callbacks: ("lookup", qid) / ("data", rid)
        self.client_hooks: Dict[Tuple[str, int], object] = {}
        self.failed = False
        self.service_mean = cfg.service_mean  # builder may slow this peer
        # "The replication factor need not be the same for all servers"
        # (paper section 3.4): per-peer override, defaulting to config
        self.rfact = cfg.rfact

    # ------------------------------------------------------------------
    # hosting state
    # ------------------------------------------------------------------

    def hosts(self, node: int) -> bool:
        """True if this server owns or replicates ``node``."""
        return node in self.owned or node in self.replicas

    def iter_hosted(self) -> Iterator[int]:
        """All hosted node ids (owned first, then replicas)."""
        return iter(self.hosted_list)

    @property
    def n_hosted(self) -> int:
        return len(self.owned) + len(self.replicas)

    def pin(self, node: int, servers: Iterable[int]) -> None:
        """Pin a neighbor map (routing context of a hosted node)."""
        self.pin_refs[node] = self.pin_refs.get(node, 0) + 1
        cur = self.maps.get(node)
        if cur is None:
            entry: List[int] = []
            for s in servers:
                if s not in entry and len(entry) < self.cfg.rmap:
                    entry.append(s)
            self.maps[node] = entry
        else:
            for s in servers:
                if s not in cur and len(cur) < self.cfg.rmap:
                    cur.append(s)

    def unpin(self, node: int) -> None:
        """Release one pin; the map demotes to a cache entry at zero refs.

        Hosted nodes keep their map unconditionally: a node can be both
        hosted and a (pinned) neighbor of another hosted node, and
        losing the last pin must never strip hosted state.
        """
        refs = self.pin_refs.get(node, 0) - 1
        if refs > 0:
            self.pin_refs[node] = refs
            return
        self.pin_refs.pop(node, None)
        if self.hosts(node):
            return
        entry = self.maps.pop(node, None)
        if entry and self.cfg.caching_enabled:
            self.cache.put(node, entry)

    def adopt_node(self, node: int) -> None:
        """Take ownership of ``node`` (builder wiring / membership API)."""
        self.owned.add(node)
        self.hosted_list.append(node)
        self.ranking.track(node)
        self.metadata.meta(node)  # ensure a meta record exists
        entry = self.maps.setdefault(node, [])
        if self.sid not in entry:
            entry.insert(0, self.sid)
        if self.digest is not None:
            self.digest.add(node)

    def bump_meta(self, node: int) -> int:
        """Owner-only meta-data version bump; replicas converge lazily."""
        if node not in self.owned:
            raise KeyError(f"server {self.sid} does not own node {node}")
        meta = self.metadata.meta(node)
        meta.version += 1
        return meta.version

    def meta_version_of(self, node: int) -> int:
        """Newest meta-data version this server knows for ``node``."""
        if node in self.owned:
            return self.metadata.meta(node).version
        rep = self.replicas.get(node)
        return rep.meta_version if rep is not None else 0

    # ------------------------------------------------------------------
    # replica lifecycle
    # ------------------------------------------------------------------

    def install_replica(self, payload: ReplicaPayload, now: float) -> None:
        """Install a replica with full routing context (paper section 2.3)."""
        node = payload.node
        self.replicas[node] = Replica(payload.meta_version, now,
                                      meta=payload.meta)
        self.hosted_list.append(node)
        self.ranking.track(node)
        entry = self.maps.get(node)
        merged = merge_maps(
            entry or [], payload.node_map, self.cfg.rmap, self.rng,
            advertised=(self.sid,),
        )
        self.maps[node] = merged
        self.pin_refs[node] = self.pin_refs.get(node, 0) + 1
        for nbr, nbr_map in payload.context.items():
            self.pin(nbr, nbr_map)
        # drop any stale cache entry now superseded by hosted state
        self.cache.remove(node)
        if self.digest is not None:
            self.digest.add(node)

    def evict_replica(self, node: int, now: float) -> None:
        """Locally delete a replica; other servers learn lazily."""
        rep = self.replicas.pop(node, None)
        if rep is None:
            return
        self.hosted_list.remove(node)
        self.ranking.forget(node)
        for nbr in self.ns.neighbors(node):
            self.unpin(nbr)
        refs = self.pin_refs.pop(node, 0) - 1
        entry = self.maps.pop(node, None)
        if refs > 0:
            # the node is also a pinned neighbor of another hosted node
            self.pin_refs[node] = refs
            if entry is not None:
                self.maps[node] = [s for s in entry if s != self.sid]
        elif entry and self.cfg.caching_enabled:
            self.cache.put(node, [s for s in entry if s != self.sid])
        if self.digest is not None:
            self.digest.rebuild(self.iter_hosted())
        self.sys.stats.record_replica_evicted(now, self.ns.depth[node])

    def build_replica_payload(self, node: int) -> Optional[ReplicaPayload]:
        """Snapshot everything a target needs to host ``node``."""
        if not self.hosts(node):
            return None
        node_map = list(self.maps.get(node, ()))
        if self.sid not in node_map:
            node_map.insert(0, self.sid)
        context: Dict[int, List[int]] = {}
        for nbr in self.ns.neighbors(node):
            context[nbr] = list(self.maps.get(nbr, ()))
        if node in self.owned:
            meta = self.metadata.meta(node)
            version, snapshot = meta.version, meta.snapshot()
        else:
            rep = self.replicas[node]
            version = rep.meta_version
            snapshot = rep.meta.snapshot() if rep.meta is not None else None
        return ReplicaPayload(node, version, node_map, context, meta=snapshot)

    def note_replica_created(self, node: int, target: int, now: float) -> None:
        """Source-side bookkeeping after a target confirmed installation."""
        dq = self.adverts_recent.get(node)
        if dq is None:
            dq = deque(maxlen=self.cfg.rmap)
            self.adverts_recent[node] = dq
        if target in dq:
            dq.remove(target)
        dq.appendleft(target)
        entry = self.maps.get(node)
        if entry is not None:
            if target in entry:
                entry.remove(target)
            if len(entry) >= self.cfg.rmap:
                # random eviction, but never of our own entry
                candidates = [i for i, s in enumerate(entry) if s != self.sid]
                if candidates:
                    entry.pop(self.rng.choice(candidates))
            entry.insert(0, target)
        self.sys.stats.record_replica_created(now, self.ns.depth[node])

    # ------------------------------------------------------------------
    # map management
    # ------------------------------------------------------------------

    def merge_map(self, node: int, incoming: Iterable[int]) -> None:
        """Merge an incoming map into whatever we keep for ``node``.

        Applies digest-based map filtering (paper section 3.6.2): known
        digests that answer "no" for ``node`` veto their server's entry.
        """
        incoming = self._filter_servers(node, incoming)
        if not incoming:
            return
        advertised = tuple(self.adverts_recent.get(node, ()))
        entry = self.maps.get(node)
        if entry is not None:
            keep: List[int] = []
            if self.hosts(node) and self.sid in entry:
                keep.append(self.sid)
            self.maps[node] = merge_maps(
                entry, incoming, self.cfg.rmap, self.rng,
                advertised=tuple(keep) + advertised,
            )
            return
        if self.cfg.caching_enabled:
            cached = self.cache.peek(node)
            if cached is not None:
                self.cache.replace(
                    node,
                    merge_maps(
                        cached, incoming, self.cfg.rmap, self.rng,
                        advertised=advertised,
                    ),
                )

    def _filter_servers(self, node: int, servers: Iterable[int]) -> List[int]:
        """Digest map filtering: drop entries whose digest denies ``node``.

        With ``cfg.oracle_maps`` the filter consults ground truth
        instead -- the paper's section 4.4 "oracle" comparison point.
        """
        if self.cfg.oracle_maps:
            peers = self.sys.peers
            return [s for s in servers if peers[s].hosts(node)]
        ddir = self.digest_dir
        if ddir is None or not self.cfg.digests_enabled:
            return [s for s in servers]
        out = []
        for s in servers:
            if s != self.sid and ddir.test(s, node) is False:
                continue
            out.append(s)
        return out

    # ------------------------------------------------------------------
    # message delivery (transport entry point)
    # ------------------------------------------------------------------

    def deliver(self, msg) -> None:
        """Transport hands every inbound message here."""
        if self.failed:
            return  # fail-stop: inbound traffic is lost
        kind = msg.__class__
        if kind is QueryMessage:
            self._enqueue_query(msg)
        elif kind is ResponseMessage:
            self._on_response(msg)
        elif kind is ProbeMessage:
            self.repl.on_probe(msg, self.sys.engine.now)
        elif kind is ProbeReplyMessage:
            self.repl.on_probe_reply(msg, self.sys.engine.now)
        elif kind is TransferMessage:
            self.repl.on_transfer(msg, self.sys.engine.now)
        elif kind is TransferAckMessage:
            self.repl.on_ack(msg, self.sys.engine.now)
        elif kind is AdvertMessage:
            self._absorb_advert(msg.node, msg.servers)
        elif kind is DataRequest:
            self._on_data_request(msg)
        elif kind is DataReply:
            hook = self.client_hooks.pop(("data", msg.rid), None)
            if hook is not None:
                hook(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unhandled message type {kind.__name__}")

    def send_control(self, dest: int, msg) -> None:
        self.sys.transport.send(dest, msg, control=True)

    # ------------------------------------------------------------------
    # query queueing and service
    # ------------------------------------------------------------------

    def inject(self, dest: int, qid: int) -> None:
        """A client initiates a lookup for ``dest`` at this server."""
        now = self.sys.engine.now
        self.sys.stats.record_injected(now)
        msg = QueryMessage(qid, dest, self.sid, now)
        msg.via = -1
        self._enqueue_query(msg)

    def _enqueue_query(self, msg: QueryMessage) -> None:
        if not self.in_service:
            self._start_service(msg)
            return
        if len(self.queue) >= self.cfg.queue_size:
            self.n_queue_drops += 1
            self.sys.stats.record_drop(self.sys.engine.now, reason="queue")
            return
        self.queue.append(msg)

    def _start_service(self, msg: QueryMessage) -> None:
        self.in_service = True
        now = self.sys.engine.now
        self.meter.service_started(now)
        svc = exponential(self.rng, self.service_mean)
        self.sys.engine.schedule(now + svc, self._finish_service, msg)

    def _finish_service(self, msg: QueryMessage) -> None:
        if self.failed or not self.in_service:
            return  # server died mid-service; the request dies with it
        now = self.sys.engine.now
        self.meter.service_finished(now)
        self.n_processed += 1
        self._process_query(msg)
        self.repl.maybe_trigger(now)
        self.in_service = False
        if self.queue:
            self._start_service(self.queue.popleft())

    # ------------------------------------------------------------------
    # query processing
    # ------------------------------------------------------------------

    def _process_query(self, m: QueryMessage) -> None:
        now = self.sys.engine.now
        sid = self.sid
        stats = self.sys.stats

        # -- absorb piggybacked soft state --------------------------------
        if m.sender != sid:
            self.known_loads[m.sender] = (m.sender_load, now)
            if m.sender_digest is not None and self.digest_dir is not None:
                self.digest_dir.observe(m.sender, m.sender_digest)
        for adv in m.adverts:
            self._absorb_advert(adv.node, (adv.server,))
        if self.cfg.caching_enabled and self.cfg.path_propagation:
            cache_put = self.cache.put
            hosts = self.hosts
            for node, server in m.path:
                if server != sid and not hosts(node):
                    cache_put(node, (server,))

        # -- attribution of routing work (node ranking, section 3.2) ------
        via = m.via
        if via >= 0:
            if self.hosts(via):
                self.ranking.hit(via)
                rep = self.replicas.get(via)
                if rep is not None:
                    rep.last_used = now
            else:
                m.stale_hops += 1
                stats.record_stale_hop(now)

        # -- merge the in-flight destination map into kept state ----------
        if m.dest_map:
            self.merge_map(m.dest, m.dest_map)

        # -- route ---------------------------------------------------------
        decision = routing.decide(self, m.dest)
        if decision.action is routing.RouteAction.RESOLVED:
            self._resolve(m, now)
            return
        if decision.action is routing.RouteAction.FAIL:
            stats.record_drop(now, reason="routing")
            return
        m.hops += 1
        if m.hops > self.cfg.max_hops:
            stats.record_drop(now, reason="ttl")
            return
        stats.record_forward(decision.source)

        # back-propagate fresh replica info for the node we served
        if (
            self.cfg.advertisement_enabled
            and via >= 0
            and m.sender != sid
            and self.adverts_recent.get(via)
        ):
            self.send_control(
                m.sender, AdvertMessage(via, list(self.adverts_recent[via]))
            )

        # -- piggyback and forward -----------------------------------------
        if via >= 0 and self.hosts(via):
            m.path.append((via, sid))
        m.via = decision.via
        m.sender = sid
        m.sender_load = self.meter.load()
        if self.cfg.digests_enabled and self.digest is not None:
            m.sender_digest = self.digest.snapshot()
        if self.cfg.advertisement_enabled:
            adv_out: List[Advertisement] = []
            for node in (decision.via, m.dest):
                dq = self.adverts_recent.get(node)
                if dq:
                    adv_out.extend(Advertisement(node, s) for s in dq)
            m.adverts = adv_out
        else:
            m.adverts = []
        local_map = self.maps.get(m.dest) or self.cache.peek(m.dest) or ()
        advertised = tuple(self.adverts_recent.get(m.dest, ()))
        m.dest_map = merge_maps(
            local_map, m.dest_map, self.cfg.rmap, self.rng, advertised=advertised
        )
        self.sys.transport.send(decision.next_server, m)

    def _resolve(self, m: QueryMessage, now: float) -> None:
        """The query reached a host of its destination: lookup complete."""
        self.ranking.hit(m.dest)
        rep = self.replicas.get(m.dest)
        if rep is not None:
            rep.last_used = now
        m.path.append((m.dest, self.sid))
        entry = list(self.maps.get(m.dest, ()))
        if self.sid not in entry:
            entry.insert(0, self.sid)
        resp = ResponseMessage(
            m, resolver=self.sid, dest_map=entry,
            meta_version=self.meta_version_of(m.dest),
        )
        resp.sender_load = self.meter.load()
        if self.cfg.digests_enabled and self.digest is not None:
            resp.sender_digest = self.digest.snapshot()
        if m.origin == self.sid:
            self._on_response(resp)
        else:
            # responses return directly to the origin, bypassing queues
            self.sys.transport.send(m.origin, resp)

    def _on_response(self, r: ResponseMessage) -> None:
        now = self.sys.engine.now
        if r.resolver != self.sid:
            self.known_loads[r.resolver] = (r.sender_load, now)
            if r.sender_digest is not None and self.digest_dir is not None:
                self.digest_dir.observe(r.resolver, r.sender_digest)
        if self.cfg.caching_enabled:
            if not self.hosts(r.dest):
                self.cache.put(
                    r.dest, self._filter_servers(r.dest, r.dest_map)
                )
            if self.cfg.path_propagation:
                for node, server in r.path:
                    if server != self.sid and not self.hosts(node):
                        self.cache.put(node, (server,))
        latency = now - r.created_at
        self.sys.stats.record_completion(now, latency, r.hops, r.stale_hops)
        hook = self.client_hooks.pop(("lookup", r.qid), None)
        if hook is not None:
            hook(r)

    def _on_data_request(self, req: DataRequest) -> None:
        """Second-step retrieval (paper section 2.1): serve data/meta if
        we own the node, else redirect with our map for it."""
        reply = DataReply(req.rid, req.node, self.sid)
        if req.node in self.owned:
            if req.want_meta:
                reply.meta = self.metadata.meta(req.node).snapshot()
            else:
                reply.data = self.metadata.get_data(req.node)
                reply.meta = self.metadata.meta(req.node).snapshot()
        else:
            entry = self.maps.get(req.node) or (
                self.cache.peek(req.node) if self.cache is not None else None
            )
            reply.redirect_map = [s for s in (entry or []) if s != self.sid]
        self.sys.transport.send(req.origin, reply)

    def _absorb_advert(self, node: int, servers: Iterable[int]) -> None:
        """Fold advertised new replicas into kept maps, preferred."""
        entry = self.maps.get(node)
        if entry is not None:
            for s in servers:
                if s in entry:
                    continue
                if len(entry) >= self.cfg.rmap:
                    idx = [i for i, e in enumerate(entry) if e != self.sid]
                    if not idx:
                        continue
                    entry.pop(self.rng.choice(idx))
                entry.insert(0, s)
            return
        if self.cfg.caching_enabled and node in self.cache:
            self.cache.put(node, list(servers))

    # ------------------------------------------------------------------
    # periodic maintenance (driven by the system)
    # ------------------------------------------------------------------

    def roll_window(self, now: float) -> float:
        """Close the current load window; returns the window's busy fraction."""
        return self.meter.roll(now)

    def rescale_ranking(self) -> None:
        self.ranking.rescale()

    def evict_idle_replicas(self, now: float) -> int:
        """Timed eviction of long-unused replicas (section 3.5)."""
        timeout = self.cfg.replica_idle_timeout
        if timeout <= 0:
            return 0
        victims = [
            v for v, rep in self.replicas.items()
            if now - rep.last_used > timeout
        ]
        for v in victims:
            self.evict_replica(v, now)
        return len(victims)

    def __repr__(self) -> str:
        return (
            f"Peer(sid={self.sid}, owned={len(self.owned)}, "
            f"replicas={len(self.replicas)}, load={self.meter.measured():.2f})"
        )
