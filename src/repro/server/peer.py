"""The TerraDir server (peer): a facade over the message pipeline.

A peer owns a set of namespace nodes, may replicate others, and
processes one query at a time from a bounded FIFO request queue
(queries arriving in excess are dropped).  The work is layered into
focused components, composed here:

* :class:`~repro.server.ingress.IngressQueue` -- the bounded FIFO and
  its drop accounting (the M/M/1/K station);
* :class:`~repro.server.softstate.SoftStateAbsorber` -- intake of
  piggybacked soft state (load samples, digest snapshots, new-replica
  advertisements, path cache entries);
* :class:`~repro.server.routing_core.RoutingCore` -- one routing
  decision per processed query, forward/resolve with piggybacking;
* :class:`~repro.server.replica_store.ReplicaStore` -- replica
  lifecycle (install/evict/payloads) and source-side advertisement
  bookkeeping;
* :class:`~repro.core.replication.ReplicationManager` -- the adaptive
  replication protocol sessions.

Inbound messages route through a typed dispatch registry
(:class:`~repro.net.dispatch.DispatchRegistry`) instead of an
``isinstance`` chain; control traffic (replication probes/transfers/
acks, back-propagated advertisements) and query responses bypass the
request queue: they are rare, tiny, and the paper accounts for them
separately.

The facade preserves the original ``Peer`` surface: shared routing
state (maps, pins, cache, digests, ranking, metadata) lives here, and
component-owned state (queue, replicas, known loads) is re-exposed as
properties.
"""

from __future__ import annotations

from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.load import BusyWindowLoadMeter
from repro.core.maps import merge_maps
from repro.core.nsindex import AncestorIndex
from repro.core.ranking import NodeRanking
from repro.core.replication import ReplicationManager
from repro.filters.digest import Digest, DigestDirectory
from repro.net.dispatch import DispatchRegistry, UnknownMessageError
from repro.net.message import (
    AdvertMessage,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)
from repro.namespace.meta import MetaStore
from repro.server.cache import LRUCache
from repro.server.ingress import IngressQueue
from repro.server.replica_store import Replica, ReplicaStore
from repro.server.routing_core import RoutingCore
from repro.server.softstate import SoftStateAbsorber
from repro.sim.rng import exponential

__all__ = [
    "AdvertMessage",  # moved to repro.net.message; re-exported for compat
    "PEER_DISPATCH",
    "Peer",
    "Replica",
]


#: The default message-type -> handler registry for :class:`Peer`.
#: Handlers are attribute names, so subclasses override a handler by
#: overriding the method; alternative endpoints may also register
#: replacements (last registration wins) before peers are built.
PEER_DISPATCH = DispatchRegistry("peer")
PEER_DISPATCH.register(QueryMessage, "_on_query")
PEER_DISPATCH.register(ResponseMessage, "_on_response")
PEER_DISPATCH.register(ProbeMessage, "_on_probe")
PEER_DISPATCH.register(ProbeReplyMessage, "_on_probe_reply")
PEER_DISPATCH.register(TransferMessage, "_on_transfer")
PEER_DISPATCH.register(TransferAckMessage, "_on_transfer_ack")
PEER_DISPATCH.register(AdvertMessage, "_on_advert")
PEER_DISPATCH.register(DataRequest, "_on_data_request")
PEER_DISPATCH.register(DataReply, "_on_data_reply")


class Peer:
    """One TerraDir server in a simulated system."""

    __slots__ = (
        "sid",
        "sys",
        "rt",
        "cfg",
        "ns",
        "rng",
        "stats",
        "owned",
        "maps",
        "pin_refs",
        "metadata",
        "cache",
        "digest",
        "digest_dir",
        "ranking",
        "meter",
        "ingress",
        "absorber",
        "router",
        "store",
        "repl",
        "n_processed",
        "client_hooks",
        "failed",
        "service_mean",
        "rfact",
        "_handlers",
        "_record_injected",
        "_record_drop",
    )

    #: the dispatch registry bound per instance; class attribute so
    #: subclasses can substitute a different registry wholesale.
    dispatch_registry = PEER_DISPATCH

    def __init__(self, sid: int, system, owned: Iterable[int]) -> None:
        self.sid = sid
        self.sys = system
        # the runtime seam: every clock read, callback, and send below
        # goes through this handle, so the same peer runs under the
        # simulator (SimRuntime) or a live event loop (AsyncRuntime)
        self.rt = system.runtime
        cfg = system.cfg
        self.cfg = cfg
        self.ns = system.ns
        self.rng = system.rng_streams.stream(f"peer-{sid}")
        self.stats = system.stats
        # sink hooks for the per-query fast path, bound once: swapping
        # sinks is a construction-time decision, and one cached callable
        # per recording beats an attribute chain per processed event
        self._record_injected = self.stats.record_injected
        self._record_drop = self.stats.record_drop
        self.owned = set(owned)
        self.maps: Dict[int, List[int]] = {}
        self.pin_refs: Dict[int, int] = {}
        self.metadata = MetaStore()
        # the cache carries an ancestor index mirroring its LRU order,
        # so routing's closest-cached query is O(depth), not O(|cache|)
        self.cache = LRUCache(
            cfg.cache_slots if cfg.caching_enabled else 0, rmap=cfg.rmap,
            index=AncestorIndex(system.ns),
        )
        self.digest: Optional[Digest] = None  # wired by the builder
        self.digest_dir: Optional[DigestDirectory] = None
        self.ranking = NodeRanking(decay=cfg.rank_decay)
        self.meter = BusyWindowLoadMeter(window=cfg.load_window)
        # pipeline components
        self.ingress = IngressQueue(cfg.queue_size)
        self.absorber = SoftStateAbsorber(self)
        self.router = RoutingCore(self)
        self.store = ReplicaStore(self)
        self.repl = ReplicationManager(self)
        self.n_processed = 0
        # client-layer completion callbacks: ("lookup", qid) / ("data", rid)
        self.client_hooks: Dict[Tuple[str, int], object] = {}
        self.failed = False
        self.service_mean = cfg.service_mean  # builder may slow this peer
        # "The replication factor need not be the same for all servers"
        # (paper section 3.4): per-peer override, defaulting to config
        self.rfact = cfg.rfact
        self._handlers = self.dispatch_registry.bind(self)

    # ------------------------------------------------------------------
    # component-owned state, re-exposed (public API compatibility)
    # ------------------------------------------------------------------

    @property
    def queue(self) -> Deque[QueryMessage]:
        """The waiting requests (the ingress FIFO, live view)."""
        return self.ingress.queue

    @property
    def n_queue_drops(self) -> int:
        return self.ingress.n_drops

    @property
    def in_service(self) -> bool:
        return self.ingress.in_service

    @in_service.setter
    def in_service(self, value: bool) -> None:
        self.ingress.in_service = value

    @property
    def replicas(self) -> Dict[int, Replica]:
        return self.store.replicas

    @property
    def hosted_list(self) -> List[int]:
        """Hosted node ids, owned first then replicas (live view).

        Treat as read-only: membership changes must go through the
        store (``adopt_node`` / ``install_replica`` / ``evict_replica``
        / ``store.untrack_owned``) so its ancestor index stays in sync.
        """
        return self.store.hosted_list

    @property
    def adverts_recent(self) -> Dict[int, Deque[int]]:
        return self.store.adverts_recent

    @property
    def known_loads(self) -> Dict[int, Tuple[float, float]]:
        return self.absorber.known_loads

    # ------------------------------------------------------------------
    # hosting state
    # ------------------------------------------------------------------

    def hosts(self, node: int) -> bool:
        """True if this server owns or replicates ``node``."""
        return node in self.owned or node in self.store.replicas

    def iter_hosted(self) -> Iterator[int]:
        """All hosted node ids (owned first, then replicas)."""
        return self.store.iter_hosted()

    @property
    def n_hosted(self) -> int:
        return len(self.owned) + len(self.store.replicas)

    def pin(self, node: int, servers: Iterable[int]) -> None:
        """Pin a neighbor map (routing context of a hosted node)."""
        self.pin_refs[node] = self.pin_refs.get(node, 0) + 1
        cur = self.maps.get(node)
        if cur is None:
            entry: List[int] = []
            for s in servers:
                if s not in entry and len(entry) < self.cfg.rmap:
                    entry.append(s)
            self.maps[node] = entry
        else:
            for s in servers:
                if s not in cur and len(cur) < self.cfg.rmap:
                    cur.append(s)

    def unpin(self, node: int) -> None:
        """Release one pin; the map demotes to a cache entry at zero refs.

        Hosted nodes keep their map unconditionally: a node can be both
        hosted and a (pinned) neighbor of another hosted node, and
        losing the last pin must never strip hosted state.
        """
        refs = self.pin_refs.get(node, 0) - 1
        if refs > 0:
            self.pin_refs[node] = refs
            return
        self.pin_refs.pop(node, None)
        if self.hosts(node):
            return
        entry = self.maps.pop(node, None)
        if entry and self.cfg.caching_enabled:
            self.cache.put(node, entry)

    def adopt_node(self, node: int) -> None:
        """Take ownership of ``node`` (builder wiring / membership API)."""
        self.owned.add(node)
        self.store.track_owned(node)
        self.ranking.track(node)
        # the meta record is created on first access (version 0 either
        # way): nothing is materialised for the common never-written node
        entry = self.maps.setdefault(node, [])
        if self.sid not in entry:
            entry.insert(0, self.sid)
        if self.digest is not None:
            self.digest.add(node)

    def bump_meta(self, node: int) -> int:
        """Owner-only meta-data version bump; replicas converge lazily."""
        if node not in self.owned:
            raise KeyError(f"server {self.sid} does not own node {node}")
        meta = self.metadata.meta(node)
        meta.version += 1
        return meta.version

    def meta_version_of(self, node: int) -> int:
        """Newest meta-data version this server knows for ``node``."""
        if node in self.owned:
            return self.metadata.meta(node).version
        rep = self.store.replicas.get(node)
        return rep.meta_version if rep is not None else 0

    # ------------------------------------------------------------------
    # replica lifecycle (delegated to the store)
    # ------------------------------------------------------------------

    def install_replica(self, payload: ReplicaPayload, now: float) -> None:
        """Install a replica with full routing context (paper section 2.3)."""
        self.store.install(payload, now)

    def evict_replica(self, node: int, now: float) -> None:
        """Locally delete a replica; other servers learn lazily."""
        self.store.evict(node, now)

    def build_replica_payload(self, node: int) -> Optional[ReplicaPayload]:
        """Snapshot everything a target needs to host ``node``."""
        return self.store.build_payload(node)

    def note_replica_created(self, node: int, target: int, now: float) -> None:
        """Source-side bookkeeping after a target confirmed installation."""
        self.store.note_created(node, target, now)

    def evict_idle_replicas(self, now: float) -> int:
        """Timed eviction of long-unused replicas (section 3.5)."""
        return self.store.evict_idle(now)

    # ------------------------------------------------------------------
    # map management
    # ------------------------------------------------------------------

    def merge_map(self, node: int, incoming: Iterable[int]) -> None:
        """Merge an incoming map into whatever we keep for ``node``.

        Applies digest-based map filtering (paper section 3.6.2): known
        digests that answer "no" for ``node`` veto their server's entry.
        """
        incoming = self._filter_servers(node, incoming)
        if not incoming:
            return
        advertised = tuple(self.store.adverts_recent.get(node, ()))
        entry = self.maps.get(node)
        if entry is not None:
            keep: List[int] = []
            if self.hosts(node) and self.sid in entry:
                keep.append(self.sid)
            self.maps[node] = merge_maps(
                entry, incoming, self.cfg.rmap, self.rng,
                advertised=tuple(keep) + advertised,
            )
            return
        if self.cfg.caching_enabled:
            cached = self.cache.peek(node)
            if cached is not None:
                self.cache.replace(
                    node,
                    merge_maps(
                        cached, incoming, self.cfg.rmap, self.rng,
                        advertised=advertised,
                    ),
                )

    def _filter_servers(self, node: int, servers: Iterable[int]) -> List[int]:
        """Digest map filtering: drop entries whose digest denies ``node``.

        With ``cfg.oracle_maps`` the filter consults ground truth
        instead -- the paper's section 4.4 "oracle" comparison point.
        """
        if self.cfg.oracle_maps:
            peers = self.sys.peers
            return [s for s in servers if peers[s].hosts(node)]
        ddir = self.digest_dir
        if ddir is None or not self.cfg.digests_enabled:
            return [s for s in servers]
        out = []
        for s in servers:
            if s != self.sid and ddir.test(s, node) is False:
                continue
            out.append(s)
        return out

    # ------------------------------------------------------------------
    # message delivery (transport entry point)
    # ------------------------------------------------------------------

    def deliver(self, msg) -> None:
        """Transport hands every inbound message here.

        Routing is a bound-handler dict probe (snapshot of
        :data:`PEER_DISPATCH` taken at construction); an unregistered
        message type raises :class:`UnknownMessageError`.
        """
        if self.failed:
            return  # fail-stop: inbound traffic is lost
        handler = self._handlers.get(msg.__class__)
        if handler is None:
            raise UnknownMessageError(
                f"peer {self.sid}: no handler registered for message type "
                f"{msg.__class__.__name__}"
            )
        handler(msg)

    def send_control(self, dest: int, msg) -> None:
        self.rt.send(dest, msg, control=True)

    # -- dispatch handlers (registered in PEER_DISPATCH) ----------------

    def _on_query(self, msg: QueryMessage) -> None:
        self._enqueue_query(msg)

    def _on_response(self, msg: ResponseMessage) -> None:
        self.router.on_response(msg)

    def _on_probe(self, msg: ProbeMessage) -> None:
        self.repl.on_probe(msg, self.rt.now)

    def _on_probe_reply(self, msg: ProbeReplyMessage) -> None:
        self.repl.on_probe_reply(msg, self.rt.now)

    def _on_transfer(self, msg: TransferMessage) -> None:
        self.repl.on_transfer(msg, self.rt.now)

    def _on_transfer_ack(self, msg: TransferAckMessage) -> None:
        self.repl.on_ack(msg, self.rt.now)

    def _on_advert(self, msg: AdvertMessage) -> None:
        self.absorber.absorb_advert(msg.node, msg.servers)

    def _on_data_request(self, msg: DataRequest) -> None:
        self.router.on_data_request(msg)

    def _on_data_reply(self, msg: DataReply) -> None:
        hook = self.client_hooks.pop(("data", msg.rid), None)
        if hook is not None:
            hook(msg)

    # ------------------------------------------------------------------
    # query queueing and service
    # ------------------------------------------------------------------

    def inject(self, dest: int, qid: int) -> None:
        """A client initiates a lookup for ``dest`` at this server."""
        now = self.rt.now
        self._record_injected(now)
        msg = QueryMessage(qid, dest, self.sid, now)
        msg.via = -1
        self._enqueue_query(msg)

    def _enqueue_query(self, msg: QueryMessage) -> None:
        ingress = self.ingress
        if not ingress.in_service:
            self._start_service(msg)
            return
        if not ingress.offer(msg):
            self._record_drop(self.rt.now, reason="queue")

    def _start_service(self, msg: QueryMessage) -> None:
        self.ingress.in_service = True
        rt = self.rt
        now = rt.now
        self.meter.service_started(now)
        svc = exponential(self.rng, self.service_mean)
        rt.schedule(now + svc, self._finish_service, msg)

    def _finish_service(self, msg: QueryMessage) -> None:
        ingress = self.ingress
        if self.failed or not ingress.in_service:
            return  # server died mid-service; the request dies with it
        now = self.rt.now
        self.meter.service_finished(now)
        self.n_processed += 1
        self.router.process(msg)
        self.repl.maybe_trigger(now)
        ingress.in_service = False
        if ingress.queue:
            self._start_service(ingress.pop())

    # ------------------------------------------------------------------
    # periodic maintenance (driven by the system)
    # ------------------------------------------------------------------

    def roll_window(self, now: float) -> float:
        """Close the current load window; returns the window's busy fraction."""
        return self.meter.roll(now)

    def rescale_ranking(self) -> None:
        self.ranking.rescale()

    def __repr__(self) -> str:
        return (
            f"Peer(sid={self.sid}, owned={len(self.owned)}, "
            f"replicas={len(self.store.replicas)}, "
            f"load={self.meter.measured():.2f})"
        )
