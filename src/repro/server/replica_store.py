"""Replica lifecycle for one peer: install, evict, snapshot, advertise.

Owns the replica table, the hosted-node list (owned first, then
replicas -- the candidate order of the routing tie-break), the
ancestor index mirroring that list for O(depth) closest-hosted
queries, and the per-node record of recently created replicas used
for advertisement piggybacking.  Shared peer state (maps, pins, cache,
digest, ranking) is reached through the composing
:class:`~repro.server.peer.Peer`, which remains the single owner of
that state.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional

from repro.core.maps import merge_maps
from repro.core.nsindex import AncestorIndex
from repro.namespace.meta import NodeMeta
from repro.net.message import ReplicaPayload


def advert_push(
    adverts: Dict[int, array], node: int, target: int, rmap: int
) -> None:
    """MRU-push ``target`` onto ``node``'s bounded advert list.

    Replaces the old per-node ``deque(maxlen=rmap)`` with an
    ``array('i')`` holding the same sequence: most recent first,
    duplicates moved to the front, trimmed to ``rmap`` from the back.
    """
    lst = adverts.get(node)
    if lst is None:
        lst = array("i")
        adverts[node] = lst
    elif target in lst:
        lst.remove(target)
    lst.insert(0, target)
    del lst[rmap:]


class Replica:
    """Soft state kept for one replicated node.

    Replicas keep the newest meta-data version they have encountered
    (and optionally a meta snapshot); only the owner mutates meta-data.
    """

    __slots__ = ("meta_version", "installed_at", "last_used", "meta")

    def __init__(
        self,
        meta_version: int,
        installed_at: float,
        meta: NodeMeta = None,
    ) -> None:
        self.meta_version = meta_version
        self.installed_at = installed_at
        self.last_used = installed_at
        self.meta = meta


class ReplicaStore:
    """Replica lifecycle and source-side replication bookkeeping."""

    __slots__ = ("peer", "replicas", "hosted_list", "adverts_recent", "index")

    def __init__(self, peer) -> None:
        self.peer = peer
        self.replicas: Dict[int, Replica] = {}
        self.hosted_list: List[int] = list(peer.owned)
        self.adverts_recent: Dict[int, array] = {}
        # ancestor index over the hosted list, kept in lock-step with it
        # (same membership, seq order == list order) so routing finds
        # the closest hosted node in O(depth) instead of a full scan
        self.index = AncestorIndex(peer.ns, self.hosted_list)

    # ------------------------------------------------------------------
    # hosting state
    # ------------------------------------------------------------------

    def iter_hosted(self) -> Iterator[int]:
        """All hosted node ids (owned first, then replicas)."""
        return iter(self.hosted_list)

    def track_owned(self, node: int) -> None:
        """Record a newly adopted owned node in the hosted list."""
        self.hosted_list.append(node)
        self.index.add(node)

    def untrack_owned(self, node: int) -> None:
        """Drop an owned node from the hosted list (ownership transfer).

        The counterpart of :meth:`track_owned`; replica hosting ends via
        :meth:`evict`.  All hosted-list membership changes must go
        through the store so the ancestor index stays in sync.
        """
        self.hosted_list.remove(node)
        self.index.remove(node)

    def touch(self, node: int, now: float) -> None:
        """Refresh a replica's last-used time (if one exists)."""
        rep = self.replicas.get(node)
        if rep is not None:
            rep.last_used = now

    # ------------------------------------------------------------------
    # install / evict
    # ------------------------------------------------------------------

    def install(self, payload: ReplicaPayload, now: float) -> None:
        """Install a replica with full routing context (paper section 2.3)."""
        peer = self.peer
        node = payload.node
        self.replicas[node] = Replica(payload.meta_version, now,
                                      meta=payload.meta)
        self.hosted_list.append(node)
        self.index.add(node)
        peer.ranking.track(node)
        entry = peer.maps.get(node)
        merged = merge_maps(
            entry if entry is not None else [],
            payload.node_map, peer.cfg.rmap, peer.rng,
            advertised=(peer.sid,),
        )
        peer.maps[node] = merged
        peer.pin_refs[node] = peer.pin_refs.get(node, 0) + 1
        for nbr, nbr_map in payload.context.items():
            peer.pin(nbr, nbr_map)
        # drop any stale cache entry now superseded by hosted state
        peer.cache.remove(node)
        if peer.digest is not None:
            peer.digest.add(node)

    def evict(self, node: int, now: float) -> None:
        """Locally delete a replica; other servers learn lazily."""
        peer = self.peer
        rep = self.replicas.pop(node, None)
        if rep is None:
            return
        self.hosted_list.remove(node)
        self.index.remove(node)
        peer.ranking.forget(node)
        for nbr in peer.ns.neighbors(node):
            peer.unpin(nbr)
        refs = peer.pin_refs.pop(node, 0) - 1
        entry = peer.maps.pop(node, None)
        if refs > 0:
            # the node is also a pinned neighbor of another hosted node
            peer.pin_refs[node] = refs
            if entry is not None:
                peer.maps[node] = [s for s in entry if s != peer.sid]
        elif entry and peer.cfg.caching_enabled:
            peer.cache.put(node, [s for s in entry if s != peer.sid])
        if peer.digest is not None:
            peer.digest.rebuild(self.iter_hosted())
        peer.stats.record_replica_evicted(now, peer.ns.depth[node])

    def evict_idle(self, now: float) -> int:
        """Timed eviction of long-unused replicas (section 3.5)."""
        timeout = self.peer.cfg.replica_idle_timeout
        if timeout <= 0:
            return 0
        victims = [
            v for v, rep in self.replicas.items()
            if now - rep.last_used > timeout
        ]
        for v in victims:
            self.evict(v, now)
        return len(victims)

    # ------------------------------------------------------------------
    # source side: payload snapshots and creation bookkeeping
    # ------------------------------------------------------------------

    def build_payload(self, node: int) -> Optional[ReplicaPayload]:
        """Snapshot everything a target needs to host ``node``."""
        peer = self.peer
        if not peer.hosts(node):
            return None
        node_map = list(peer.maps.get(node, ()))
        if peer.sid not in node_map:
            node_map.insert(0, peer.sid)
        context: Dict[int, List[int]] = {}
        for nbr in peer.ns.neighbors(node):
            context[nbr] = list(peer.maps.get(nbr, ()))
        if node in peer.owned:
            meta = peer.metadata.meta(node)
            version, snapshot = meta.version, meta.snapshot()
        else:
            rep = self.replicas[node]
            version = rep.meta_version
            snapshot = rep.meta.snapshot() if rep.meta is not None else None
        return ReplicaPayload(node, version, node_map, context, meta=snapshot)

    def note_created(self, node: int, target: int, now: float) -> None:
        """Source-side bookkeeping after a target confirmed installation."""
        peer = self.peer
        advert_push(self.adverts_recent, node, target, peer.cfg.rmap)
        entry = peer.maps.get(node)
        if entry is not None:
            if target in entry:
                entry.remove(target)
            if len(entry) >= peer.cfg.rmap:
                # random eviction, but never of our own entry
                candidates = [i for i, s in enumerate(entry) if s != peer.sid]
                if candidates:
                    entry.pop(peer.rng.choice(candidates))
            entry.insert(0, target)
        peer.stats.record_replica_created(now, peer.ns.depth[node])

    def __repr__(self) -> str:
        return (
            f"ReplicaStore(replicas={len(self.replicas)}, "
            f"hosted={len(self.hosted_list)}, "
            f"advertised_nodes={len(self.adverts_recent)})"
        )
