"""The forwarding plane of one peer: decision, resolve, respond.

Per processed query the core absorbs piggybacked soft state (delegated
to the peer's :class:`~repro.server.softstate.SoftStateAbsorber`),
attributes routing work to the node the query travelled on behalf of,
makes exactly one routing decision (:mod:`repro.core.routing`), and
either resolves locally or forwards with this peer's own soft state
piggybacked on.  Responses and second-step data requests are handled
here too: they are forwarding-plane traffic that bypasses the request
queue.
"""

from __future__ import annotations

from typing import List

from repro.core import routing
from repro.core.maps import merge_maps
from repro.net.message import (
    Advertisement,
    AdvertMessage,
    DataReply,
    DataRequest,
    QueryMessage,
    ResponseMessage,
)


class RoutingCore:
    """Decision + forward logic, stateless apart from the peer reference."""

    __slots__ = ("peer", "decisions", "_record_drop", "_record_forward",
                 "_record_stale_hop", "_record_completion")

    def __init__(self, peer) -> None:
        self.peer = peer
        # routing decisions by winning candidate class (plus failures):
        # cheap enough to keep always-on, surfaced by `repro profile`
        self.decisions = {
            "resolved": 0, "direct": 0, "struct": 0, "cache": 0,
            "digest": 0, "fail": 0,
        }
        # per-query sink hooks, bound once (see Peer.__init__)
        stats = peer.stats
        self._record_drop = stats.record_drop
        self._record_forward = stats.record_forward
        self._record_stale_hop = stats.record_stale_hop
        self._record_completion = stats.record_completion

    # ------------------------------------------------------------------
    # query processing
    # ------------------------------------------------------------------

    def process(self, m: QueryMessage) -> None:
        """One full processing step for a dequeued query."""
        peer = self.peer
        now = peer.rt.now
        sid = peer.sid
        store = peer.store

        # -- absorb piggybacked soft state --------------------------------
        peer.absorber.absorb_query(m, now)

        # -- attribution of routing work (node ranking, section 3.2) ------
        via = m.via
        if via >= 0:
            if peer.hosts(via):
                peer.ranking.hit(via)
                store.touch(via, now)
            else:
                m.stale_hops += 1
                self._record_stale_hop(now)

        # -- merge the in-flight destination map into kept state ----------
        if m.dest_map:
            peer.merge_map(m.dest, m.dest_map)

        # -- route ---------------------------------------------------------
        decision = routing.decide(peer, m.dest)
        if decision.action is routing.RouteAction.RESOLVED:
            self.decisions["resolved"] += 1
            self.resolve(m, now)
            return
        if decision.action is routing.RouteAction.FAIL:
            self.decisions["fail"] += 1
            self._record_drop(now, reason="routing")
            return
        self.decisions[decision.source] += 1
        m.hops += 1
        if m.hops > peer.cfg.max_hops:
            self._record_drop(now, reason="ttl")
            return
        self._record_forward(decision.source)

        # back-propagate fresh replica info for the node we served
        if (
            peer.cfg.advertisement_enabled
            and via >= 0
            and m.sender != sid
            and store.adverts_recent.get(via)
        ):
            peer.send_control(
                m.sender, AdvertMessage(via, list(store.adverts_recent[via]))
            )

        # -- piggyback and forward -----------------------------------------
        if via >= 0 and peer.hosts(via):
            m.path.append((via, sid))
        m.via = decision.via
        m.sender = sid
        m.sender_load = peer.meter.load()
        if peer.cfg.digests_enabled and peer.digest is not None:
            m.sender_digest = peer.digest.snapshot()
        if peer.cfg.advertisement_enabled:
            adv_out: List[Advertisement] = []
            for node in (decision.via, m.dest):
                dq = store.adverts_recent.get(node)
                if dq:
                    adv_out.extend(Advertisement(node, s) for s in dq)
            m.adverts = adv_out
        else:
            m.adverts = []
        local_map = peer.maps.get(m.dest) or peer.cache.peek(m.dest) or ()
        advertised = tuple(store.adverts_recent.get(m.dest, ()))
        m.dest_map = merge_maps(
            local_map, m.dest_map, peer.cfg.rmap, peer.rng,
            advertised=advertised,
        )
        peer.rt.send(decision.next_server, m)

    def resolve(self, m: QueryMessage, now: float) -> None:
        """The query reached a host of its destination: lookup complete."""
        peer = self.peer
        peer.ranking.hit(m.dest)
        peer.store.touch(m.dest, now)
        m.path.append((m.dest, peer.sid))
        entry = list(peer.maps.get(m.dest, ()))
        if peer.sid not in entry:
            entry.insert(0, peer.sid)
        resp = ResponseMessage(
            m, resolver=peer.sid, dest_map=entry,
            meta_version=peer.meta_version_of(m.dest),
        )
        resp.sender_load = peer.meter.load()
        if peer.cfg.digests_enabled and peer.digest is not None:
            resp.sender_digest = peer.digest.snapshot()
        if m.origin == peer.sid:
            self.on_response(resp)
        else:
            # responses return directly to the origin, bypassing queues
            peer.rt.send(m.origin, resp)

    # ------------------------------------------------------------------
    # response and data planes
    # ------------------------------------------------------------------

    def on_response(self, r: ResponseMessage) -> None:
        peer = self.peer
        now = peer.rt.now
        peer.absorber.absorb_response(r, now)
        latency = now - r.created_at
        self._record_completion(now, latency, r.hops, r.stale_hops)
        hook = peer.client_hooks.pop(("lookup", r.qid), None)
        if hook is not None:
            hook(r)

    def on_data_request(self, req: DataRequest) -> None:
        """Second-step retrieval (paper section 2.1): serve data/meta if
        we own the node, else redirect with our map for it."""
        peer = self.peer
        reply = DataReply(req.rid, req.node, peer.sid)
        if req.node in peer.owned:
            if req.want_meta:
                reply.meta = peer.metadata.meta(req.node).snapshot()
            else:
                reply.data = peer.metadata.get_data(req.node)
                reply.meta = peer.metadata.meta(req.node).snapshot()
        else:
            entry = peer.maps.get(req.node) or (
                peer.cache.peek(req.node) if peer.cache is not None else None
            )
            reply.redirect_map = [
                s for s in (entry if entry is not None else ())
                if s != peer.sid
            ]
        peer.rt.send(req.origin, reply)

    def __repr__(self) -> str:
        return f"RoutingCore(peer={self.peer.sid})"
