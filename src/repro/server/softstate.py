"""Soft-state intake: everything a peer learns from piggybacked data.

All in-band dissemination in the protocol arrives as piggyback on
query/response traffic (plus the rare back-propagated advert message):
load samples, digest snapshots, new-replica advertisements, and path
cache entries.  :class:`SoftStateAbsorber` is the single place that
state enters a peer, keeping the intake plane separate from the
forwarding decision (:class:`~repro.server.routing_core.RoutingCore`)
the way digest-maintenance planes are kept off the forwarding path in
Bloom-filter routing stacks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.net.message import QueryMessage, ResponseMessage


class SoftStateAbsorber:
    """Absorbs piggybacked soft state into a peer's tables.

    Owns the in-band load-sample table (``known_loads``); all other
    touched state (maps, cache, digest directory) stays owned by the
    composing peer.
    """

    __slots__ = ("peer", "known_loads")

    def __init__(self, peer) -> None:
        self.peer = peer
        # server id -> (last load sample, sample time)
        self.known_loads: Dict[int, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # per-message intake
    # ------------------------------------------------------------------

    def note_load(self, server: int, load: float, now: float) -> None:
        """Record an in-band load sample for ``server``."""
        self.known_loads[server] = (load, now)

    def absorb_query(self, m: QueryMessage, now: float) -> None:
        """Intake of everything piggybacked on a forwarded query."""
        peer = self.peer
        sid = peer.sid
        if m.sender != sid:
            self.known_loads[m.sender] = (m.sender_load, now)
            if m.sender_digest is not None and peer.digest_dir is not None:
                peer.digest_dir.observe(m.sender, m.sender_digest)
        for adv in m.adverts:
            self.absorb_advert(adv.node, (adv.server,))
        if peer.cfg.caching_enabled and peer.cfg.path_propagation:
            cache_put = peer.cache.put
            hosts = peer.hosts
            for node, server in m.path:
                if server != sid and not hosts(node):
                    cache_put(node, (server,))

    def absorb_response(self, r: ResponseMessage, now: float) -> None:
        """Intake of everything piggybacked on a query response."""
        peer = self.peer
        if r.resolver != peer.sid:
            self.known_loads[r.resolver] = (r.sender_load, now)
            if r.sender_digest is not None and peer.digest_dir is not None:
                peer.digest_dir.observe(r.resolver, r.sender_digest)
        if peer.cfg.caching_enabled:
            if not peer.hosts(r.dest):
                peer.cache.put(
                    r.dest, peer._filter_servers(r.dest, r.dest_map)
                )
            if peer.cfg.path_propagation:
                for node, server in r.path:
                    if server != peer.sid and not peer.hosts(node):
                        peer.cache.put(node, (server,))

    def absorb_advert(self, node: int, servers: Iterable[int]) -> None:
        """Fold advertised new replicas into kept maps, preferred."""
        peer = self.peer
        entry = peer.maps.get(node)
        if entry is not None:
            for s in servers:
                if s in entry:
                    continue
                if len(entry) >= peer.cfg.rmap:
                    idx = [i for i, e in enumerate(entry) if e != peer.sid]
                    if not idx:
                        continue
                    entry.pop(peer.rng.choice(idx))
                entry.insert(0, s)
            return
        if peer.cfg.caching_enabled and node in peer.cache:
            peer.cache.put(node, list(servers))

    def __repr__(self) -> str:
        return f"SoftStateAbsorber(known_loads={len(self.known_loads)})"
