"""Server-node relationships and their state matrix (paper Table 1).

Table 1 of the paper fixes exactly which state a server maintains for a
node, per relationship::

    Node State     Name  Map  Data  Meta  Context
    Owned           x     x    x     x      x
    Replicated      x     x          x      x
    Neighboring     x     x
    Cached          x     x

Cached and neighboring nodes are similar except that cached entries can
be arbitrarily replaced while neighbor maps are imposed by the topology
(here: pinned).  :func:`state_kinds` computes the matrix row for a live
peer/node pair so tests and the Table-1 benchmark can audit a running
system against the paper's specification.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet


class Relationship(enum.Enum):
    """The relationship of a server to a node."""

    OWNED = "owned"
    REPLICATED = "replicated"
    NEIGHBORING = "neighboring"
    CACHED = "cached"
    NONE = "none"


#: Paper Table 1: state kind -> set of state columns maintained.
STATE_MATRIX: Dict[Relationship, FrozenSet[str]] = {
    Relationship.OWNED: frozenset({"name", "map", "data", "meta", "context"}),
    Relationship.REPLICATED: frozenset({"name", "map", "meta", "context"}),
    Relationship.NEIGHBORING: frozenset({"name", "map"}),
    Relationship.CACHED: frozenset({"name", "map"}),
    Relationship.NONE: frozenset(),
}


def relationship_of(peer, node: int) -> Relationship:
    """Classify ``peer``'s relationship to ``node`` (most specific wins)."""
    if node in peer.owned:
        return Relationship.OWNED
    if node in peer.replicas:
        return Relationship.REPLICATED
    if node in peer.pin_refs:
        return Relationship.NEIGHBORING
    if peer.cache is not None and node in peer.cache:
        return Relationship.CACHED
    return Relationship.NONE


def state_kinds(peer, node: int) -> FrozenSet[str]:
    """The state columns ``peer`` actually maintains for ``node``.

    * ``name`` -- the server can refer to the node (it appears in any of
      its tables),
    * ``map`` -- a node map is kept,
    * ``data`` -- node data (only the owner exports data),
    * ``meta`` -- node meta-data (owner and replicas),
    * ``context`` -- maps for all the node's namespace neighbors, i.e.
      routing through this server is functionally equivalent to routing
      through the owner.
    """
    rel = relationship_of(peer, node)
    if rel is Relationship.NONE:
        return frozenset()
    kinds = {"name"}
    if node in peer.maps or (peer.cache is not None and node in peer.cache):
        kinds.add("map")
    if rel is Relationship.OWNED:
        kinds.add("data")
    if rel in (Relationship.OWNED, Relationship.REPLICATED):
        kinds.add("meta")
        # context: a map for every namespace neighbor must be present
        if all(nbr in peer.maps for nbr in peer.ns.neighbors(node)):
            kinds.add("context")
    return frozenset(kinds)


def audit_peer(peer) -> Dict[Relationship, int]:
    """Count ``peer``'s nodes per relationship and verify Table 1 holds.

    Returns the per-relationship node counts; raises AssertionError if
    any live node's maintained state deviates from the paper's matrix.
    """
    counts: Dict[Relationship, int] = {r: 0 for r in Relationship}
    seen = set(peer.owned) | set(peer.replicas) | set(peer.pin_refs)
    if peer.cache is not None:
        seen |= set(peer.cache.nodes())
    for node in seen:
        rel = relationship_of(peer, node)
        counts[rel] += 1
        kinds = state_kinds(peer, node)
        expected = STATE_MATRIX[rel]
        if not kinds <= expected | {"map"}:
            raise AssertionError(
                f"peer {peer.sid} node {node}: state {kinds} exceeds "
                f"Table 1 allowance {expected}"
            )
        if rel in (Relationship.OWNED, Relationship.REPLICATED):
            missing = expected - kinds
            if missing:
                raise AssertionError(
                    f"peer {peer.sid} node {node} ({rel.value}): "
                    f"missing mandatory state {missing}"
                )
    return counts
