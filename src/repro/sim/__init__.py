"""Discrete-event simulation substrate (engine, RNG streams, stats)."""

from repro.sim.engine import Engine, SimError
from repro.sim.rng import RngStreams, ZipfSampler
from repro.sim.stats import Counter, TimeSeries, WindowAverager

__all__ = [
    "Counter",
    "Engine",
    "RngStreams",
    "SimError",
    "TimeSeries",
    "WindowAverager",
    "ZipfSampler",
]
