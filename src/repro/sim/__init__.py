"""Discrete-event simulation substrate (engine, RNG streams, stats)."""

from repro.sim.engine import Engine, SimError
from repro.sim.memsize import deep_sizeof, peak_rss_bytes, rss_bytes
from repro.sim.rng import RngStreams, ZipfSampler
from repro.sim.stats import Counter, TimeSeries, WindowAverager

__all__ = [
    "Counter",
    "Engine",
    "RngStreams",
    "SimError",
    "TimeSeries",
    "WindowAverager",
    "ZipfSampler",
    "deep_sizeof",
    "peak_rss_bytes",
    "rss_bytes",
]
