"""Minimal, fast discrete-event engine.

Events are ``(time, seq, fn, args)`` tuples on a binary heap.  ``seq``
is a monotonically increasing tie-breaker so simultaneous events run in
scheduling order and callables are never compared.  The engine is
deliberately tiny -- scheduling overhead dominates a pure-Python
simulator, so there are no event objects, no cancellation tokens (use
the returned handle's ``cancelled`` flag), and no processes/coroutines.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class ShardError(SimError):
    """A configuration or operation incompatible with sharded execution.

    Raised when the conservative windowed run loop cannot guarantee
    bit-identical results: jittered delivery times (no constant
    lookahead), zero network delay (zero-width windows), oracle map
    filtering (direct cross-shard state reads), or window-protocol
    violations (a message delivered into an already-executed window).
    """


class EventHandle:
    """Cancellation handle for a scheduled event (lazy deletion)."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle({state})"


class Engine:
    """Priority-queue discrete-event simulator core.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(1.0, hits.append, "a")
    >>> _ = eng.schedule(0.5, hits.append, "b")
    >>> eng.run()
    >>> hits
    ['b', 'a']
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "n_dispatched")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[
            Tuple[float, int, Optional[EventHandle], Callable[..., None], tuple]
        ] = []
        self._seq = 0
        self._running = False
        self.n_dispatched = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pending(self) -> int:
        """Number of events still on the heap (cancelled ones included)."""
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.now:.6f}, pending={len(self._heap)}, "
            f"dispatched={self.n_dispatched})"
        )

    def schedule(
        self, time: float, fn: Callable[..., None], *args: Any, handle: bool = False
    ) -> Optional[EventHandle]:
        """Schedule ``fn(*args)`` at absolute ``time``.

        Args:
            handle: when True return an :class:`EventHandle` that can
                cancel the event; plain events skip handle allocation.

        Raises:
            SimError: when ``time`` is before the current clock.
        """
        if time < self.now:
            raise SimError(f"cannot schedule at {time} (now={self.now})")
        h = EventHandle() if handle else None
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, h, fn, args))
        return h

    def schedule_after(
        self, delay: float, fn: Callable[..., None], *args: Any, handle: bool = False
    ) -> Optional[EventHandle]:
        """Schedule ``fn(*args)`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn, *args, handle=handle)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: float = float("inf"), max_events: int = 0) -> None:
        """Dispatch events in time order.

        Stops when the heap is empty, the next event is later than
        ``until`` (the clock is then advanced to exactly ``until``), or
        ``max_events`` events have been dispatched (0 = unlimited).
        """
        if self._running:
            raise SimError("engine is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                _, _, h, fn, args = pop(heap)
                if h is not None and h.cancelled:
                    continue
                self.now = t
                fn(*args)
                dispatched += 1
                if max_events and dispatched >= max_events:
                    break
            if until != float("inf") and self.now < until and not (
                max_events and dispatched >= max_events
            ):
                self.now = until
        finally:
            self._running = False
            self.n_dispatched += dispatched

    def run_window(self, end: float, inclusive: bool = False) -> None:
        """Dispatch one conservative time window, then land on ``end``.

        The windowed variant of :meth:`run` used by sharded execution
        (:mod:`repro.sim.shard`): dispatches events strictly *before*
        ``end`` (so an event scheduled exactly on a window boundary
        runs in the window it opens, in every shard alike), then
        advances the clock to exactly ``end`` so all shard clocks agree
        at the barrier.  The final window of a run passes
        ``inclusive=True``, which additionally dispatches events at
        exactly ``end`` -- matching ``run(until=end)``'s inclusive
        stopping rule, so a sharded run ends on the same events a
        serial run does.
        """
        if self._running:
            raise SimError("engine is not reentrant")
        if end < self.now:
            raise SimError(f"cannot run a window ending at {end} (now={self.now})")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            while heap:
                t = heap[0][0]
                if t > end or (t == end and not inclusive):
                    break
                _, _, h, fn, args = pop(heap)
                if h is not None and h.cancelled:
                    continue
                self.now = t
                fn(*args)
                dispatched += 1
            if self.now < end:
                self.now = end
        finally:
            self._running = False
            self.n_dispatched += dispatched

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._heap.clear()
        self.now = 0.0
        self._seq = 0
        self.n_dispatched = 0
