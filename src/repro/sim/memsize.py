"""Deep-sizeof accounting for simulation state (the ``mem_bytes`` column).

``sys.getsizeof`` is shallow: a dict of lists of ints reports the dict
header only.  :func:`deep_sizeof` walks the object graph iteratively
(no recursion limits on million-node namespaces), counts every reachable
object exactly once, and knows how to traverse the containers the
simulator is built from: dicts, lists, tuples, sets, deques, ``array``
arenas, and ``__slots__``/``__dict__`` instances.  Shared state (e.g.
the namespace referenced by every peer, interned labels) is therefore
charged once per measurement, matching resident-set behaviour.

Two deliberate exclusions keep the number meaningful:

* types, modules, and functions are treated as code, not state;
* weak references are not followed.

:func:`rss_bytes` / :func:`peak_rss_bytes` read the process-level truth
from ``/proc/self/status`` (falling back to :mod:`resource`), used by
``make mem`` to enforce the documented million-node RSS budget.
"""

from __future__ import annotations

import sys
from array import array
from collections import OrderedDict, deque
from types import BuiltinFunctionType, FunctionType, MethodType, ModuleType
from typing import Any, Dict, Iterable, Optional, Set

_ATOMIC = (int, float, complex, bool, bytes, str, bytearray, memoryview,
           type(None), type(NotImplemented), type(Ellipsis))
_SKIP = (type, ModuleType, FunctionType, BuiltinFunctionType, MethodType)
_CONTAINERS = (list, tuple, set, frozenset, deque)


def _slot_names(cls: type) -> Iterable[str]:
    """All ``__slots__`` names declared anywhere in the MRO."""
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                yield name


def deep_sizeof(obj: Any, seen: Optional[set] = None) -> int:
    """Total bytes held by ``obj`` and everything reachable from it.

    Each distinct object (by ``id``) is counted once; pass a shared
    ``seen`` set to charge state shared across several measurements to
    the first one only.

    >>> deep_sizeof([1, 2]) > deep_sizeof([])
    True
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    push = stack.append
    getsizeof = sys.getsizeof
    while stack:
        o = stack.pop()
        oid = id(o)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(o, _SKIP):
            continue
        try:
            total += getsizeof(o)
        except TypeError:  # exotic extension types
            continue
        if isinstance(o, _ATOMIC) or isinstance(o, array):
            continue  # their buffer is already in getsizeof
        if isinstance(o, dict):
            for k, v in o.items():
                push(k)
                push(v)
        elif isinstance(o, _CONTAINERS) or isinstance(o, OrderedDict):
            stack.extend(o)
        else:
            d = getattr(o, "__dict__", None)
            if d is not None:
                push(d)
            for name in _slot_names(type(o)):
                try:
                    push(getattr(o, name))
                except AttributeError:
                    pass  # unset slot
    return total


def arena_bytes(obj: Any) -> int:
    """Bytes of flat arena payload behind ``obj``.

    ``deep_sizeof`` charges a ``memoryview`` its header only -- correct
    for per-worker accounting (the mapping is shared), but the shared
    block itself still costs real memory once.  This helper reports
    that payload for an ``array`` (``len * itemsize``) or a
    ``memoryview`` (``nbytes``), so before/after RSS notes can separate
    "per-worker copies" from "one shared mapping".
    """
    if isinstance(obj, array):
        return len(obj) * obj.itemsize
    if isinstance(obj, memoryview):
        return obj.nbytes
    raise TypeError(f"arena_bytes wants an array or memoryview, got "
                    f"{type(obj).__name__}")


def rss_bytes() -> int:
    """Current resident set size of this process in bytes (best effort)."""
    return _read_status("VmRSS:")


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (best effort)."""
    return _read_status("VmHWM:")


def _read_status(field: str) -> int:
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith(field):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:  # macOS/BSD fallback: only the peak is available
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak * (1 if sys.platform == "darwin" else 1024)
    except Exception:
        return 0


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (``1536`` -> ``'1.5 KiB'``)."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{size:.1f} GiB"


def report(objects: Dict[str, Any]) -> Dict[str, int]:
    """Deep-size several labelled objects, sharing the seen-set.

    Earlier entries absorb state shared with later ones, so order the
    dict from most- to least-interesting.
    """
    seen: Set[int] = set()
    return {label: deep_sizeof(o, seen) for label, o in objects.items()}
