"""Built-in event-loop profiling: who eats the simulation's time?

:class:`ProfiledEngine` is a drop-in :class:`~repro.sim.engine.Engine`
whose dispatch loop records, per handler (keyed by the callable's
qualified name, e.g. ``Peer._finish_service`` or ``Transport._drain``),
the number of events dispatched and the cumulative wall time spent in
them -- plus the total wall time of the loop itself, so events/sec and
the scheduling overhead fall out directly.  Profiling never touches
simulation semantics: a fixed-seed run behaves bit-identically under
either engine.

The CLI runs any experiment under profiling and prints the table::

    python -m repro profile fig3
    REPRO_SCALE=small python -m repro profile fig6 fig9

Experiments are forced to run serially (``REPRO_WORKERS=0``): profiled
engines must live in this process to be read afterwards.

Programmatic use::

    from repro.sim import profile
    profile.enable()            # build_system now returns ProfiledEngines
    ... run something ...
    print(profile.render_report())
    profile.disable()
"""

from __future__ import annotations

import heapq
import os
import sys
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.engine import Engine, SimError

if TYPE_CHECKING:  # circular at runtime: cluster.builder imports us
    from repro.cluster.system import System
    from repro.sim.shard import WindowedCoordinator

__all__ = [
    "ProfiledEngine",
    "enable",
    "disable",
    "reset",
    "make_engine",
    "note_system",
    "note_coordinator",
    "engines",
    "aggregate",
    "decision_counts",
    "render_report",
    "main",
]

_ACTIVE = False
_ENGINES: List["ProfiledEngine"] = []
_SYSTEMS: List["System"] = []
_COORDS: List["WindowedCoordinator"] = []


class ProfiledEngine(Engine):
    """An engine that attributes dispatch time to handler classes.

    ``profile`` maps handler qualnames to ``[n_events,
    cumulative_seconds]``; ``wall_time`` accumulates the total wall
    time spent inside :meth:`run` (handler time plus heap/loop
    overhead).
    """

    __slots__ = ("profile", "wall_time", "label")

    def __init__(self, label: Optional[str] = None) -> None:
        super().__init__()
        self.profile: Dict[str, List[float]] = {}
        self.wall_time = 0.0
        # display label for multi-engine reports (e.g. "shard3" when a
        # sharded run hands every shard its own profiled engine)
        self.label = label

    def run(self, until: float = float("inf"), max_events: int = 0) -> None:
        """Identical semantics to :meth:`Engine.run`, plus timing."""
        if self._running:
            raise SimError("engine is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        prof = self.profile
        clock = time.perf_counter
        dispatched = 0
        run_t0 = clock()
        try:
            while heap:
                t = heap[0][0]
                if t > until:
                    break
                _, _, h, fn, args = pop(heap)
                if h is not None and h.cancelled:
                    continue
                self.now = t
                key = getattr(fn, "__qualname__", None) or repr(fn)
                t0 = clock()
                fn(*args)
                dt = clock() - t0
                entry = prof.get(key)
                if entry is None:
                    prof[key] = [1, dt]
                else:
                    entry[0] += 1
                    entry[1] += dt
                dispatched += 1
                if max_events and dispatched >= max_events:
                    break
            if until != float("inf") and self.now < until and not (
                max_events and dispatched >= max_events
            ):
                self.now = until
        finally:
            self._running = False
            self.n_dispatched += dispatched
            self.wall_time += clock() - run_t0

    def run_window(self, end: float, inclusive: bool = False) -> None:
        """Identical semantics to :meth:`Engine.run_window`, plus timing."""
        if self._running:
            raise SimError("engine is not reentrant")
        if end < self.now:
            raise SimError(f"cannot run a window ending at {end} (now={self.now})")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        prof = self.profile
        clock = time.perf_counter
        dispatched = 0
        run_t0 = clock()
        try:
            while heap:
                t = heap[0][0]
                if t > end or (t == end and not inclusive):
                    break
                _, _, h, fn, args = pop(heap)
                if h is not None and h.cancelled:
                    continue
                self.now = t
                key = getattr(fn, "__qualname__", None) or repr(fn)
                t0 = clock()
                fn(*args)
                dt = clock() - t0
                entry = prof.get(key)
                if entry is None:
                    prof[key] = [1, dt]
                else:
                    entry[0] += 1
                    entry[1] += dt
                dispatched += 1
            if self.now < end:
                self.now = end
        finally:
            self._running = False
            self.n_dispatched += dispatched
            self.wall_time += clock() - run_t0

    def __repr__(self) -> str:
        return (
            f"ProfiledEngine(now={self.now:.6f}, pending={len(self._heap)}, "
            f"dispatched={self.n_dispatched}, wall={self.wall_time:.3f}s)"
        )


# ----------------------------------------------------------------------
# process-wide switch (consulted by cluster.builder.build_system)
# ----------------------------------------------------------------------

def enable() -> None:
    """Make :func:`make_engine` hand out registered ProfiledEngines."""
    global _ACTIVE
    _ACTIVE = True


def disable() -> None:
    global _ACTIVE
    _ACTIVE = False


def reset() -> None:
    """Forget every engine/system registered so far (keeps on/off state)."""
    _ENGINES.clear()
    _SYSTEMS.clear()
    _COORDS.clear()


def is_active() -> bool:
    """True while profiling is enabled (make_engine returns ProfiledEngines)."""
    return _ACTIVE


def make_engine(label: Optional[str] = None) -> Engine:
    """The builder's engine factory: plain or profiled per the switch.

    Args:
        label: display label for the engine in multi-engine reports
            (sharded runs pass ``shard<N>``); ignored when profiling is
            off.
    """
    if not _ACTIVE:
        return Engine()
    eng = ProfiledEngine(label=label)
    _ENGINES.append(eng)
    return eng


def note_system(system: "System") -> None:
    """Register a built system so its per-peer routing-decision counters
    (resolved/direct/struct/cache/digest/fail) appear in the report.

    No-op unless profiling is enabled; called by ``build_system``.
    """
    if _ACTIVE:
        _SYSTEMS.append(system)


def note_coordinator(coord: "WindowedCoordinator") -> None:
    """Register a sharded-run coordinator so its data-plane counters
    (barriers, coalesced windows, barrier wait, encode/decode time,
    bytes exchanged) appear in the report.

    No-op unless profiling is enabled; called by
    ``WindowedCoordinator.run``.
    """
    if _ACTIVE:
        _COORDS.append(coord)


def engines() -> List[ProfiledEngine]:
    """Every ProfiledEngine created since the last :func:`reset`."""
    return list(_ENGINES)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def aggregate(
    engs: Optional[List[ProfiledEngine]] = None,
) -> Tuple[Dict[str, List[float]], int, float]:
    """Merge profiles: ``(per-handler, total events, total wall s)``."""
    engs = _ENGINES if engs is None else engs
    merged: Dict[str, List[float]] = {}
    n_events = 0
    wall = 0.0
    for eng in engs:
        n_events += eng.n_dispatched
        wall += eng.wall_time
        for key, (cnt, sec) in eng.profile.items():
            entry = merged.get(key)
            if entry is None:
                merged[key] = [cnt, sec]
            else:
                entry[0] += cnt
                entry[1] += sec
    return merged, n_events, wall


def decision_counts(systems: Optional[List["System"]] = None) -> Dict[str, int]:
    """Routing decisions by winning candidate class, across systems.

    Sums the always-on per-peer counters
    (:attr:`repro.server.routing_core.RoutingCore.decisions`) over
    every registered system's peers, so profile runs show *which*
    candidate class (resolved/direct/struct/cache/digest) carries the
    routing load -- cache/digest shares are where ancestor-index and
    snapshot-cache wins surface.
    """
    merged: Dict[str, int] = {}
    for system in (_SYSTEMS if systems is None else systems):
        # sharded systems keep a sparse peers list (None for servers
        # living on other shards) plus a dense local_peers view
        peers = getattr(system, "local_peers", None) or system.peers
        for p in peers:
            if p is None:
                continue
            for k, v in p.router.decisions.items():
                merged[k] = merged.get(k, 0) + v
    return merged


def render_report(engs: Optional[List[ProfiledEngine]] = None) -> str:
    """The per-handler table, sorted by cumulative time."""
    merged, n_events, wall = aggregate(engs)
    lines = [
        f"{'handler':<44} {'events':>10} {'cum(s)':>9} "
        f"{'us/event':>9} {'share':>7}"
    ]
    # det: ok(unordered-iteration) -- display-only total in the profile
    # table; merged is built in deterministic insertion order in-process
    handler_time = sum(sec for _, sec in merged.values())
    for key, (cnt, sec) in sorted(
        merged.items(), key=lambda kv: kv[1][1], reverse=True
    ):
        share = sec / wall if wall else 0.0
        lines.append(
            f"{key:<44} {cnt:>10} {sec:>9.3f} "
            f"{1e6 * sec / cnt:>9.2f} {share:>6.1%}"
        )
    overhead = wall - handler_time
    lines.append(
        f"{'(engine loop + heap overhead)':<44} {'':>10} {overhead:>9.3f} "
        f"{'':>9} {overhead / wall if wall else 0.0:>6.1%}"
    )
    rate = n_events / wall if wall else 0.0
    all_engs = engs if engs is not None else _ENGINES
    lines.append(
        f"total: {n_events:,} events in {wall:.3f}s wall "
        f"-> {rate:,.0f} events/sec "
        f"({len(all_engs)} engine(s))"
    )
    if len(all_engs) > 1:
        # one labeled line per engine, so sharded runs (one profiled
        # engine per shard) show their per-shard split in the same report
        lines.append("per-engine breakdown:")
        for i, eng in enumerate(all_engs):
            label = eng.label if eng.label is not None else f"engine{i}"
            top = max(
                eng.profile.items(), key=lambda kv: kv[1][1], default=None
            )
            top_txt = (
                f"top {top[0]} {top[1][1] / eng.wall_time:.0%}"
                if top and eng.wall_time else "idle"
            )
            erate = eng.n_dispatched / eng.wall_time if eng.wall_time else 0.0
            lines.append(
                f"  {label:<12} {eng.n_dispatched:>10,} events "
                f"{eng.wall_time:>8.3f}s {erate:>10,.0f} ev/s  {top_txt}"
            )
    decisions = decision_counts()
    # det: ok(unordered-iteration) -- integer decision counters; int
    # addition commutes exactly, any order gives the same total
    total_dec = sum(decisions.values())
    if total_dec:
        lines.append("routing decisions by candidate class:")
        for key in ("resolved", "direct", "struct", "cache", "digest",
                    "fail"):
            cnt = decisions.get(key, 0)
            lines.append(f"  {key:<10} {cnt:>10} {cnt / total_dec:>7.1%}")
    for coord in _COORDS:
        dp = coord.data_plane
        if not dp:
            # run() never finished (crash mid-run); show the live
            # counters the coordinator accumulated so far instead
            dp = {
                "backend": coord.backend, "codec": coord.codec,
                "n_barriers": coord.n_windows,
                "n_coalesced": coord.n_coalesced,
                "barrier_wait_s": coord.barrier_wait_s,
                "bytes_exchanged": coord.bytes_exchanged,
                "encode_s": 0.0, "decode_s": 0.0,
            }
        lines.append(
            f"sharded data plane ({dp['backend']}"
            f"{', packed codec' if dp['codec'] else ''}):"
        )
        lines.append(
            f"  barriers   {dp['n_barriers']:>10}   "
            f"coalesced windows {dp['n_coalesced']:>10}"
        )
        lines.append(
            f"  barrier-wait {dp['barrier_wait_s']:>8.3f}s   "
            f"encode {dp['encode_s']:>8.3f}s   "
            f"decode {dp['decode_s']:>8.3f}s"
        )
        lines.append(
            f"  bytes exchanged {dp['bytes_exchanged']:>14,}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI: python -m repro profile <fig> [...]
# ----------------------------------------------------------------------

def main(argv: List[str]) -> int:
    from repro.experiments.common import get_scale
    from repro.experiments.runner import EXPERIMENTS

    wanted = argv or ["fig3"]
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}"
        )
    # profiled engines must stay in-process
    os.environ["REPRO_WORKERS"] = "0"
    enable()
    reset()
    scale = get_scale()
    print(f"profiling at scale={scale.name} (serial workers)", flush=True)
    try:
        for name in wanted:
            print(f"\n=== {name} ===")
            t0 = time.perf_counter()
            EXPERIMENTS[name](scale)
            print(f"  [{time.perf_counter() - t0:.1f}s]")
        print("\n--- event-loop profile ---")
        print(render_report())
    finally:
        disable()
        reset()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main(sys.argv[1:]))
