"""Closed-form M/M/1/K results for validating the queueing substrate.

Each TerraDir server is an M/M/1/K queue: Poisson arrivals, exponential
service, one server, K total slots (1 in service + queue_size waiting),
arrivals beyond K dropped.  These textbook formulas let the test suite
verify the discrete-event implementation against theory -- blocking
probability, utilisation, and mean queue length must match simulation
within sampling error.
"""

from __future__ import annotations

from typing import List


def mm1k_state_probabilities(rho: float, k: int) -> List[float]:
    """Stationary probabilities P0..PK of an M/M/1/K queue.

    Args:
        rho: offered load lambda/mu (any positive value; rho >= 1 is
            fine for a finite queue).
        k: total capacity (in service + waiting).
    """
    if rho < 0:
        raise ValueError("rho must be >= 0")
    if k < 1:
        raise ValueError("k must be >= 1")
    if abs(rho - 1.0) < 1e-12:
        p = 1.0 / (k + 1)
        return [p] * (k + 1)
    norm = (1.0 - rho) / (1.0 - rho ** (k + 1))
    return [norm * rho**n for n in range(k + 1)]


def mm1k_blocking_probability(rho: float, k: int) -> float:
    """P(arrival dropped) = P(system full) = P_K."""
    return mm1k_state_probabilities(rho, k)[-1]


def mm1k_utilization(rho: float, k: int) -> float:
    """Fraction of time the server is busy = 1 - P_0."""
    return 1.0 - mm1k_state_probabilities(rho, k)[0]


def mm1k_mean_number_in_system(rho: float, k: int) -> float:
    """E[N], the mean number of requests in the system."""
    probs = mm1k_state_probabilities(rho, k)
    return sum(n * p for n, p in enumerate(probs))


def mm1k_throughput(lam: float, mu: float, k: int) -> float:
    """Accepted-arrival rate = lambda * (1 - P_K)."""
    if lam < 0 or mu <= 0:
        raise ValueError("need lam >= 0 and mu > 0")
    return lam * (1.0 - mm1k_blocking_probability(lam / mu, k))


def mm1k_mean_response_time(lam: float, mu: float, k: int) -> float:
    """E[T] for accepted requests, by Little's law: E[N]/throughput."""
    thr = mm1k_throughput(lam, mu, k)
    if thr == 0:
        return 0.0
    return mm1k_mean_number_in_system(lam / mu, k) / thr
