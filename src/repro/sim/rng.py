"""Random-number streams for the simulation.

Every stochastic component draws from its own named stream (derived
deterministically from a master seed) so that, e.g., changing the
service-time distribution does not perturb the query workload -- the
standard common-random-numbers discipline for simulation experiments.

:class:`ZipfSampler` implements the bounded Zipf law the paper uses for
destination popularity (Zipf 1949): ``P(rank=i) ~ 1/i**alpha`` over a
finite population, sampled in O(log n) by inverse-CDF binary search
over precomputed cumulative weights (numpy).
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List

import numpy as np


def _stable_hash(name: str) -> int:
    """Process-independent 32-bit hash of a stream name.

    ``hash(str)`` is salted per interpreter process (PYTHONHASHSEED), so
    it must never feed a seed -- results would differ across runs.
    """
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """A family of independent named RNG streams under one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created deterministically on first use)."""
        s = self._streams.get(name)
        if s is None:
            sub = _stable_hash(name) ^ (self.master_seed * 0x9E3779B1)
            s = random.Random(sub & 0xFFFFFFFFFFFF)
            self._streams[name] = s
        return s

    def spawn(self, name: str) -> "RngStreams":
        """A child family whose master seed derives from ``name``."""
        sub = _stable_hash(name) ^ (self.master_seed * 0x85EBCA6B)
        return RngStreams(sub & 0xFFFFFFFFFFFF)


class ZipfSampler:
    """Bounded Zipf(alpha) sampler over ``n`` ranked items.

    ``sample()`` returns a *rank* in ``0..n-1`` (0 = most popular).  The
    caller owns the rank-to-item permutation, which is what the paper's
    "instantaneous random change in node popularity" reshuffles.

    ``alpha == 0`` degenerates to the uniform distribution.
    """

    __slots__ = ("n", "alpha", "_cdf")

    def __init__(self, n: int, alpha: float) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.n = n
        self.alpha = alpha
        if alpha == 0.0:
            self._cdf = None
        else:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            weights = ranks ** (-alpha)
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """Draw one rank using ``rng`` for the underlying uniform."""
        if self._cdf is None:
            return rng.randrange(self.n)
        u = rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_many(self, rng: random.Random, k: int) -> np.ndarray:
        """Draw ``k`` ranks at once (vectorised)."""
        if self._cdf is None:
            return np.array([rng.randrange(self.n) for _ in range(k)])
        us = np.array([rng.random() for _ in range(k)])
        return np.searchsorted(self._cdf, us, side="left")

    def pmf(self, rank: int) -> float:
        """Probability mass of a rank (0-based)."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        if self._cdf is None:
            return 1.0 / self.n
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)


def exponential(rng: random.Random, mean: float) -> float:
    """One draw from Exp(mean) -- service times, Poisson inter-arrivals."""
    if mean <= 0:
        raise ValueError("mean must be > 0")
    # rng.random() is in [0,1); guard the log(0) corner
    u = 1.0 - rng.random()
    return -mean * math.log(u)


def poisson_arrival_times(
    rng: random.Random, rate: float, horizon: float
) -> List[float]:
    """All arrival instants of a Poisson(rate) process on [0, horizon)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    out: List[float] = []
    t = exponential(rng, 1.0 / rate)
    while t < horizon:
        out.append(t)
        t += exponential(rng, 1.0 / rate)
    return out
