"""Sharded simulation: N engines advancing in conservative time windows.

The serial engine dispatches every event in one heap; at paper scale
(1024 servers, millions of queries) the single-core dispatch loop is
the wall-clock bottleneck.  The transport's constant delivery delay
``d`` is a classic conservative-lookahead guarantee: a message sent at
time ``t`` delivers at exactly ``t + d``, so events more than ``d``
apart in simulated time cannot affect each other across servers.  The
windowed run loop exploits this:

1. Servers are partitioned across ``n_shards`` shard engines in
   contiguous balanced blocks (:func:`repro.net.transport.shard_of_sid`)
   over the same uniform node assignment the serial build uses.
2. Every shard runs one window of width ``d`` (``Engine.run_window``),
   buffering cross-shard sends in per-destination egress lists.
3. At the window barrier the coordinator exchanges egress batches;
   each shard merges them into its delivery ring by the canonical key
   ``(deliver_at, src_shard, send_seq)`` and the next window begins.

A send in window ``k`` delivers in window ``k + 1`` by construction
(window width equals the delay and float addition is monotone -- see
:func:`window_plan`), so no shard ever receives a message for a time
it has already executed; :class:`~repro.sim.engine.ShardError` guards
the invariant at every merge.

Determinism is *by construction*, not by luck: fixed-seed runs are
bit-identical to the serial engine for every shard count (tests lock
serial against 1/2/4/8 shards).  Three mechanisms carry the proof:

- The arrival stream is pre-generated once with the serial driver's
  exact RNG sequence (:func:`repro.workload.arrivals.iter_arrivals`),
  query ids assigned in global arrival order, then partitioned by the
  source server's shard.
- Every *global* construction draw (node assignment, heterogeneity,
  bootstrap) is replayed identically in each shard and applied only
  locally; per-peer RNG streams are keyed by server id, not creation
  order.
- Stats are recorded per shard as a timestamped event log and replayed
  in canonical merge order ``(time, shard, log index)`` into one fresh
  collector, reproducing the serial run's accumulation order exactly
  (contiguous shard blocks make merged same-time per-server records,
  e.g. maintenance load samples, come out in serial's ascending-sid
  order).

Process-backed execution (one worker process per shard, persistent
pipes, one round-trip per window) gives the multi-core win; the inline
backend runs every shard in-process for debugging and profiling.
Configs without constant lookahead (``net_jitter > 0``,
``net_delay == 0``) or with cross-shard state reads (``oracle_maps``)
raise :class:`ShardError`; :func:`run_sharded_workload` then warns and
falls back to the serial engine rather than silently diverging.
"""

from __future__ import annotations

import heapq
import math
import os
import warnings
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

from repro.cluster.builder import _resolve_owner, build_shard_system, build_system
from repro.cluster.config import SystemConfig
from repro.namespace.tree import Namespace, export_arenas
from repro.net.transport import shard_of_sid
from repro.sim import profile
from repro.sim.engine import Engine, ShardError
from repro.sim.shardcodec import (
    LOG_BASE,
    LOG_CLIENT_LOOKUP,
    LOG_CLIENT_RETRY,
    LOG_CLIENT_TIMEOUT,
    LOG_COMPLETION,
    LOG_COMPLETION_ARGS,
    LOG_DROP,
    LOG_FLOAT_ARG,
    LOG_FORWARD,
    LOG_INJECTED,
    LOG_LEVEL_ARG,
    LOG_LOAD,
    LOG_REPLICA_CREATED,
    LOG_REPLICA_EVICTED,
    LOG_STALE_HOP,
    LOG_STR_ARG,
    OP_EXIT,
    OP_FINISH,
    OP_INIT,
    OP_STEP,
    ST_ERROR,
    ST_OK,
    ST_PAYLOAD,
    ST_STEP,
    ArrivalBatch,
    PackedLog,
    decode_batch,
    decode_stats_log,
    decode_step_reply,
    decode_step_request,
    encode_batch,
    encode_step_reply,
    encode_step_request,
    require_encodable,
)
from repro.sim.stats import StatsSink, SystemStats
from repro.workload.arrivals import WorkloadDriver, iter_arrivals
from repro.workload.streams import WorkloadSpec

__all__ = [
    "MergedRun",
    "ShardEngine",
    "ShardRecorder",
    "ShardResult",
    "ShardRunner",
    "WindowedCoordinator",
    "replay_stats",
    "resolve_backend",
    "resolve_shards",
    "run_fingerprint",
    "run_sharded_workload",
    "stats_fingerprint",
    "window_plan",
]


class ShardEngine(Engine):
    """An :class:`~repro.sim.engine.Engine` that knows which shard it is.

    Pure bookkeeping on top of the base engine: the shard id names the
    engine in errors/repr and ``n_windows`` counts barrier crossings.
    Dispatch semantics are exactly the base class's.
    """

    __slots__ = ("shard_id", "n_windows")

    def __init__(self, shard_id: int = 0) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.n_windows = 0

    def run_window(self, end: float, inclusive: bool = False) -> None:
        super().run_window(end, inclusive)
        self.n_windows += 1

    def __repr__(self) -> str:
        return (
            f"ShardEngine(shard={self.shard_id}, now={self.now:.6f}, "
            f"pending={len(self._heap)}, windows={self.n_windows})"
        )


def _make_shard_engine(shard_id: int) -> Engine:
    """One engine per shard; profiled (and registered) when profiling is on."""
    if profile.is_active():
        return profile.make_engine(label=f"shard{shard_id}")
    return ShardEngine(shard_id)


# ----------------------------------------------------------------------
# per-shard stats event log + canonical-order replay
# ----------------------------------------------------------------------

# log record codes (index = StatsSink hook); the wire layouts live in
# repro.sim.shardcodec, re-exported here under the historical names
_INJECTED = LOG_INJECTED
_DROP = LOG_DROP
_COMPLETION = LOG_COMPLETION
_FORWARD = LOG_FORWARD
_STALE_HOP = LOG_STALE_HOP
_REPLICA_CREATED = LOG_REPLICA_CREATED
_REPLICA_EVICTED = LOG_REPLICA_EVICTED
_LOAD = LOG_LOAD
_CLIENT_LOOKUP = LOG_CLIENT_LOOKUP
_CLIENT_TIMEOUT = LOG_CLIENT_TIMEOUT
_CLIENT_RETRY = LOG_CLIENT_RETRY


class ShardRecorder(StatsSink):
    """Logs every stats hook as a timestamped record instead of folding
    it into aggregates.

    Aggregating per shard and summing at the end would lose bitwise
    equality with the serial run: float accumulation order, histogram
    dict insertion order, and per-bin maxima all depend on the *global*
    event order.  The log keeps that order recoverable: replaying all
    shards' logs merged by ``(time, shard, index)`` into one fresh
    :class:`~repro.sim.stats.SystemStats` performs the exact additions
    the serial collector performed, in the same order.

    Records are appended straight into a flat byte buffer (the
    :class:`~repro.sim.shardcodec.PackedLog` wire layouts) with drop
    reasons and forward sources interned into a small string table --
    the process backend ships the buffer as-is and the coordinator
    decodes it exactly once at finish, instead of pickling one Python
    tuple per event.

    ``record_forward`` is the one hook without a ``now`` argument; the
    recorder stamps it from its engine reference.
    """

    __slots__ = ("engine", "_data", "_strings", "_sidx", "n")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._data = bytearray()
        self._strings: List[str] = []
        self._sidx: Dict[str, int] = {}
        self.n = 0

    def _intern(self, s: str) -> int:
        i = self._sidx.get(s)
        if i is None:
            i = self._sidx[s] = len(self._strings)
            self._strings.append(s)
            if i > 0xFFFF:  # pragma: no cover - vocabulary is tiny
                raise ShardError("stats string table overflow (u16 index)")
        return i

    def packed(self) -> PackedLog:
        """The log so far as a picklable flat-bytes payload."""
        return PackedLog(bytes(self._data), tuple(self._strings), self.n)

    def record_injected(self, now: float) -> None:
        self._data += LOG_BASE.pack(now, LOG_INJECTED)
        self.n += 1

    def record_drop(self, now: float, reason: str = "queue") -> None:
        self._data += LOG_STR_ARG.pack(now, LOG_DROP, self._intern(reason))
        self.n += 1

    def record_completion(
        self, now: float, latency: float, hops: int, stale_hops: int
    ) -> None:
        self._data += LOG_COMPLETION_ARGS.pack(
            now, LOG_COMPLETION, latency, hops, stale_hops
        )
        self.n += 1

    def record_forward(self, source: str) -> None:
        self._data += LOG_STR_ARG.pack(
            self.engine.now, LOG_FORWARD, self._intern(source)
        )
        self.n += 1

    def record_stale_hop(self, now: float) -> None:
        self._data += LOG_BASE.pack(now, LOG_STALE_HOP)
        self.n += 1

    def record_replica_created(self, now: float, level: int) -> None:
        self._data += LOG_LEVEL_ARG.pack(now, LOG_REPLICA_CREATED, level)
        self.n += 1

    def record_replica_evicted(self, now: float, level: int) -> None:
        self._data += LOG_LEVEL_ARG.pack(now, LOG_REPLICA_EVICTED, level)
        self.n += 1

    def sample_load(self, now: float, load: float) -> None:
        self._data += LOG_FLOAT_ARG.pack(now, LOG_LOAD, load)
        self.n += 1

    def record_client_lookup(self, now: float) -> None:
        self._data += LOG_BASE.pack(now, LOG_CLIENT_LOOKUP)
        self.n += 1

    def record_client_timeout(self, now: float) -> None:
        self._data += LOG_BASE.pack(now, LOG_CLIENT_TIMEOUT)
        self.n += 1

    def record_client_retry(self, now: float) -> None:
        self._data += LOG_BASE.pack(now, LOG_CLIENT_RETRY)
        self.n += 1


_REPLAY_HOOKS = {
    _INJECTED: SystemStats.record_injected,
    _DROP: SystemStats.record_drop,
    _COMPLETION: SystemStats.record_completion,
    _STALE_HOP: SystemStats.record_stale_hop,
    _REPLICA_CREATED: SystemStats.record_replica_created,
    _REPLICA_EVICTED: SystemStats.record_replica_evicted,
    _LOAD: SystemStats.sample_load,
    _CLIENT_LOOKUP: SystemStats.record_client_lookup,
    _CLIENT_TIMEOUT: SystemStats.record_client_timeout,
    _CLIENT_RETRY: SystemStats.record_client_retry,
}


def replay_stats(
    logs: Sequence[Union[PackedLog, List[tuple]]], max_depth: int
) -> SystemStats:
    """Merge per-shard logs and replay them into one fresh collector.

    Streams are merged by ``(timestamp, shard_id, log_index)`` --
    within a shard the log index is execution order, and across shards
    simultaneous records come out in shard order, which (contiguous
    shard blocks, ascending-sid local loops) equals the serial run's
    ascending-sid order for the only simultaneous cross-shard records
    there are: per-server maintenance samples.

    Accepts packed logs (the recorder's wire form, decoded here exactly
    once) or pre-expanded tuple lists interchangeably.
    """
    expanded: List[List[tuple]] = [
        decode_stats_log(log) if isinstance(log, PackedLog) else log
        for log in logs
    ]
    logs = expanded
    stats = SystemStats(max_depth)

    def keyed(
        shard_id: int, log: List[tuple]
    ) -> Iterator[Tuple[float, int, int, tuple]]:
        # a real function, not a nested genexp: the genexp would look
        # up shard_id lazily and stamp every stream with the last one
        return ((rec[0], shard_id, idx, rec) for idx, rec in enumerate(log))

    streams = [keyed(i, log) for i, log in enumerate(logs)]
    forward = SystemStats.record_forward
    hooks = _REPLAY_HOOKS
    for _, _, _, rec in heapq.merge(*streams):
        code = rec[1]
        if code == _FORWARD:
            forward(stats, rec[2])
        else:
            hooks[code](stats, rec[0], *rec[2:])
    return stats


# ----------------------------------------------------------------------
# one shard: system + recorder + window stepping
# ----------------------------------------------------------------------


class ShardResult:
    """Everything a finished shard ships back to the coordinator.

    Plain picklable payload (the process backend sends one per shard
    over a pipe): the stats event log plus per-server simulation-owned
    state, in ascending-sid order.
    """

    __slots__ = (
        "shard_id",
        "log",
        "n_sent",
        "n_control_sent",
        "n_lost",
        "now",
        "n_dispatched",
        "n_windows",
        "local_sids",
        "processed_by_sid",
        "queue_drops_by_sid",
        "replicas_by_sid",
        "hosted_by_sid",
        "data_plane",
    )

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw.pop(name))
        if kw:
            raise TypeError(f"unexpected fields {sorted(kw)}")

    def __getstate__(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:
        return (
            f"ShardResult(shard={self.shard_id}, events={self.n_dispatched}, "
            f"log={len(self.log)} records)"
        )


class ShardRunner:
    """Owns one shard's system and steps it window by window."""

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        shard_id: int,
        n_shards: int,
        owner: Sequence[int],
        arrivals: Sequence[Tuple[float, int, int, int]],
    ) -> None:
        engine = _make_shard_engine(shard_id)
        self.recorder = ShardRecorder(engine)
        self.system = build_shard_system(
            ns, cfg, shard_id, n_shards, owner=owner, engine=engine,
            stats=self.recorder,
        )
        self.system.feed(arrivals)
        self.system.start_maintenance()
        # wall-clock codec accounting (profile output only -- never
        # part of any fingerprint)
        self.encode_s = 0.0
        self.decode_s = 0.0
        self.bytes_in = 0
        self.bytes_out = 0

    def next_time(self) -> float:
        """Earliest pending local event (+inf when the heap is empty).

        The coordinator takes the minimum across shards to decide how
        many empty windows it may coalesce past without a barrier.  A
        lazily-cancelled event may report an earlier time than any live
        event -- that only makes coalescing more conservative.
        """
        t = self.system.engine.peek_time()
        return math.inf if t is None else t

    def step(
        self, end: float, inclusive: bool, batches: List[List[tuple]]
    ) -> Tuple[Dict[int, List[tuple]], float]:
        """Ingest the barrier's batches, run one window, return egress
        plus this shard's next pending event time."""
        transport = self.system.transport
        transport.ingest(batches)
        self.system.engine.run_window(end, inclusive)
        return transport.collect_egress(), self.next_time()

    def step_packed(
        self, end: float, inclusive: bool, frames: Sequence[Any]
    ) -> Tuple[List[Tuple[int, bytes]], float]:
        """The packed-codec variant of :meth:`step`.

        Ingress and egress are codec frames
        (:mod:`repro.sim.shardcodec`); message objects exist only
        inside this shard, never on the pipe.  Egress frames come back
        in ascending destination-shard order (the same order
        ``collect_egress`` + sorted routing produces).
        """
        t0 = perf_counter()
        batches = [decode_batch(f) for f in frames]
        self.decode_s += perf_counter() - t0
        self.bytes_in += sum(len(f) for f in frames)
        transport = self.system.transport
        transport.ingest(batches)
        self.system.engine.run_window(end, inclusive)
        out = transport.collect_egress()
        t1 = perf_counter()
        dest_frames = [
            (dest, encode_batch(out[dest])) for dest in sorted(out)
        ]
        self.encode_s += perf_counter() - t1
        self.bytes_out += sum(len(f) for _, f in dest_frames)
        return dest_frames, self.next_time()

    def finish(self) -> ShardResult:
        system = self.system
        transport = system.transport
        engine = system.engine
        peers = system.local_peers
        return ShardResult(
            shard_id=system.shard_id,
            log=self.recorder.packed(),
            n_sent=transport.n_sent,
            n_control_sent=transport.n_control_sent,
            n_lost=transport.n_lost,
            now=engine.now,
            n_dispatched=engine.n_dispatched,
            n_windows=getattr(engine, "n_windows", 0),
            local_sids=list(system.local_sids),
            processed_by_sid=[p.n_processed for p in peers],
            queue_drops_by_sid=[p.n_queue_drops for p in peers],
            replicas_by_sid=[sorted(p.replicas) for p in peers],
            hosted_by_sid=[sorted(p.hosted_list) for p in peers],
            data_plane={
                "encode_s": self.encode_s,
                "decode_s": self.decode_s,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
            },
        )


# ----------------------------------------------------------------------
# the merged outcome: a read-only stand-in for a finished System
# ----------------------------------------------------------------------


class _EngineView:
    __slots__ = ("now", "n_dispatched")

    def __init__(self, now: float, n_dispatched: int) -> None:
        self.now = now
        self.n_dispatched = n_dispatched


class _TransportView:
    __slots__ = ("n_sent", "n_control_sent", "n_lost")

    def __init__(self, n_sent: int, n_control_sent: int, n_lost: int) -> None:
        self.n_sent = n_sent
        self.n_control_sent = n_control_sent
        self.n_lost = n_lost


class MergedRun:
    """The merged outcome of a sharded run, shaped like a finished
    :class:`~repro.cluster.system.System`.

    Carries exactly the read surface the analysis layer touches
    (``stats``, ``engine.now``, transport counters,
    :meth:`total_replicas`, :meth:`hosted_counts`), so
    :func:`repro.analysis.summary.run_summary` and
    :func:`repro.analysis.series.rate_series` work on it unchanged.
    Per-sid lists are global (all shards concatenated in shard order,
    which is ascending sid).
    """

    __slots__ = (
        "ns",
        "cfg",
        "stats",
        "engine",
        "transport",
        "n_shards",
        "n_windows",
        "processed_by_sid",
        "queue_drops_by_sid",
        "replicas_by_sid",
        "hosted_by_sid",
        "data_plane",
    )

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        results: Sequence[ShardResult],
        stats: SystemStats,
        until: float,
        data_plane: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.ns = ns
        self.cfg = cfg
        self.stats = stats
        self.data_plane = {} if data_plane is None else data_plane
        self.n_shards = len(results)
        self.n_windows = max((r.n_windows for r in results), default=0)
        self.engine = _EngineView(
            until, sum(r.n_dispatched for r in results)
        )
        self.transport = _TransportView(
            sum(r.n_sent for r in results),
            sum(r.n_control_sent for r in results),
            sum(r.n_lost for r in results),
        )
        self.processed_by_sid: List[int] = []
        self.queue_drops_by_sid: List[int] = []
        self.replicas_by_sid: List[List[int]] = []
        self.hosted_by_sid: List[List[int]] = []
        for r in results:
            self.processed_by_sid.extend(r.processed_by_sid)
            self.queue_drops_by_sid.extend(r.queue_drops_by_sid)
            self.replicas_by_sid.extend(r.replicas_by_sid)
            self.hosted_by_sid.extend(r.hosted_by_sid)

    def total_replicas(self) -> int:
        return sum(len(r) for r in self.replicas_by_sid)

    def hosted_counts(self) -> List[int]:
        return [len(h) for h in self.hosted_by_sid]

    def __repr__(self) -> str:
        return (
            f"MergedRun(shards={self.n_shards}, "
            f"servers={len(self.processed_by_sid)}, "
            f"t={self.engine.now:.2f}, windows={self.n_windows})"
        )


# ----------------------------------------------------------------------
# fingerprints (sharded-determinism checks in tests and CI)
# ----------------------------------------------------------------------


def stats_fingerprint(stats: SystemStats) -> Dict[str, Any]:
    """Every collector accumulator, JSON-shaped, bit-faithful.

    Floats go in un-rounded: the sharded contract is *bitwise* equality
    with the serial run, so ``json.dumps`` of two fingerprints must
    match byte for byte.
    """
    return {
        "injected": stats.n_injected,
        "completed": stats.n_completed,
        "dropped": stats.n_dropped,
        "drop_reasons": dict(stats.drop_reasons),
        "stale_hops": stats.n_stale_hops,
        "hops_sum": stats.hops_sum,
        "route_sources": dict(stats.route_sources),
        "level_replicas": list(stats.level_replicas),
        "level_evictions": list(stats.level_evictions),
        "client": [
            stats.n_client_lookups,
            stats.n_client_timeouts,
            stats.n_client_retries,
        ],
        "latency": [
            stats.latency.count,
            stats.latency.total,
            stats.latency.max,
            sorted(stats.latency._hist.items()),
        ],
        "series": {
            name: getattr(stats, name).totals()
            for name in (
                "injected", "drops", "completions",
                "replicas_created", "replicas_evicted",
            )
        },
        "loads": [
            stats.loads.totals(),
            stats.loads.means(),
            stats.loads.maxima(),
        ],
    }


def run_fingerprint(run: Any) -> Dict[str, Any]:
    """Full-run fingerprint of a finished ``System`` or ``MergedRun``.

    Covers simulation-owned per-server state *and* the stats collector;
    deliberately excludes ``engine.n_dispatched`` -- the sharded run
    legitimately dispatches different bookkeeping events (per-shard
    feeders and drains) while producing identical simulation state.
    """
    if isinstance(run, MergedRun):
        per_sid = {
            "processed": list(run.processed_by_sid),
            "queue_drops": list(run.queue_drops_by_sid),
            "replicas": [list(r) for r in run.replicas_by_sid],
            "hosted": [list(h) for h in run.hosted_by_sid],
        }
    else:
        per_sid = {
            "processed": [p.n_processed for p in run.peers],
            "queue_drops": [p.n_queue_drops for p in run.peers],
            "replicas": [sorted(p.replicas) for p in run.peers],
            "hosted": [sorted(p.hosted_list) for p in run.peers],
        }
    fp = dict(per_sid)
    fp["now"] = run.engine.now
    fp["transport"] = [
        run.transport.n_sent, run.transport.n_control_sent,
        run.transport.n_lost,
    ]
    fp["replicas_live"] = run.total_replicas()
    stats = run.stats
    fp["stats"] = (
        stats_fingerprint(stats) if isinstance(stats, SystemStats) else None
    )
    return fp


# ----------------------------------------------------------------------
# window schedule
# ----------------------------------------------------------------------


def window_plan(
    net_delay: float, until: float
) -> Iterator[Tuple[float, bool]]:
    """Yield ``(window_end, inclusive)`` barrier points covering
    ``[0, until]``.

    Ends accumulate by repeated addition (``end += net_delay``) rather
    than multiplication (``k * net_delay``) -- deliberately, because
    delivery times accumulate the same way (``now + net_delay``) and
    correctly rounded float addition is monotone: a send at ``t >=
    end_k`` delivers at ``t + d >= end_k + d == end_{k+1}`` *as
    floats*, so no delivery can land inside an already-executed window
    even where ``k * d`` and ``(k-1) * d + d`` would disagree by an
    ulp.  All windows are end-exclusive except the last, which lands
    inclusively on ``until`` to match the serial engine's
    ``run(until)`` stopping rule.
    """
    if net_delay <= 0:
        raise ShardError("window width must be positive (net_delay > 0)")
    if until <= 0:
        raise ValueError("until must be > 0")
    end = net_delay
    while end < until:
        yield end, False
        end += net_delay
    yield until, True


# ----------------------------------------------------------------------
# shard-count / backend resolution
# ----------------------------------------------------------------------


def resolve_shards(
    requested: Optional[int] = None, n_servers: Optional[int] = None
) -> int:
    """Effective shard count: explicit argument, else ``REPRO_SHARDS``.

    ``REPRO_SHARDS`` accepts a positive integer, ``auto`` (cpu count),
    or unset/``0``/``none`` for serial.  The count is clamped to
    ``n_servers`` when given -- more shards than servers would leave
    empty engines whose barriers cost time and buy nothing.
    """
    n = requested
    if n is None:
        # det: ok(env-read) -- sanctioned run-level knob: resolved once
        # here before any engine starts, mirroring REPRO_WORKERS in the
        # parallel.py choke point (DESIGN.md section 12)
        raw = os.environ.get("REPRO_SHARDS", "").strip().lower()
        if raw in ("", "0", "none", "off"):
            n = 1
        elif raw == "auto":
            n = os.cpu_count() or 1
        else:
            try:
                n = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_SHARDS={raw!r} is not an integer, 'auto', or unset"
                ) from None
    if n < 1:
        raise ValueError(f"shard count must be >= 1, got {n}")
    if n_servers is not None:
        n = min(n, n_servers)
    return n


def resolve_backend(requested: Optional[str] = None, n_shards: int = 1) -> str:
    """Pick ``inline`` or ``process`` for a sharded run.

    Explicit argument wins, else ``REPRO_SHARD_BACKEND``, else
    ``auto``.  ``auto`` chooses processes only when the CPU budget
    (:func:`repro.experiments.parallel.shard_process_budget`, which
    already accounts for campaign-level ``REPRO_WORKERS``) covers every
    shard -- it never oversubscribes.  An explicit ``process`` request
    always gets processes, with a warning when that oversubscribes the
    machine.  Profiling forces ``inline``: profiled engines must live
    in this process to be read afterwards.
    """
    from repro.experiments.parallel import shard_process_budget

    # det: ok(env-read) -- sanctioned run-level knob: resolved once here
    # before any engine starts; the backend never alters fingerprints
    b = requested or os.environ.get("REPRO_SHARD_BACKEND", "").strip().lower()
    b = b or "auto"
    if b not in ("auto", "inline", "process"):
        raise ValueError(
            f"unknown shard backend {b!r}; choose auto, inline, or process"
        )
    if b == "inline" or n_shards <= 1:
        return "inline"
    if profile.is_active():
        if b == "process":
            warnings.warn(
                "profiling is active: shard workers would take their "
                "profiles with them; running shards inline",
                RuntimeWarning,
                stacklevel=2,
            )
        return "inline"
    budget = shard_process_budget()
    if b == "auto":
        return "process" if budget >= n_shards else "inline"
    if budget < n_shards:
        warnings.warn(
            f"REPRO_SHARD_BACKEND=process with {n_shards} shards "
            f"oversubscribes the CPU budget ({budget} free after "
            "campaign workers); expect contention, not speedup",
            RuntimeWarning,
            stacklevel=2,
        )
    return "process"


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------


class WindowedCoordinator:
    """Lock-steps N shard engines through ``net_delay``-wide windows.

    Owns the global pieces of a sharded run: the pre-generated arrival
    schedule (global query ids, partitioned by source shard), the
    window plan, the per-barrier egress exchange, and the final merge
    into a :class:`MergedRun`.  Backends: ``inline`` steps every shard
    in this process (debugging, profiling, tests); ``process`` keeps
    one persistent worker process per shard with a single pipe
    round-trip per window.
    """

    def __init__(
        self,
        ns: Namespace,
        cfg: SystemConfig,
        spec: WorkloadSpec,
        n_shards: int,
        backend: str = "inline",
        codec: bool = False,
    ) -> None:
        if cfg.net_jitter > 0:
            raise ShardError(
                "sharded execution requires constant delivery delay "
                f"(net_jitter={cfg.net_jitter}); run with net_jitter=0 "
                "or on the serial engine"
            )
        if cfg.net_delay <= 0:
            raise ShardError(
                "sharded execution requires net_delay > 0 "
                "(the window width equals the delivery delay)"
            )
        if cfg.oracle_maps:
            raise ShardError(
                "oracle_maps consults ground-truth peer state across "
                "shards; run oracle comparisons on the serial engine"
            )
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.ns = ns
        self.cfg = cfg
        self.spec = spec
        self.n_shards = resolve_shards(n_shards, cfg.n_servers)
        self.backend = backend
        # the process backend always runs the packed data plane (that
        # is its whole point); `codec=True` makes the inline backend
        # round-trip every barrier through the codec too, which is how
        # tests and the bench pin frame-level determinism in-process
        self.codec = bool(codec) or backend == "process"
        if self.codec:
            from repro.server.peer import PEER_DISPATCH

            require_encodable(PEER_DISPATCH.types())
        self.n_windows = 0
        self.n_coalesced = 0
        self.barrier_wait_s = 0.0
        self.bytes_exchanged = 0
        self.data_plane: Dict[str, Any] = {}
        self.owner = _resolve_owner(ns, cfg, None)
        # pre-generate the arrival schedule: global qids in arrival
        # order, partitioned by the source server's shard, then packed
        # into flat columns (24 bytes/arrival on the worker pipes
        # instead of a pickled tuple of four boxed numbers)
        per_shard: List[List[Tuple[float, int, int, int]]] = [
            [] for _ in range(self.n_shards)
        ]
        n_servers = cfg.n_servers
        qid = 0
        for t, src, dest in iter_arrivals(spec, len(ns), n_servers):
            qid += 1
            per_shard[shard_of_sid(src, n_servers, self.n_shards)].append(
                (t, src, dest, qid)
            )
        self.arrivals = [ArrivalBatch(rows) for rows in per_shard]

    # ------------------------------------------------------------------

    def run(self, until: float) -> MergedRun:
        """Advance every shard to ``until``; return the merged run.

        Window coalescing: after a barrier at which *every* shard's
        egress was empty, let ``nt_min`` be the minimum over shards of
        the next pending local event time.  Every subsequent
        non-inclusive window end ``e <= nt_min`` is skipped without a
        barrier -- those sub-windows provably contain no events (all
        pending events are at ``>= nt_min``), so when the loop finally
        steps to the first end past ``nt_min``, every event it executes
        lies in the *final* skipped-to sub-window and its sends deliver
        at or after that window's end, exactly as if each empty window
        had been stepped individually.  The final inclusive window is
        never skipped (it must land every clock on ``until``).
        """
        stepper: Union[_ProcessStepper, _InlineStepper] = (
            _ProcessStepper(self) if self.backend == "process"
            else _InlineStepper(self)
        )
        profile.note_coordinator(self)
        try:
            inboxes: List[List[Any]] = [[] for _ in range(self.n_shards)]
            pending = False  # any cross-shard mail at the last barrier?
            next_min: Optional[float] = None
            for end, inclusive in window_plan(self.cfg.net_delay, until):
                if (
                    not inclusive
                    and not pending
                    and next_min is not None
                    and end <= next_min
                ):
                    self.n_coalesced += 1
                    continue
                outs, next_min = stepper.step_all(end, inclusive, inboxes)
                inboxes = self._route(outs)
                pending = any(inboxes)
                self.n_windows += 1
            if pending:
                # cross-shard messages landing at exactly `until` (sent
                # at exactly `until - net_delay`): the serial engine's
                # inclusive stop delivers them, so drain one more
                # inclusive pass at the same instant.  Anything later
                # stays undelivered, exactly like serial in-flight mail.
                stepper.step_all(until, True, inboxes)
            results = stepper.finish_all()
        finally:
            stepper.close()
        stats = replay_stats([r.log for r in results], self.ns.max_depth)
        self.data_plane = {
            "backend": self.backend,
            "codec": self.codec,
            "n_barriers": self.n_windows,
            "n_coalesced": self.n_coalesced,
            "barrier_wait_s": self.barrier_wait_s,
            "bytes_exchanged": self.bytes_exchanged,
            "encode_s": sum(r.data_plane["encode_s"] for r in results),
            "decode_s": sum(r.data_plane["decode_s"] for r in results),
        }
        return MergedRun(
            self.ns, self.cfg, results, stats, until,
            data_plane=self.data_plane,
        )

    def _route(self, outs: Sequence[Dict[int, Any]]) -> List[List[Any]]:
        """Turn per-shard egress dicts into per-shard ingest batches.

        Batches are appended in ascending source-shard order so every
        shard merges the same barrier the same way no matter which
        backend delivered it.  With the codec on, a batch is a packed
        frame (bytes) the coordinator routes without decoding; the
        canonical merge key rides in each record's header.
        """
        inboxes: List[List[Any]] = [[] for _ in range(self.n_shards)]
        for src in range(self.n_shards):
            out = outs[src]
            for dest in sorted(out):
                batch = out[dest]
                if not isinstance(batch, list):
                    self.bytes_exchanged += len(batch)
                inboxes[dest].append(batch)
        return inboxes

    def _runner_args(self, shard_id: int) -> tuple:
        return (
            self.ns, self.cfg, shard_id, self.n_shards, self.owner,
            self.arrivals[shard_id],
        )


class _InlineStepper:
    """All shards in this process, stepped round-robin.

    With ``codec`` on, every barrier's egress is round-tripped through
    the packed frames (encode on collect, decode on ingest) even though
    no pipe is involved -- the in-process way to pin codec determinism.
    """

    def __init__(self, coord: WindowedCoordinator) -> None:
        self.codec = coord.codec
        self.runners = [
            ShardRunner(*coord._runner_args(i))
            for i in range(coord.n_shards)
        ]

    def step_all(
        self, end: float, inclusive: bool, inboxes: Sequence[List[Any]]
    ) -> Tuple[List[Dict[int, Any]], float]:
        outs: List[Dict[int, Any]] = []
        next_min = math.inf
        if self.codec:
            for i, r in enumerate(self.runners):
                dest_frames, nt = r.step_packed(end, inclusive, inboxes[i])
                outs.append(dict(dest_frames))
                if nt < next_min:
                    next_min = nt
        else:
            for i, r in enumerate(self.runners):
                out, nt = r.step(end, inclusive, inboxes[i])
                outs.append(out)
                if nt < next_min:
                    next_min = nt
        return outs, next_min

    def finish_all(self) -> List[ShardResult]:
        return [r.finish() for r in self.runners]

    def close(self) -> None:
        pass


class _ProcessStepper:
    """One persistent worker process per shard, pure-bytes pipes.

    Workers are long-lived (spawned once, one pipe round-trip per
    window) because shard state -- the engine heap, every peer --
    cannot cross process boundaries between windows.  All sends go out
    before any receive so shards genuinely run their windows in
    parallel.

    Pickle appears exactly twice in a worker's lifetime: the init
    arguments and the final :class:`ShardResult`.  Everything else --
    every window request, every egress batch, the final stats log
    inside the result -- is flat packed bytes
    (:mod:`repro.sim.shardcodec`), and the namespace arenas plus the
    owner assignment arrive as an :class:`~repro.namespace.tree.ArenaHandle`
    into one shared read-only memory block instead of per-worker
    copies.
    """

    def __init__(self, coord: WindowedCoordinator) -> None:
        import pickle

        from repro.experiments.parallel import PersistentWorker

        self.coord = coord
        self.workers: List[PersistentWorker] = []
        self.arenas = None
        self._window = 0
        try:
            self.arenas = export_arenas(coord.ns, owner=coord.owner)
            handle = self.arenas.handle
            for i in range(coord.n_shards):
                self.workers.append(PersistentWorker(_shard_worker_main))
            for i, w in enumerate(self.workers):
                w.send_frame(bytes((OP_INIT,)) + pickle.dumps(
                    (handle, coord.cfg, i, coord.n_shards,
                     coord.arrivals[i])
                ))
            for i, w in enumerate(self.workers):
                self._check(i, w.recv_frame(), ST_OK)
        except BaseException:
            self.close()
            raise

    def _check(self, shard_id: int, payload: bytes, want: int) -> bytes:
        """Validate a reply's status byte; surface worker tracebacks."""
        if not payload or payload[0] != want:
            detail = (
                payload[1:].decode("utf-8", "replace") if payload else "EOF"
            )
            self._teardown()
            raise ShardError(
                f"shard {shard_id} worker failed at window "
                f"{self._window}:\n{detail}"
            )
        return payload

    def step_all(
        self, end: float, inclusive: bool, inboxes: Sequence[List[Any]]
    ) -> Tuple[List[Dict[int, Any]], float]:
        from repro.experiments.parallel import ParallelTaskError

        self._window += 1
        for i, w in enumerate(self.workers):
            try:
                w.send_frame(encode_step_request(end, inclusive, inboxes[i]))
            except ParallelTaskError as exc:
                self._teardown()
                raise ShardError(
                    f"shard {i} worker died at window {self._window} "
                    f"(end={end}): {exc}"
                ) from None
        outs: List[Dict[int, Any]] = []
        next_min = math.inf
        t0 = perf_counter()
        for i, w in enumerate(self.workers):
            try:
                payload = w.recv_frame()
            except ParallelTaskError as exc:
                self._teardown()
                raise ShardError(
                    f"shard {i} worker died at window {self._window} "
                    f"(end={end}): {exc}"
                ) from None
            self._check(i, payload, ST_STEP)
            nt, dest_frames = decode_step_reply(memoryview(payload)[1:])
            # frames stay zero-copy views into the reply payload; the
            # routed inbox holds them alive until the next send
            outs.append(dict(dest_frames))
            if nt < next_min:
                next_min = nt
        self.coord.barrier_wait_s += perf_counter() - t0
        return outs, next_min

    def finish_all(self) -> List[ShardResult]:
        import pickle

        from repro.experiments.parallel import ParallelTaskError

        results: List[ShardResult] = []
        for w in self.workers:
            w.send_frame(bytes((OP_FINISH,)))
        for i, w in enumerate(self.workers):
            try:
                payload = w.recv_frame()
            except ParallelTaskError as exc:
                self._teardown()
                raise ShardError(
                    f"shard {i} worker died during finish: {exc}"
                ) from None
            self._check(i, payload, ST_PAYLOAD)
            results.append(pickle.loads(memoryview(payload)[1:]))
        return results

    def _teardown(self) -> None:
        """Kill remaining workers after one died; idempotent."""
        for w in self.workers:
            w.close(sentinel=bytes((OP_EXIT,)))
        self.workers = []

    def close(self) -> None:
        self._teardown()
        if self.arenas is not None:
            self.arenas.close()
            self.arenas = None


def _shard_worker_main(conn: "Connection") -> None:
    """Worker-process loop: attach arenas, init once, step per barrier.

    The protocol is bytes frames in both directions: request op byte +
    body, reply status byte + body (:mod:`repro.sim.shardcodec`).
    """
    import pickle
    import traceback

    runner: Optional[ShardRunner] = None
    attached = None
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except EOFError:  # parent went away
                return
            op = payload[0]
            body = memoryview(payload)[1:]
            if op == OP_STEP:
                end, inclusive, frames = decode_step_request(body)
                assert runner is not None
                dest_frames, nt = runner.step_packed(end, inclusive, frames)
                conn.send_bytes(encode_step_reply(nt, dest_frames))
            elif op == OP_INIT:
                handle, cfg, shard_id, n_shards, arrivals = \
                    pickle.loads(body)
                # attach the shared arenas; `attached` pins the mapping
                # (and the owner view) for the worker's whole life
                attached = handle.attach()
                runner = ShardRunner(
                    attached.ns, cfg, shard_id, n_shards,
                    attached.owner, arrivals,
                )
                conn.send_bytes(bytes((ST_OK,)))
            elif op == OP_FINISH:
                assert runner is not None
                conn.send_bytes(
                    bytes((ST_PAYLOAD,)) + pickle.dumps(runner.finish())
                )
            elif op == OP_EXIT:
                return
            else:  # pragma: no cover - protocol misuse
                conn.send_bytes(
                    bytes((ST_ERROR,)) + f"unknown op {op}".encode("utf-8")
                )
                return
    except BaseException:
        try:
            conn.send_bytes(
                bytes((ST_ERROR,)) + traceback.format_exc().encode("utf-8")
            )
        except OSError:  # pragma: no cover - pipe already closed
            pass
    finally:
        if attached is not None:
            attached.close()
        conn.close()


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------


def run_sharded_workload(
    ns: Namespace,
    cfg: SystemConfig,
    spec: WorkloadSpec,
    until: float,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
) -> Any:
    """Run one workload to ``until``, sharded when asked and possible.

    The experiment-facing entry point: shard count comes from
    ``shards`` or ``REPRO_SHARDS`` (default 1 = the plain serial
    engine, zero new machinery on that path), backend from ``backend``
    or ``REPRO_SHARD_BACKEND``.  Configs the windowed protocol cannot
    handle (jitter, zero delay, oracle maps) raise
    :class:`ShardError` inside the coordinator; this wrapper warns and
    falls back to the serial engine, which handles everything.

    Returns the finished :class:`~repro.cluster.system.System` (serial)
    or :class:`MergedRun` (sharded); both carry the full analysis read
    surface, and fixed-seed fingerprints are bit-identical either way.
    """
    n = resolve_shards(shards, cfg.n_servers)
    if n > 1:
        try:
            coord = WindowedCoordinator(
                ns, cfg, spec, n, backend=resolve_backend(backend, n)
            )
        except ShardError as exc:
            warnings.warn(
                f"sharded run unavailable ({exc}); falling back to the "
                "serial engine",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            return coord.run(until)
    system = build_system(ns, cfg)
    WorkloadDriver(system, spec).start()
    system.run_until(until)
    return system


# ----------------------------------------------------------------------
# CLI: python -m repro shard-check [--shards 1,2,4] ...
# ----------------------------------------------------------------------


def main(argv: List[str]) -> int:
    """Sharded-determinism check: serial vs N-shard fingerprints.

    Runs a small fig9-style point once on the serial engine and once
    per requested shard count, and compares full-run fingerprints
    byte for byte (CI runs this with ``--shards 1,4``).
    """
    import argparse
    import json

    from repro.namespace.generators import balanced_tree

    parser = argparse.ArgumentParser(
        prog="python -m repro shard-check",
        description="verify sharded runs are bit-identical to serial",
    )
    parser.add_argument(
        "--shards", default="1,4",
        help="comma-separated shard counts to verify (default: 1,4)",
    )
    parser.add_argument(
        "--levels", type=int, default=7,
        help="namespace tree depth (default: 7)",
    )
    parser.add_argument(
        "--servers", type=int, default=16,
        help="server count (default: 16)",
    )
    parser.add_argument(
        "--duration", type=float, default=4.0,
        help="workload duration in simulated seconds (default: 4)",
    )
    parser.add_argument(
        "--backend", default="inline", choices=("inline", "process"),
        help="shard backend to exercise (default: inline)",
    )
    parser.add_argument(
        "--codec", action="store_true",
        help="force the packed egress codec on the inline backend "
        "(the process backend always uses it)",
    )
    args = parser.parse_args(argv)
    counts = [int(c) for c in args.shards.split(",") if c.strip()]

    from repro.workload.streams import cuzipf_stream

    ns = balanced_tree(levels=args.levels)
    cfg = SystemConfig.replicated(
        n_servers=args.servers, seed=1009, cache_slots=16
    )
    phase = args.duration / 2.0
    spec = cuzipf_stream(
        rate=400.0, alpha=1.0, warmup=phase, phase=phase, n_phases=1,
        seed=1009,
    )
    until = spec.duration + 1.0

    system = build_system(ns, cfg)
    WorkloadDriver(system, spec).start()
    system.run_until(until)
    ref = json.dumps(run_fingerprint(system), sort_keys=True)
    print(
        f"serial: servers={args.servers} until={until} "
        f"fingerprint={len(ref)}B"
    )

    failed = False
    for n in counts:
        coord = WindowedCoordinator(
            ns, cfg, spec, n, backend=args.backend, codec=args.codec
        )
        run = coord.run(until)
        got = json.dumps(run_fingerprint(run), sort_keys=True)
        ok = got == ref
        tag = f"{args.backend}, codec" if coord.codec else args.backend
        failed = failed or not ok
        print(
            f"shards={n} ({tag}): windows={run.n_windows} "
            f"coalesced={run.data_plane.get('n_coalesced', 0)} "
            f"{'OK: bit-identical to serial' if ok else 'FAIL: diverged'}"
        )
        if not ok:
            a = json.loads(ref)
            b = json.loads(got)
            for key in a:
                if a[key] != b.get(key):
                    print(f"  first differing key: {key!r}")
                    break
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    raise SystemExit(main(sys.argv[1:]))
