"""Packed wire codec for the sharded data plane.

The process-backed sharded run used to move three kinds of Python
object graphs over the worker pipes every window: pickled egress
batches (cross-shard messages), pickled ingest batches, and -- at
finish -- per-shard stats logs as lists of tuples.  At fig9 scale the
pickle time dwarfs the barrier itself.  This module replaces all of it
with flat ``struct``-packed frames:

* **Egress frames** (:func:`encode_batch` / :func:`decode_batch`): one
  frame per destination shard per window.  Every record carries the
  canonical merge key ``(deliver_at, src_shard, send_seq)`` in a fixed
  27-byte header followed by a type id and a varlen body, so a reader
  can order records -- and a relay can route whole frames -- without
  decoding bodies.  Bodies exist for exactly the message classes
  registered in :data:`repro.server.peer.PEER_DISPATCH`; registering a
  new cross-shard message class without adding a codec entry fails
  loudly at coordinator construction (:func:`require_encodable`).
* **Step frames** (:func:`encode_step_request` /
  :func:`encode_step_reply`): the per-window worker-pipe protocol --
  one ``send_bytes`` each way per barrier, pure bytes, no pickle.  The
  reply header carries the shard's next pending event time, which the
  coordinator uses for window coalescing (see
  :class:`repro.sim.shard.WindowedCoordinator`).
* **Packed stats logs** (:class:`PackedLog` /
  :func:`decode_stats_log`): the ``(t, opcode, *args)`` stats stream as
  one flat byte buffer plus an interned string table, decoded once at
  finish instead of shipping tuple lists.
* **Packed arrivals** (:class:`ArrivalBatch`): the pre-generated
  ``(t, src, dest, qid)`` schedule as four flat columns; indexing
  yields the exact tuples :meth:`repro.cluster.system.ShardSystem.feed`
  expects.

Determinism contract: ``decode_batch(encode_batch(entries))`` yields
entries whose keys and message field values compare equal to the
originals, bit for bit (floats travel as IEEE-754 doubles, which is
what they are in memory).  The one representational change is that a
decoded :class:`~repro.net.message.ResponseMessage` no longer aliases
its query's ``path`` list -- pickling already broke that aliasing, and
nothing mutates the path after send.

Everything is little-endian with explicit ``struct`` formats; no
record is ever silently truncated -- malformed frames raise
:class:`ShardCodecError`.
"""

from __future__ import annotations

import struct
from array import array
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.namespace.meta import NodeMeta
from repro.net.message import (
    Advertisement,
    AdvertMessage,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ReplicaPayload,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)

__all__ = [
    "ArrivalBatch",
    "MAGIC",
    "PackedLog",
    "ShardCodecError",
    "decode_batch",
    "decode_stats_log",
    "decode_step_reply",
    "decode_step_request",
    "encode_batch",
    "encode_step_reply",
    "encode_step_request",
    "require_encodable",
    "supported_types",
]


class ShardCodecError(ValueError):
    """A frame or message cannot be encoded/decoded faithfully."""


#: frame magic: "Sharded Data Plane v1"
MAGIC = b"SDP1"

Entry = Tuple[float, int, int, int, Any]
Buf = Union[bytes, bytearray, memoryview]

# record header: deliver_at, src_shard, send_seq, dest, type_id, body_len
_HDR = struct.Struct("<dHQiBI")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_F64 = struct.Struct("<d")


# ----------------------------------------------------------------------
# primitive writers / readers
# ----------------------------------------------------------------------

def _w_ints(out: bytearray, xs: Sequence[int]) -> None:
    n = len(xs)
    out += _U32.pack(n)
    if n:
        try:
            out += struct.pack(f"<{n}i", *xs)
        except struct.error as exc:
            raise ShardCodecError(f"int32 overflow in {xs!r}") from exc


def _r_ints(buf: Buf, off: int) -> Tuple[List[int], int]:
    (n,) = _U32.unpack_from(buf, off)
    off += 4
    if not n:
        return [], off
    vals = struct.unpack_from(f"<{n}i", buf, off)
    return list(vals), off + 4 * n


def _w_pairs(out: bytearray, pairs: Sequence[Tuple[int, int]]) -> None:
    n = len(pairs)
    out += _U32.pack(n)
    if n:
        flat: List[int] = []
        for a, b in pairs:
            flat.append(a)
            flat.append(b)
        try:
            out += struct.pack(f"<{2 * n}i", *flat)
        except struct.error as exc:
            raise ShardCodecError(f"int32 overflow in {pairs!r}") from exc


def _r_pairs(buf: Buf, off: int) -> Tuple[List[Tuple[int, int]], int]:
    (n,) = _U32.unpack_from(buf, off)
    off += 4
    if not n:
        return [], off
    flat = struct.unpack_from(f"<{2 * n}i", buf, off)
    return (
        [(flat[2 * i], flat[2 * i + 1]) for i in range(n)],
        off + 8 * n,
    )


def _w_str(out: bytearray, s: str) -> None:
    b = s.encode("utf-8")
    out += _U32.pack(len(b))
    out += b


def _r_str(buf: Buf, off: int) -> Tuple[str, int]:
    (n,) = _U32.unpack_from(buf, off)
    off += 4
    b = bytes(buf[off:off + n])
    if len(b) != n:
        raise ShardCodecError("truncated string field")
    return b.decode("utf-8"), off + n


def _w_digest(out: bytearray, digest: Optional[Tuple[int, Any]]) -> None:
    """A digest snapshot: ``None`` or ``(version, words)`` with u64 words."""
    if digest is None:
        out += b"\x00"
        return
    version, words = digest
    n = len(words)
    out += b"\x01"
    out += struct.pack("<qI", version, n)
    if n:
        try:
            out += struct.pack(f"<{n}Q", *words)
        except struct.error as exc:
            raise ShardCodecError("digest word out of u64 range") from exc


def _r_digest(buf: Buf, off: int) -> Tuple[Optional[Tuple[int, Tuple[int, ...]]], int]:
    flag = buf[off]
    off += 1
    if not flag:
        return None, off
    version, n = struct.unpack_from("<qI", buf, off)
    off += 12
    words = struct.unpack_from(f"<{n}Q", buf, off)
    return (version, tuple(words)), off + 8 * n


def _w_meta(out: bytearray, meta: Any) -> None:
    """A :class:`NodeMeta` snapshot or ``None``.

    Attributes travel in ``items()`` order (dict insertion order is the
    value's identity -- replicas compare versions, not orders, but the
    round-trip stays exact); keywords travel sorted and are rebuilt
    into a set.
    """
    if meta is None:
        out += b"\x00"
        return
    if not isinstance(meta, NodeMeta):
        raise ShardCodecError(
            f"cannot encode meta payload of type {type(meta).__name__}; "
            "sharded runs ship NodeMeta snapshots only"
        )
    out += b"\x01"
    out += struct.pack("<q", meta.version)
    out += _U32.pack(len(meta.attributes))
    for k, v in meta.attributes.items():
        _w_str(out, k)
        _w_str(out, v)
    keywords = sorted(meta.keywords)
    out += _U32.pack(len(keywords))
    for w in keywords:
        _w_str(out, w)


def _r_meta(buf: Buf, off: int) -> Tuple[Optional[NodeMeta], int]:
    flag = buf[off]
    off += 1
    if not flag:
        return None, off
    meta = NodeMeta()
    (meta.version,) = struct.unpack_from("<q", buf, off)
    off += 8
    (n_attrs,) = _U32.unpack_from(buf, off)
    off += 4
    for _ in range(n_attrs):
        k, off = _r_str(buf, off)
        v, off = _r_str(buf, off)
        meta.attributes[k] = v
    (n_kw,) = _U32.unpack_from(buf, off)
    off += 4
    for _ in range(n_kw):
        w, off = _r_str(buf, off)
        meta.keywords.add(w)
    return meta, off


# application data payloads (DataReply.data): opaque to the protocol,
# but the wire is typed -- only scalar payloads cross shards
_DATA_NONE, _DATA_STR, _DATA_BYTES, _DATA_BOOL, _DATA_INT, _DATA_FLOAT = range(6)


def _w_data(out: bytearray, data: Any) -> None:
    if data is None:
        out.append(_DATA_NONE)
    elif isinstance(data, str):
        out.append(_DATA_STR)
        _w_str(out, data)
    elif isinstance(data, (bytes, bytearray)):
        out.append(_DATA_BYTES)
        out += _U32.pack(len(data))
        out += data
    elif isinstance(data, bool):
        out.append(_DATA_BOOL)
        out.append(1 if data else 0)
    elif isinstance(data, int):
        out.append(_DATA_INT)
        try:
            out += struct.pack("<q", data)
        except struct.error as exc:
            raise ShardCodecError("int data payload out of i64 range") from exc
    elif isinstance(data, float):
        out.append(_DATA_FLOAT)
        out += _F64.pack(data)
    else:
        raise ShardCodecError(
            f"cannot encode data payload of type {type(data).__name__}; "
            "store str/bytes/int/float node data for sharded runs"
        )


def _r_data(buf: Buf, off: int) -> Tuple[Any, int]:
    kind = buf[off]
    off += 1
    if kind == _DATA_NONE:
        return None, off
    if kind == _DATA_STR:
        return _r_str(buf, off)
    if kind == _DATA_BYTES:
        (n,) = _U32.unpack_from(buf, off)
        off += 4
        return bytes(buf[off:off + n]), off + n
    if kind == _DATA_BOOL:
        return bool(buf[off]), off + 1
    if kind == _DATA_INT:
        (v,) = struct.unpack_from("<q", buf, off)
        return v, off + 8
    if kind == _DATA_FLOAT:
        (f,) = _F64.unpack_from(buf, off)
        return f, off + 8
    raise ShardCodecError(f"unknown data payload kind {kind}")


# ----------------------------------------------------------------------
# per-class bodies
# ----------------------------------------------------------------------

_QUERY_FIXED = struct.Struct("<qiidiidii")  # qid dest origin created hops sender load stale via


def _enc_query(out: bytearray, m: QueryMessage) -> None:
    out += _QUERY_FIXED.pack(
        m.qid, m.dest, m.origin, m.created_at, m.hops, m.sender,
        m.sender_load, m.stale_hops, m.via,
    )
    _w_digest(out, m.sender_digest)
    _w_ints(out, m.dest_map)
    _w_pairs(out, m.path)
    out += _U32.pack(len(m.adverts))
    for ad in m.adverts:
        out += struct.pack("<ii", ad.node, ad.server)


def _dec_query(buf: Buf, off: int) -> Tuple[QueryMessage, int]:
    m = QueryMessage.__new__(QueryMessage)
    (m.qid, m.dest, m.origin, m.created_at, m.hops, m.sender,
     m.sender_load, m.stale_hops, m.via) = _QUERY_FIXED.unpack_from(buf, off)
    off += _QUERY_FIXED.size
    m.sender_digest, off = _r_digest(buf, off)
    m.dest_map, off = _r_ints(buf, off)
    m.path, off = _r_pairs(buf, off)
    (n_ads,) = _U32.unpack_from(buf, off)
    off += 4
    adverts: List[Advertisement] = []
    for _ in range(n_ads):
        node, server = struct.unpack_from("<ii", buf, off)
        off += 8
        adverts.append(Advertisement(node, server))
    m.adverts = adverts
    return m, off


_RESP_FIXED = struct.Struct("<qiidiiiqd")  # qid dest origin created hops resolver stale mver load


def _enc_response(out: bytearray, m: ResponseMessage) -> None:
    out += _RESP_FIXED.pack(
        m.qid, m.dest, m.origin, m.created_at, m.hops, m.resolver,
        m.stale_hops, m.meta_version, m.sender_load,
    )
    _w_digest(out, m.sender_digest)
    _w_ints(out, m.dest_map)
    _w_pairs(out, m.path)


def _dec_response(buf: Buf, off: int) -> Tuple[ResponseMessage, int]:
    m = ResponseMessage.__new__(ResponseMessage)
    (m.qid, m.dest, m.origin, m.created_at, m.hops, m.resolver,
     m.stale_hops, m.meta_version, m.sender_load) = _RESP_FIXED.unpack_from(buf, off)
    off += _RESP_FIXED.size
    m.sender_digest, off = _r_digest(buf, off)
    m.dest_map, off = _r_ints(buf, off)
    m.path, off = _r_pairs(buf, off)
    return m, off


def _enc_advert(out: bytearray, m: AdvertMessage) -> None:
    out += _I32.pack(m.node)
    _w_ints(out, m.servers)


def _dec_advert(buf: Buf, off: int) -> Tuple[AdvertMessage, int]:
    m = AdvertMessage.__new__(AdvertMessage)
    (m.node,) = _I32.unpack_from(buf, off)
    m.servers, off = _r_ints(buf, off + 4)
    return m, off


_PROBE = struct.Struct("<qid")


def _enc_probe(out: bytearray, m: ProbeMessage) -> None:
    out += _PROBE.pack(m.session, m.src, m.src_load)


def _dec_probe(buf: Buf, off: int) -> Tuple[ProbeMessage, int]:
    m = ProbeMessage.__new__(ProbeMessage)
    m.session, m.src, m.src_load = _PROBE.unpack_from(buf, off)
    return m, off + _PROBE.size


_PROBE_REPLY = struct.Struct("<qidB")


def _enc_probe_reply(out: bytearray, m: ProbeReplyMessage) -> None:
    out += _PROBE_REPLY.pack(m.session, m.src, m.load, 1 if m.willing else 0)


def _dec_probe_reply(buf: Buf, off: int) -> Tuple[ProbeReplyMessage, int]:
    m = ProbeReplyMessage.__new__(ProbeReplyMessage)
    m.session, m.src, m.load, willing = _PROBE_REPLY.unpack_from(buf, off)
    m.willing = bool(willing)
    return m, off + _PROBE_REPLY.size


_TRANSFER_FIXED = struct.Struct("<qid")
_PAYLOAD_FIXED = struct.Struct("<iq")


def _enc_transfer(out: bytearray, m: TransferMessage) -> None:
    out += _TRANSFER_FIXED.pack(m.session, m.src, m.load_delta)
    out += _U32.pack(len(m.payloads))
    for p in m.payloads:
        out += _PAYLOAD_FIXED.pack(p.node, p.meta_version)
        _w_ints(out, p.node_map)
        out += _U32.pack(len(p.context))
        for node, nmap in p.context.items():
            out += _I32.pack(node)
            _w_ints(out, nmap)
        _w_meta(out, p.meta)


def _dec_transfer(buf: Buf, off: int) -> Tuple[TransferMessage, int]:
    m = TransferMessage.__new__(TransferMessage)
    m.session, m.src, m.load_delta = _TRANSFER_FIXED.unpack_from(buf, off)
    off += _TRANSFER_FIXED.size
    (n_payloads,) = _U32.unpack_from(buf, off)
    off += 4
    payloads: List[ReplicaPayload] = []
    for _ in range(n_payloads):
        p = ReplicaPayload.__new__(ReplicaPayload)
        p.node, p.meta_version = _PAYLOAD_FIXED.unpack_from(buf, off)
        off += _PAYLOAD_FIXED.size
        p.node_map, off = _r_ints(buf, off)
        (n_ctx,) = _U32.unpack_from(buf, off)
        off += 4
        context: Dict[int, List[int]] = {}
        for _ in range(n_ctx):
            (node,) = _I32.unpack_from(buf, off)
            context[node], off = _r_ints(buf, off + 4)
        p.context = context
        p.meta, off = _r_meta(buf, off)
        payloads.append(p)
    m.payloads = payloads
    return m, off


_ACK_FIXED = struct.Struct("<qi")


def _enc_transfer_ack(out: bytearray, m: TransferAckMessage) -> None:
    out += _ACK_FIXED.pack(m.session, m.src)
    _w_ints(out, m.installed)


def _dec_transfer_ack(buf: Buf, off: int) -> Tuple[TransferAckMessage, int]:
    m = TransferAckMessage.__new__(TransferAckMessage)
    m.session, m.src = _ACK_FIXED.unpack_from(buf, off)
    m.installed, off = _r_ints(buf, off + _ACK_FIXED.size)
    return m, off


_DATA_REQ = struct.Struct("<qiiB")


def _enc_data_request(out: bytearray, m: DataRequest) -> None:
    out += _DATA_REQ.pack(m.rid, m.node, m.origin, 1 if m.want_meta else 0)


def _dec_data_request(buf: Buf, off: int) -> Tuple[DataRequest, int]:
    m = DataRequest.__new__(DataRequest)
    m.rid, m.node, m.origin, want_meta = _DATA_REQ.unpack_from(buf, off)
    m.want_meta = bool(want_meta)
    return m, off + _DATA_REQ.size


_DATA_REPLY_FIXED = struct.Struct("<qii")


def _enc_data_reply(out: bytearray, m: DataReply) -> None:
    out += _DATA_REPLY_FIXED.pack(m.rid, m.node, m.responder)
    _w_data(out, m.data)
    _w_meta(out, m.meta)
    _w_ints(out, m.redirect_map)


def _dec_data_reply(buf: Buf, off: int) -> Tuple[DataReply, int]:
    m = DataReply.__new__(DataReply)
    m.rid, m.node, m.responder = _DATA_REPLY_FIXED.unpack_from(buf, off)
    off += _DATA_REPLY_FIXED.size
    m.data, off = _r_data(buf, off)
    m.meta, off = _r_meta(buf, off)
    m.redirect_map, off = _r_ints(buf, off)
    return m, off


Encoder = Callable[[bytearray, Any], None]
Decoder = Callable[[Buf, int], Tuple[Any, int]]

#: type id -> (class, encoder, decoder); ids are wire format, never reused
_CODECS: Dict[int, Tuple[type, Encoder, Decoder]] = {
    1: (QueryMessage, _enc_query, _dec_query),
    2: (ResponseMessage, _enc_response, _dec_response),
    3: (AdvertMessage, _enc_advert, _dec_advert),
    4: (ProbeMessage, _enc_probe, _dec_probe),
    5: (ProbeReplyMessage, _enc_probe_reply, _dec_probe_reply),
    6: (TransferMessage, _enc_transfer, _dec_transfer),
    7: (TransferAckMessage, _enc_transfer_ack, _dec_transfer_ack),
    8: (DataRequest, _enc_data_request, _dec_data_request),
    9: (DataReply, _enc_data_reply, _dec_data_reply),
}

_ENCODERS: Dict[type, Tuple[int, Encoder]] = {
    cls: (tid, enc) for tid, (cls, enc, _) in _CODECS.items()
}
_DECODERS: Dict[int, Decoder] = {
    tid: dec for tid, (_, _, dec) in _CODECS.items()
}


def supported_types() -> Tuple[type, ...]:
    """Every message class the packed codec can carry."""
    return tuple(_ENCODERS)


def require_encodable(types: Iterable[type]) -> None:
    """Fail fast when a registered message class has no codec entry.

    Called at coordinator construction with the peer dispatch
    registry's types, so adding a new cross-shard message class without
    extending the codec breaks loudly before any window runs.
    """
    missing = [t.__name__ for t in types if t not in _ENCODERS]
    if missing:
        raise ShardCodecError(
            f"no packed codec for cross-shard message type(s) "
            f"{', '.join(sorted(missing))}; extend repro.sim.shardcodec"
        )


# ----------------------------------------------------------------------
# egress frames
# ----------------------------------------------------------------------

def encode_batch(entries: Sequence[Entry]) -> bytes:
    """Pack one egress batch into a frame.

    Each entry is the transport's ``(deliver_at, src_shard, send_seq,
    dest, msg)`` tuple; entries are written in order, so a batch that
    was sorted by the canonical key stays sorted on the wire.
    """
    out = bytearray(MAGIC)
    out += _U32.pack(len(entries))
    for at, src_shard, send_seq, dest, msg in entries:
        try:
            tid, enc = _ENCODERS[msg.__class__]
        except KeyError:
            raise ShardCodecError(
                f"no packed codec for message type {type(msg).__name__}"
            ) from None
        hdr_at = len(out)
        out += _HDR.pack(at, src_shard, send_seq, dest, tid, 0)
        body_at = len(out)
        enc(out, msg)
        # backpatch the body length now that it is known
        _U32.pack_into(out, hdr_at + _HDR.size - 4, len(out) - body_at)
    return bytes(out)


def decode_batch(frame: Buf) -> List[Entry]:
    """Unpack one egress frame back into entry tuples.

    Raises:
        ShardCodecError: bad magic, truncated records, unknown type
            ids, body-length mismatches, or trailing garbage.
    """
    view = memoryview(frame)
    if bytes(view[:4]) != MAGIC:
        raise ShardCodecError(
            f"bad frame magic {bytes(view[:4])!r} (expected {MAGIC!r})"
        )
    try:
        (count,) = _U32.unpack_from(view, 4)
        off = 8
        entries: List[Entry] = []
        for _ in range(count):
            at, src_shard, send_seq, dest, tid, body_len = _HDR.unpack_from(
                view, off
            )
            off += _HDR.size
            dec = _DECODERS.get(tid)
            if dec is None:
                raise ShardCodecError(f"unknown message type id {tid}")
            if off + body_len > len(view):
                raise ShardCodecError("truncated record body")
            msg, end = dec(view, off)
            if end - off != body_len:
                raise ShardCodecError(
                    f"body length mismatch for type id {tid}: "
                    f"header says {body_len}, decoder read {end - off}"
                )
            off = end
            entries.append((at, src_shard, send_seq, dest, msg))
    except struct.error as exc:
        raise ShardCodecError(f"truncated frame: {exc}") from None
    if off != len(view):
        raise ShardCodecError(
            f"trailing garbage: {len(view) - off} bytes after last record"
        )
    return entries


# ----------------------------------------------------------------------
# worker-pipe step frames (one send_bytes each way per barrier)
# ----------------------------------------------------------------------

#: request opcodes (first byte of every parent->worker frame)
OP_INIT = 0x01
OP_STEP = 0x02
OP_FINISH = 0x03
OP_EXIT = 0x04

#: reply status codes (first byte of every worker->parent frame)
ST_OK = 0x01        # bare acknowledgement
ST_STEP = 0x02      # step reply: next-event time + egress frames
ST_PAYLOAD = 0x03   # pickled payload follows (init/finish results)
ST_ERROR = 0x7F     # utf-8 traceback follows

_STEP_REQ = struct.Struct("<dBI")    # end, inclusive, n_frames
_STEP_REPLY = struct.Struct("<dI")   # next_event_time, n_dests
_DEST_FRAME = struct.Struct("<iI")   # dest_shard, frame_len


def encode_step_request(
    end: float, inclusive: bool, frames: Sequence[Buf]
) -> bytes:
    out = bytearray((OP_STEP,))
    out += _STEP_REQ.pack(end, 1 if inclusive else 0, len(frames))
    for f in frames:
        out += _U32.pack(len(f))
        out += f
    return bytes(out)


def decode_step_request(payload: Buf) -> Tuple[float, bool, List[memoryview]]:
    """Parse a step request (minus its leading op byte)."""
    view = memoryview(payload)
    try:
        end, inclusive, n_frames = _STEP_REQ.unpack_from(view, 0)
        off = _STEP_REQ.size
        frames: List[memoryview] = []
        for _ in range(n_frames):
            (flen,) = _U32.unpack_from(view, off)
            off += 4
            if off + flen > len(view):
                raise ShardCodecError("truncated step-request frame")
            frames.append(view[off:off + flen])
            off += flen
    except struct.error as exc:
        raise ShardCodecError(f"truncated step request: {exc}") from None
    if off != len(view):
        raise ShardCodecError("trailing garbage in step request")
    return end, bool(inclusive), frames


def encode_step_reply(
    next_time: float, dest_frames: Sequence[Tuple[int, Buf]]
) -> bytes:
    out = bytearray((ST_STEP,))
    out += _STEP_REPLY.pack(next_time, len(dest_frames))
    for dest, frame in dest_frames:
        out += _DEST_FRAME.pack(dest, len(frame))
        out += frame
    return bytes(out)


def decode_step_reply(payload: Buf) -> Tuple[float, List[Tuple[int, memoryview]]]:
    """Parse a step reply (minus its leading status byte)."""
    view = memoryview(payload)
    try:
        next_time, n_dests = _STEP_REPLY.unpack_from(view, 0)
        off = _STEP_REPLY.size
        dest_frames: List[Tuple[int, memoryview]] = []
        for _ in range(n_dests):
            dest, flen = _DEST_FRAME.unpack_from(view, off)
            off += _DEST_FRAME.size
            if off + flen > len(view):
                raise ShardCodecError("truncated step-reply frame")
            dest_frames.append((dest, view[off:off + flen]))
            off += flen
    except struct.error as exc:
        raise ShardCodecError(f"truncated step reply: {exc}") from None
    if off != len(view):
        raise ShardCodecError("trailing garbage in step reply")
    return next_time, dest_frames


# ----------------------------------------------------------------------
# packed stats logs
# ----------------------------------------------------------------------

# log record opcodes (shared with repro.sim.shard, which re-exports
# them under its historical underscore names)
LOG_INJECTED = 0
LOG_DROP = 1
LOG_COMPLETION = 2
LOG_FORWARD = 3
LOG_STALE_HOP = 4
LOG_REPLICA_CREATED = 5
LOG_REPLICA_EVICTED = 6
LOG_LOAD = 7
LOG_CLIENT_LOOKUP = 8
LOG_CLIENT_TIMEOUT = 9
LOG_CLIENT_RETRY = 10

# per-opcode record layouts, all prefixed by <dB (timestamp, opcode)
LOG_BASE = struct.Struct("<dB")
LOG_STR_ARG = struct.Struct("<dBH")     # + string-table index
LOG_COMPLETION_ARGS = struct.Struct("<dBdii")  # + latency, hops, stale
LOG_LEVEL_ARG = struct.Struct("<dBi")   # + replica level
LOG_FLOAT_ARG = struct.Struct("<dBd")   # + load sample

_LOG_NOARG = frozenset((
    LOG_INJECTED, LOG_STALE_HOP, LOG_CLIENT_LOOKUP, LOG_CLIENT_TIMEOUT,
    LOG_CLIENT_RETRY,
))
_LOG_STR = frozenset((LOG_DROP, LOG_FORWARD))
_LOG_LEVEL = frozenset((LOG_REPLICA_CREATED, LOG_REPLICA_EVICTED))


class PackedLog:
    """One shard's stats event log as flat bytes + a string table."""

    __slots__ = ("data", "strings", "n")

    def __init__(self, data: bytes, strings: Tuple[str, ...], n: int) -> None:
        self.data = data
        self.strings = strings
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __reduce__(self) -> Tuple[Any, ...]:
        return (PackedLog, (self.data, self.strings, self.n))

    def __repr__(self) -> str:
        return f"PackedLog(records={self.n}, bytes={len(self.data)})"


def decode_stats_log(log: PackedLog) -> List[Tuple[Any, ...]]:
    """Expand a packed log back into ``(t, opcode, *args)`` tuples.

    Done exactly once per shard at finish; the tuples compare equal to
    what the pre-packed recorder appended, so the canonical-order
    replay (:func:`repro.sim.shard.replay_stats`) is unchanged.
    """
    data = log.data
    strings = log.strings
    out: List[Tuple[Any, ...]] = []
    off = 0
    try:
        for _ in range(log.n):
            t, code = LOG_BASE.unpack_from(data, off)
            if code in _LOG_NOARG:
                off += LOG_BASE.size
                out.append((t, code))
            elif code in _LOG_STR:
                _, _, sidx = LOG_STR_ARG.unpack_from(data, off)
                off += LOG_STR_ARG.size
                out.append((t, code, strings[sidx]))
            elif code == LOG_COMPLETION:
                _, _, latency, hops, stale = LOG_COMPLETION_ARGS.unpack_from(
                    data, off
                )
                off += LOG_COMPLETION_ARGS.size
                out.append((t, code, latency, hops, stale))
            elif code in _LOG_LEVEL:
                _, _, level = LOG_LEVEL_ARG.unpack_from(data, off)
                off += LOG_LEVEL_ARG.size
                out.append((t, code, level))
            elif code == LOG_LOAD:
                _, _, load = LOG_FLOAT_ARG.unpack_from(data, off)
                off += LOG_FLOAT_ARG.size
                out.append((t, code, load))
            else:
                raise ShardCodecError(f"unknown stats opcode {code}")
    except (struct.error, IndexError) as exc:
        raise ShardCodecError(f"corrupt packed stats log: {exc}") from None
    if off != len(data):
        raise ShardCodecError("trailing garbage in packed stats log")
    return out


# ----------------------------------------------------------------------
# packed arrivals
# ----------------------------------------------------------------------

class ArrivalBatch:
    """One shard's arrival schedule as four flat columns.

    Indexing yields the exact ``(t, src, dest, qid)`` tuples
    :meth:`repro.cluster.system.ShardSystem.feed` schedules from, so
    the feeder code path is unchanged -- only the storage (and the
    worker-init pickle) shrinks from one tuple + four boxed values per
    arrival to 24 packed bytes.
    """

    __slots__ = ("t", "src", "dest", "qid")

    def __init__(
        self, arrivals: Iterable[Tuple[float, int, int, int]] = ()
    ) -> None:
        self.t = array("d")
        self.src = array("i")
        self.dest = array("i")
        self.qid = array("q")
        for t, src, dest, qid in arrivals:
            self.t.append(t)
            self.src.append(src)
            self.dest.append(dest)
            self.qid.append(qid)

    def __len__(self) -> int:
        return len(self.t)

    def __getitem__(self, i: int) -> Tuple[float, int, int, int]:
        return (self.t[i], self.src[i], self.dest[i], self.qid[i])

    def __iter__(self) -> Iterator[Tuple[float, int, int, int]]:
        for i in range(len(self.t)):
            yield (self.t[i], self.src[i], self.dest[i], self.qid[i])

    def __reduce__(self) -> Tuple[Any, ...]:
        return (_rebuild_arrivals, (
            self.t.tobytes(), self.src.tobytes(), self.dest.tobytes(),
            self.qid.tobytes(),
        ))

    def __repr__(self) -> str:
        return f"ArrivalBatch(n={len(self.t)})"


def _rebuild_arrivals(
    t: bytes, src: bytes, dest: bytes, qid: bytes
) -> ArrivalBatch:
    batch = ArrivalBatch()
    batch.t.frombytes(t)
    batch.src.frombytes(src)
    batch.dest.frombytes(dest)
    batch.qid.frombytes(qid)
    return batch
