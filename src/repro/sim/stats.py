"""Metric collection for simulation runs.

Everything the paper plots is a per-second time series (drops/s,
replicas created/s, mean/max load/s) or an aggregate (drop fraction,
mean latency, per-level replica counts).  :class:`TimeSeries` buckets
values into integer-second bins; :class:`WindowAverager` produces the
w-second smoothed maxima of Fig. 6 (right).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class Counter:
    """A plain named counter with helpers for rate reporting."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """Values bucketed into fixed-width time bins (default 1 second).

    ``add(t, x)`` accumulates ``x`` into the bin containing ``t``;
    ``observe(t, x)`` additionally tracks per-bin count/max so means and
    maxima can be reported.
    """

    __slots__ = ("bin_width", "_sum", "_cnt", "_max")

    def __init__(self, bin_width: float = 1.0) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be > 0")
        self.bin_width = bin_width
        self._sum: Dict[int, float] = {}
        self._cnt: Dict[int, int] = {}
        self._max: Dict[int, float] = {}

    def _bin(self, t: float) -> int:
        return int(t / self.bin_width)

    def add(self, t: float, x: float = 1.0) -> None:
        """Accumulate ``x`` into ``t``'s bin (rate-style metric)."""
        b = self._bin(t)
        self._sum[b] = self._sum.get(b, 0.0) + x

    def observe(self, t: float, x: float) -> None:
        """Record a sampled value (tracks sum, count and max per bin)."""
        b = self._bin(t)
        self._sum[b] = self._sum.get(b, 0.0) + x
        self._cnt[b] = self._cnt.get(b, 0) + 1
        m = self._max.get(b)
        if m is None or x > m:
            self._max[b] = x

    @property
    def n_bins(self) -> int:
        return (max(self._sum) + 1) if self._sum else 0

    def totals(self, n_bins: Optional[int] = None) -> List[float]:
        """Per-bin sums as a dense list of length ``n_bins``."""
        n = self.n_bins if n_bins is None else n_bins
        return [self._sum.get(b, 0.0) for b in range(n)]

    def means(self, n_bins: Optional[int] = None) -> List[float]:
        """Per-bin means (0 where the bin has no observations)."""
        n = self.n_bins if n_bins is None else n_bins
        out = []
        for b in range(n):
            c = self._cnt.get(b, 0)
            out.append(self._sum.get(b, 0.0) / c if c else 0.0)
        return out

    def maxima(self, n_bins: Optional[int] = None) -> List[float]:
        """Per-bin maxima (0 where the bin has no observations)."""
        n = self.n_bins if n_bins is None else n_bins
        return [self._max.get(b, 0.0) for b in range(n)]

    def total(self) -> float:
        return sum(self._sum.values())


class WindowAverager:
    """Sliding-window mean over a per-bin series (Fig. 6 right panel).

    The paper smooths the per-second maximum server load by averaging
    over 11-second windows; ``smooth(series, 11)`` reproduces that.
    """

    @staticmethod
    def smooth(series: Sequence[float], window: int) -> List[float]:
        """Centered moving average, truncated at the edges."""
        if window < 1:
            raise ValueError("window must be >= 1")
        n = len(series)
        half = window // 2
        out = []
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            out.append(sum(series[lo:hi]) / (hi - lo))
        return out


class LatencyStats:
    """Streaming latency aggregate (count/mean/max + histogram)."""

    __slots__ = ("count", "total", "max", "_hist", "_hist_width")

    def __init__(self, hist_width: float = 0.010) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._hist: Dict[int, int] = {}
        self._hist_width = hist_width

    def record(self, latency: float) -> None:
        self.count += 1
        self.total += latency
        if latency > self.max:
            self.max = latency
        b = int(latency / self._hist_width)
        self._hist[b] = self._hist.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile from the histogram (bin upper edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        acc = 0
        for b in sorted(self._hist):
            acc += self._hist[b]
            if acc >= target:
                return (b + 1) * self._hist_width
        return self.max
