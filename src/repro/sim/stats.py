"""Metric collection for simulation runs.

Everything the paper plots is a per-second time series (drops/s,
replicas created/s, mean/max load/s) or an aggregate (drop fraction,
mean latency, per-level replica counts).  :class:`TimeSeries` buckets
values into integer-second bins; :class:`WindowAverager` produces the
w-second smoothed maxima of Fig. 6 (right).

Components never talk to a concrete collector: they record through the
:class:`StatsSink` protocol.  :class:`SystemStats` is the full
collector every experiment uses; :class:`NullSink` drops everything
(hot benchmark runs pay zero collection cost); :class:`MultiSink` fans
one stream of events out to several sinks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class Counter:
    """A plain named counter with helpers for rate reporting."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """Values bucketed into fixed-width time bins (default 1 second).

    ``add(t, x)`` accumulates ``x`` into the bin containing ``t``;
    ``observe(t, x)`` additionally tracks per-bin count/max so means and
    maxima can be reported.

    Storage is a dense list indexed by bin (simulation time marches
    forward, so bins fill contiguously from zero): the hottest
    recording path is one index computation plus one in-place list
    update, instead of the three dict probes the previous dict-of-bins
    layout paid per event.
    """

    __slots__ = ("bin_width", "_sum", "_cnt", "_max")

    def __init__(self, bin_width: float = 1.0) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be > 0")
        self.bin_width = bin_width
        self._sum: List[float] = []
        self._cnt: List[int] = []
        self._max: List[float] = []

    def _bin(self, t: float) -> int:
        return int(t / self.bin_width)

    def _grow(self, b: int) -> None:
        n = b + 1 - len(self._sum)
        self._sum.extend([0.0] * n)
        self._cnt.extend([0] * n)
        self._max.extend([0.0] * n)

    def add(self, t: float, x: float = 1.0) -> None:
        """Accumulate ``x`` into ``t``'s bin (rate-style metric)."""
        b = int(t / self.bin_width)
        if b >= len(self._sum):
            self._grow(b)
        self._sum[b] += x

    def observe(self, t: float, x: float) -> None:
        """Record a sampled value (tracks sum, count and max per bin)."""
        b = int(t / self.bin_width)
        if b >= len(self._sum):
            self._grow(b)
        self._sum[b] += x
        cnt = self._cnt
        if cnt[b]:
            if x > self._max[b]:
                self._max[b] = x
        else:
            self._max[b] = x
        cnt[b] += 1

    @property
    def n_bins(self) -> int:
        return len(self._sum)

    def totals(self, n_bins: Optional[int] = None) -> List[float]:
        """Per-bin sums as a dense list of length ``n_bins``."""
        n = self.n_bins if n_bins is None else n_bins
        s = self._sum
        return [s[b] if b < len(s) else 0.0 for b in range(n)]

    def means(self, n_bins: Optional[int] = None) -> List[float]:
        """Per-bin means (0 where the bin has no observations)."""
        n = self.n_bins if n_bins is None else n_bins
        s, c = self._sum, self._cnt
        return [
            s[b] / c[b] if b < len(c) and c[b] else 0.0 for b in range(n)
        ]

    def maxima(self, n_bins: Optional[int] = None) -> List[float]:
        """Per-bin maxima (0 where the bin has no observations)."""
        n = self.n_bins if n_bins is None else n_bins
        m, c = self._max, self._cnt
        return [m[b] if b < len(c) and c[b] else 0.0 for b in range(n)]

    def total(self) -> float:
        return sum(self._sum)


class WindowAverager:
    """Sliding-window mean over a per-bin series (Fig. 6 right panel).

    The paper smooths the per-second maximum server load by averaging
    over 11-second windows; ``smooth(series, 11)`` reproduces that.
    """

    @staticmethod
    def smooth(series: Sequence[float], window: int) -> List[float]:
        """Centered moving average, truncated at the edges."""
        if window < 1:
            raise ValueError("window must be >= 1")
        n = len(series)
        half = window // 2
        out = []
        for i in range(n):
            lo = max(0, i - half)
            hi = min(n, i + half + 1)
            out.append(sum(series[lo:hi]) / (hi - lo))
        return out


class LatencyStats:
    """Streaming latency aggregate (count/mean/max + histogram)."""

    __slots__ = ("count", "total", "max", "_hist", "_hist_width")

    def __init__(self, hist_width: float = 0.010) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._hist: Dict[int, int] = {}
        self._hist_width = hist_width

    def record(self, latency: float) -> None:
        self.count += 1
        self.total += latency
        if latency > self.max:
            self.max = latency
        b = int(latency / self._hist_width)
        self._hist[b] = self._hist.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile from the histogram (bin upper edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        acc = 0
        for b in sorted(self._hist):
            acc += self._hist[b]
            if acc >= target:
                return (b + 1) * self._hist_width
        return self.max


class StatsSink:
    """The recording protocol every simulation component reports into.

    The base class implements every hook as a no-op, so a sink only
    overrides what it cares about.  Hooks must never influence
    simulation behaviour (no RNG use, no engine scheduling): swapping
    sinks must leave a fixed-seed run bit-identical.
    """

    __slots__ = ()

    # -- server plane ----------------------------------------------------

    def record_injected(self, now: float) -> None:
        pass

    def record_drop(self, now: float, reason: str = "queue") -> None:
        pass

    def record_completion(
        self, now: float, latency: float, hops: int, stale_hops: int
    ) -> None:
        pass

    def record_forward(self, source: str) -> None:
        pass

    def record_stale_hop(self, now: float) -> None:
        pass

    def record_replica_created(self, now: float, level: int) -> None:
        pass

    def record_replica_evicted(self, now: float, level: int) -> None:
        pass

    def sample_load(self, now: float, load: float) -> None:
        pass

    # -- client plane ----------------------------------------------------

    def record_client_lookup(self, now: float) -> None:
        pass

    def record_client_timeout(self, now: float) -> None:
        pass

    def record_client_retry(self, now: float) -> None:
        pass


class NullSink(StatsSink):
    """Drops every recording: zero collection cost for hot runs."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NullSink()"


class MultiSink(StatsSink):
    """Fans every recording out to an ordered list of sinks."""

    __slots__ = ("sinks",)

    def __init__(self, sinks: Iterable[StatsSink]) -> None:
        self.sinks = list(sinks)

    def record_injected(self, now: float) -> None:
        for s in self.sinks:
            s.record_injected(now)

    def record_drop(self, now: float, reason: str = "queue") -> None:
        for s in self.sinks:
            s.record_drop(now, reason=reason)

    def record_completion(
        self, now: float, latency: float, hops: int, stale_hops: int
    ) -> None:
        for s in self.sinks:
            s.record_completion(now, latency, hops, stale_hops)

    def record_forward(self, source: str) -> None:
        for s in self.sinks:
            s.record_forward(source)

    def record_stale_hop(self, now: float) -> None:
        for s in self.sinks:
            s.record_stale_hop(now)

    def record_replica_created(self, now: float, level: int) -> None:
        for s in self.sinks:
            s.record_replica_created(now, level)

    def record_replica_evicted(self, now: float, level: int) -> None:
        for s in self.sinks:
            s.record_replica_evicted(now, level)

    def sample_load(self, now: float, load: float) -> None:
        for s in self.sinks:
            s.sample_load(now, load)

    def record_client_lookup(self, now: float) -> None:
        for s in self.sinks:
            s.record_client_lookup(now)

    def record_client_timeout(self, now: float) -> None:
        for s in self.sinks:
            s.record_client_timeout(now)

    def record_client_retry(self, now: float) -> None:
        for s in self.sinks:
            s.record_client_retry(now)

    def __repr__(self) -> str:
        return f"MultiSink({self.sinks!r})"


class SystemStats(StatsSink):
    """All metrics the paper's evaluation section reports.

    Time series use 1-second bins to match the paper's per-second plots.
    """

    __slots__ = (
        "injected",
        "drops",
        "completions",
        "replicas_created",
        "replicas_evicted",
        "loads",
        "latency",
        "n_injected",
        "n_completed",
        "n_dropped",
        "drop_reasons",
        "n_stale_hops",
        "hops_sum",
        "route_sources",
        "level_replicas",
        "level_evictions",
        "n_client_lookups",
        "n_client_timeouts",
        "n_client_retries",
    )

    def __init__(self, max_depth: int) -> None:
        self.injected = TimeSeries()
        self.drops = TimeSeries()
        self.completions = TimeSeries()
        self.replicas_created = TimeSeries()
        self.replicas_evicted = TimeSeries()
        self.loads = TimeSeries()
        self.latency = LatencyStats()
        self.n_injected = 0
        self.n_completed = 0
        self.n_dropped = 0
        self.drop_reasons: Dict[str, int] = {}
        self.n_stale_hops = 0
        self.hops_sum = 0
        self.route_sources: Dict[str, int] = {}
        self.level_replicas = [0] * (max_depth + 1)
        self.level_evictions = [0] * (max_depth + 1)
        self.n_client_lookups = 0
        self.n_client_timeouts = 0
        self.n_client_retries = 0

    # -- recording hooks (called through the StatsSink protocol) ---------

    def record_injected(self, now: float) -> None:
        self.n_injected += 1
        self.injected.add(now)

    def record_drop(self, now: float, reason: str = "queue") -> None:
        self.n_dropped += 1
        self.drops.add(now)
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def record_completion(
        self, now: float, latency: float, hops: int, stale_hops: int
    ) -> None:
        self.n_completed += 1
        self.completions.add(now)
        self.latency.record(latency)
        self.hops_sum += hops

    def record_forward(self, source: str) -> None:
        self.route_sources[source] = self.route_sources.get(source, 0) + 1

    def record_stale_hop(self, now: float) -> None:
        self.n_stale_hops += 1

    def record_replica_created(self, now: float, level: int) -> None:
        self.replicas_created.add(now)
        self.level_replicas[level] += 1

    def record_replica_evicted(self, now: float, level: int) -> None:
        self.replicas_evicted.add(now)
        self.level_evictions[level] += 1

    def sample_load(self, now: float, load: float) -> None:
        self.loads.observe(now, load)

    def record_client_lookup(self, now: float) -> None:
        self.n_client_lookups += 1

    def record_client_timeout(self, now: float) -> None:
        self.n_client_timeouts += 1

    def record_client_retry(self, now: float) -> None:
        self.n_client_retries += 1

    # -- derived metrics ---------------------------------------------------

    @property
    def drop_fraction(self) -> float:
        return self.n_dropped / self.n_injected if self.n_injected else 0.0

    @property
    def completion_fraction(self) -> float:
        return self.n_completed / self.n_injected if self.n_injected else 0.0

    @property
    def mean_hops(self) -> float:
        return self.hops_sum / self.n_completed if self.n_completed else 0.0

    @property
    def n_replicas_created(self) -> int:
        return sum(self.level_replicas)

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline aggregates (handy for tables/tests)."""
        return {
            "injected": float(self.n_injected),
            "completed": float(self.n_completed),
            "dropped": float(self.n_dropped),
            "drop_fraction": self.drop_fraction,
            "mean_latency": self.latency.mean,
            "mean_hops": self.mean_hops,
            "replicas_created": float(self.n_replicas_created),
            "stale_hops": float(self.n_stale_hops),
        }
