"""A coarse timer-wheel for cancel-heavy timeouts.

The client arms one lookup timeout per issued lookup and cancels it
when the response arrives -- which is almost always.  Routing those
timeouts through :meth:`Engine.schedule` leaves one lazily-cancelled
heap entry per *completed* lookup for the full timeout duration
(millions of dead entries at paper scale), inflating every heap
operation's ``log n``.

The wheel instead buckets timers by coarse tick
(``bucket = floor(deadline / tick)``).  Each non-empty bucket costs the
engine exactly **one** event, scheduled at the bucket's start;
cancellation removes the timer from its bucket dict immediately, so
cancelled timers free their memory and never touch the heap at all.

Exactness is preserved: when a bucket fires, every timer still armed is
*promoted* to a real engine event at its exact deadline (with a
cancellation handle, so late cancels still work).  A timer therefore
fires at precisely ``now + delay`` -- never rounded to a tick boundary
-- and a fixed-seed run behaves bit-identically to the per-timer heap
pattern it replaces.  Only timers that survive into the last tick
before their deadline ever reach the heap, and those are the rare ones
that are actually about to fire.

Pending-event bound: the engine carries at most one event per distinct
non-empty bucket (``horizon / tick``) plus the promoted timers of the
current tick -- independent of how many timers were armed and
cancelled.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import Engine, EventHandle, SimError


class TimerHandle:
    """Cancellation handle for one armed timer."""

    __slots__ = ("_wheel", "_bucket", "_token", "_promoted", "cancelled")

    def __init__(self, wheel: "TimerWheel", bucket: int, token: int) -> None:
        self._wheel = wheel
        self._bucket = bucket
        self._token = token
        self._promoted: Optional[EventHandle] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Disarm the timer (idempotent; safe after it has fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        self._wheel.n_cancelled += 1
        if self._promoted is not None:
            self._promoted.cancel()
            return
        bucket = self._wheel._buckets.get(self._bucket)
        if bucket is not None:
            bucket.pop(self._token, None)

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled
                 else "promoted" if self._promoted is not None
                 else "armed")
        return f"TimerHandle({state})"


class TimerWheel:
    """Coarse-bucketed timers over a shared :class:`Engine`."""

    __slots__ = ("engine", "tick", "_buckets", "_token", "n_armed",
                 "n_cancelled", "n_fired")

    def __init__(self, engine: Engine, tick: float = 1.0) -> None:
        if tick <= 0:
            raise ValueError("tick must be > 0")
        self.engine = engine
        self.tick = tick
        # bucket index -> {token: (deadline, fn, args, handle)}; dicts
        # preserve insertion order, which is arming order within a bucket
        self._buckets: Dict[
            int, Dict[int, Tuple[float, Callable[..., None], tuple, TimerHandle]]
        ] = {}
        self._token = 0
        self.n_armed = 0
        self.n_cancelled = 0
        self.n_fired = 0  # released by their bucket (inline or promoted)

    def __len__(self) -> int:
        """Timers currently armed (excluding promoted ones)."""
        return sum(len(b) for b in self._buckets.values())

    @property
    def n_buckets(self) -> int:
        """Non-empty buckets, each owning exactly one engine event."""
        return len(self._buckets)

    def schedule_after(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """Arm ``fn(*args)`` to fire exactly ``delay`` from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        engine = self.engine
        deadline = engine.now + delay
        idx = int(deadline / self.tick)
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = self._buckets[idx] = {}
            # the bucket event must not precede ``now`` (possible when
            # ``delay < tick``) nor follow any deadline it covers
            at = idx * self.tick
            if at < engine.now:
                at = engine.now
            engine.schedule(at, self._fire_bucket, idx)
        self._token += 1
        handle = TimerHandle(self, idx, self._token)
        bucket[self._token] = (deadline, fn, args, handle)
        self.n_armed += 1
        return handle

    def _fire_bucket(self, idx: int) -> None:
        """Promote every survivor to an exact-deadline engine event."""
        bucket = self._buckets.pop(idx, None)
        if not bucket:
            return
        engine = self.engine
        now = engine.now
        for deadline, fn, args, handle in bucket.values():
            self.n_fired += 1
            if deadline <= now:
                # deadline exactly on the bucket boundary: fire inline,
                # the engine clock is already there
                fn(*args)
            else:
                handle._promoted = engine.schedule(
                    deadline, fn, *args, handle=True
                )

    def __repr__(self) -> str:
        return (
            f"TimerWheel(tick={self.tick}, armed={len(self)}, "
            f"buckets={self.n_buckets})"
        )
