"""Developer tooling for the reproduction: static analysis and gates.

:mod:`repro.tools.detlint` is the determinism / shard-safety linter
behind ``python -m repro lint`` (see DESIGN.md section 13).  Nothing in
this package is imported by the simulation itself -- tools may use any
stdlib facility (including ones the linter bans from protocol code).
"""
