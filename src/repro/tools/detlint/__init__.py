"""detlint -- determinism & shard-safety static analysis.

The repo's central invariant is that fixed-seed runs produce
bit-identical fingerprints across the serial engine, the sharded
windowed coordinator, and the cached campaign layer.  That invariant is
easy to break with code that *looks* innocent -- a module-level
``random.randrange``, an ``engine or make_engine()`` default that drops
empty-but-valid Engines, a generator expression that late-binds a loop
variable -- and expensive to re-prove with end-to-end equality tests.

``detlint`` encodes the contract as AST rules so violations fail at
lint time instead of surfacing as 1-ulp fingerprint drift three PRs
later.  Run it as ``python -m repro lint``; see
:mod:`repro.tools.detlint.rules` for the rule catalog, DESIGN.md
section 13 for the rationale, and docs/API.md for the API.

Public API::

    from repro.tools.detlint import lint_paths, LintResult, Violation

    result = lint_paths(["src"])
    for v in result.new_violations:
        print(v.format())
"""

from repro.tools.detlint.engine import LintResult, lint_paths
from repro.tools.detlint.registry import Rule, Violation, all_rules

__all__ = ["LintResult", "Rule", "Violation", "all_rules", "lint_paths"]
