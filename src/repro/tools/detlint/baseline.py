"""Committed baseline: legacy violations burn down, new ones fail.

The baseline is a JSON file mapping :meth:`Violation.baseline_key`
(rule id + relative path + stripped source line -- deliberately free of
line numbers so unrelated edits don't churn it) to an occurrence count.

Semantics (the ratchet):

* a violation whose key is in the baseline, within its count, is
  *grandfathered* -- reported, but does not fail the run;
* a violation beyond the baseline (new key, or more occurrences of a
  baselined key than recorded) is *new* and fails the run;
* a baseline entry that no longer fires at all is *stale* and also
  fails the run, with instructions to ``--write-baseline`` -- the
  baseline may only shrink, never silently rot.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.tools.detlint.registry import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "detlint_baseline.json"


class BaselineError(ValueError):
    """The baseline file exists but is not a valid detlint baseline."""


@dataclasses.dataclass
class Baseline:
    """Grandfathered violation counts keyed by baseline key."""

    entries: Dict[str, int] = dataclasses.field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON ({exc})") from None
        if (
            not isinstance(raw, dict)
            or raw.get("version") != BASELINE_VERSION
            or not isinstance(raw.get("entries"), dict)
        ):
            raise BaselineError(
                f"{path}: expected {{'version': {BASELINE_VERSION}, "
                f"'entries': {{key: count}}}}"
            )
        entries: Dict[str, int] = {}
        for key, count in raw["entries"].items():
            if not isinstance(key, str) or not isinstance(count, int) \
                    or count < 1:
                raise BaselineError(
                    f"{path}: bad entry {key!r}: {count!r}")
            entries[key] = count
        return cls(entries=entries)

    @classmethod
    def from_violations(cls, violations: List[Violation]) -> "Baseline":
        return cls(entries=dict(
            Counter(v.baseline_key() for v in violations)))

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def partition(
        self, violations: List[Violation]
    ) -> Tuple[List[Violation], List[Violation], List[str]]:
        """Split into (new, grandfathered) and list stale keys.

        Within one key, the first ``count`` occurrences (source order)
        are grandfathered and the rest are new -- so *adding* an
        instance of a baselined pattern still fails.
        """
        seen: Counter = Counter()
        new: List[Violation] = []
        old: List[Violation] = []
        for v in violations:
            key = v.baseline_key()
            seen[key] += 1
            if seen[key] <= self.entries.get(key, 0):
                old.append(v)
            else:
                new.append(v)
        stale = [k for k in sorted(self.entries)
                 if seen[k] < self.entries[k]]
        return new, old, stale
