"""File classifier: which determinism contract applies to which file.

Rules are scoped by *category*, not per-file configuration:

* ``protocol`` -- simulation/protocol code that must replay RNG streams
  draw-for-draw across serial, sharded, and cached execution.  This is
  every package whose state feeds fingerprints: ``sim/``, ``core/``,
  ``server/``, ``net/``, ``cluster/``, ``namespace/``, ``filters/``,
  ``workload/``, ``runtime/``.
* ``chokepoint`` -- the two sanctioned configuration funnels
  (``experiments/common.py``, ``experiments/parallel.py``).  Only these
  may read ``os.environ``; everything else takes configuration as
  arguments so a run's inputs are visible in its RunSpec fingerprint.

There is one *rule-scoped* carve-out rather than a category of its
own: ``runtime/async_*`` is the sanctioned wall-clock funnel (live
mode genuinely runs on the event-loop clock), so DET001 skips exactly
those files -- see :func:`is_wallclock_chokepoint` -- while every
other protocol rule still applies to them, and the simulation side of
``runtime/`` keeps the full contract.
* ``experiments`` -- campaign/figure glue: cross-run orchestration that
  never executes inside an engine window.
* ``tools`` -- this linter and friends; exempt from protocol rules.
* ``other`` -- anything else (viz, analysis, client, top-level).

The classifier keys on the path *relative to the package root* (the
directory holding ``__main__.py``), so test fixtures that mimic the
layout (``fixtures/sim/foo.py``) classify exactly like the real tree.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Tuple

PROTOCOL = "protocol"
CHOKEPOINT = "chokepoint"
EXPERIMENTS = "experiments"
TOOLS = "tools"
OTHER = "other"

ALL_CATEGORIES = frozenset({PROTOCOL, CHOKEPOINT, EXPERIMENTS, TOOLS, OTHER})

PROTOCOL_DIRS = frozenset(
    {"sim", "core", "server", "net", "cluster", "namespace",
     "filters", "workload", "runtime"}
)

#: the only files allowed to read ``os.environ``
ENV_CHOKEPOINTS = frozenset(
    {("experiments", "common.py"), ("experiments", "parallel.py")}
)


def is_wallclock_chokepoint(relpath: str) -> bool:
    """True for the sanctioned live-runtime wall-clock funnel.

    ``runtime/async_*`` is where live mode touches real time by design
    (the asyncio event-loop clock, socket transports, the serve CLI's
    timing); DET001 exempts exactly these files.  The rest of
    ``runtime/`` -- the protocol seam and its simulation adapter --
    keeps the full no-wall-clock contract.
    """
    parts = relpath.split("/")
    return (
        len(parts) == 2
        and parts[0] == "runtime"
        and parts[1].startswith("async_")
    )


@dataclasses.dataclass(frozen=True)
class FileClass:
    """A classified file: absolute path, root-relative path, category."""

    path: str
    relpath: str
    category: str


def find_package_root(path: Path) -> Optional[Path]:
    """The enclosing package root: nearest ancestor with ``__main__.py``.

    For the real tree that is ``src/repro``; fixtures supply an
    explicit root instead.
    """
    for parent in [path] + list(path.parents):
        if parent.is_dir() and (parent / "__main__.py").is_file():
            return parent
    return None


def _category(parts: Tuple[str, ...]) -> str:
    if not parts:
        return OTHER
    if tuple(parts) in ENV_CHOKEPOINTS:
        return CHOKEPOINT
    head = parts[0]
    if head in PROTOCOL_DIRS:
        return PROTOCOL
    if head == "experiments":
        return EXPERIMENTS
    if head == "tools":
        return TOOLS
    return OTHER


def classify(path: Path, root: Optional[Path] = None) -> FileClass:
    """Classify one source file.

    Args:
        path: the file to classify.
        root: package root the category layout hangs off; auto-detected
            via :func:`find_package_root` when omitted.  Files outside
            the root classify as ``other``.
    """
    path = path.resolve()
    if root is None:
        root = find_package_root(path)
    else:
        root = root.resolve()
    if root is not None:
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = None
        if rel is not None:
            return FileClass(
                path=str(path),
                relpath=rel.as_posix(),
                category=_category(rel.parts),
            )
    return FileClass(path=str(path), relpath=path.name, category=OTHER)
