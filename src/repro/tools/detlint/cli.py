"""``python -m repro lint`` -- the determinism linter's CLI.

Exit codes: 0 clean (baselined/waived findings allowed), 1 new
violations / stale baseline entries / parse errors, 2 usage errors.

Typical invocations::

    python -m repro lint                      # src/, default baseline
    python -m repro lint --format json --out detlint.json
    python -m repro lint src/repro/sim --no-baseline
    python -m repro lint --write-baseline     # ratchet the baseline down
    python -m repro lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.tools.detlint.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.tools.detlint.engine import LintResult, lint_paths
from repro.tools.detlint.registry import Rule, all_rules, rule_by_name
from repro.tools.detlint.report import render_json, text_report


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="determinism & shard-safety static analysis",
    )
    p.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the report to FILE",
    )
    p.add_argument(
        "--root", metavar="DIR", default=None,
        help="package root for file classification "
             "(default: auto-detect, e.g. src/repro)",
    )
    p.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} "
             f"when present)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: every violation is new",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )
    p.add_argument(
        "--rules", metavar="NAMES", default=None,
        help="comma-separated rule names/ids to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list pragma-waived findings in the text report",
    )
    return p


def _select_rules(spec: Optional[str]) -> Optional[List[Rule]]:
    if spec is None:
        return None
    rules: List[Rule] = []
    for name in (s.strip() for s in spec.split(",")):
        if not name:
            continue
        rule = rule_by_name(name)
        if rule is None:
            raise SystemExit(
                f"unknown rule {name!r}; try --list-rules")
        rules.append(rule)
    return rules


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)

    if args.list_rules:
        for r in all_rules():
            cats = ", ".join(sorted(r.categories))
            print(f"{r.id}  {r.name}\n    {r.summary}\n    scope: {cats}")
        return 0

    try:
        rules = _select_rules(args.rules)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {missing}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)
    baseline: Optional[Baseline] = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    root = Path(args.root) if args.root else None
    result: LintResult = lint_paths(
        paths, root=root, rules=rules, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        Baseline.from_violations(result.all_violations).save(target)
        print(
            f"wrote {len(result.all_violations)} entr"
            f"{'y' if len(result.all_violations) == 1 else 'ies'} "
            f"to {target}"
        )
        return 0

    active = list(rules) if rules is not None else list(all_rules())
    if args.format == "json":
        output = render_json(result, active)
    else:
        output = text_report(result, verbose=args.verbose)
    print(output, end="" if output.endswith("\n") else "\n")
    if args.out:
        Path(args.out).write_text(
            output if output.endswith("\n") else output + "\n",
            encoding="utf-8",
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
