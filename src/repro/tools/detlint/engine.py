"""The lint engine: walk files, run rules, apply pragmas and baseline.

:func:`lint_paths` is the single entry point the CLI and the test
suite share.  Per file it: classifies (category), parses (one AST,
shared by every rule), runs the applicable rule visitors, filters
through pragmas (defective/stale pragmas become violations), and
finally partitions everything against the committed baseline.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.tools.detlint.baseline import Baseline
from repro.tools.detlint.classify import FileClass, classify
from repro.tools.detlint.pragmas import (
    BAD_PRAGMA_ID,
    BAD_PRAGMA_NAME,
    apply_pragmas,
    parse_pragmas,
)
from repro.tools.detlint.registry import (
    FileContext,
    Rule,
    Violation,
    all_rules,
)


@dataclasses.dataclass
class LintResult:
    """Everything one lint run found."""

    files: List[FileClass] = dataclasses.field(default_factory=list)
    new_violations: List[Violation] = dataclasses.field(default_factory=list)
    baselined: List[Violation] = dataclasses.field(default_factory=list)
    suppressed: List[Violation] = dataclasses.field(default_factory=list)
    stale_baseline: List[str] = dataclasses.field(default_factory=list)
    parse_errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def all_violations(self) -> List[Violation]:
        """New + grandfathered, in discovery order (for --write-baseline)."""
        return sorted(
            self.new_violations + self.baselined,
            key=lambda v: (v.path, v.line, v.col, v.rule_id),
        )

    @property
    def ok(self) -> bool:
        """The gate: no new violations, no stale baseline, no parse errors."""
        return not (
            self.new_violations or self.stale_baseline or self.parse_errors
        )


def iter_py_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into ``.py`` files, sorted, once each."""
    seen = set()
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for f in candidates:
            if "__pycache__" in f.parts:
                continue
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                out.append(f)
    return out


def pragma_identifiers(
    rules: Sequence[Rule],
) -> Tuple[set, Dict[str, str]]:
    """(acceptable pragma identifiers, identifier -> canonical name)."""
    known = set()
    alias: Dict[str, str] = {}
    for r in rules:
        known.update((r.name, r.id))
        alias[r.name] = r.name
        alias[r.id] = r.name
    known.update((BAD_PRAGMA_ID, BAD_PRAGMA_NAME))
    alias[BAD_PRAGMA_ID] = BAD_PRAGMA_NAME
    alias[BAD_PRAGMA_NAME] = BAD_PRAGMA_NAME
    return known, alias


def lint_file(
    path: Path,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[FileClass, List[Violation], List[Violation], Optional[str]]:
    """Lint one file: (fclass, kept, suppressed, parse_error)."""
    active = list(rules if rules is not None else all_rules())
    fclass = classify(path, root=root)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return fclass, [], [], f"{fclass.relpath}: unreadable ({exc})"
    ctx = FileContext(fclass, source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            fclass, [], [],
            f"{fclass.relpath}:{exc.lineno}: syntax error: {exc.msg}",
        )
    for rule in active:
        if rule.applies_to(fclass):
            rule.make_visitor(ctx).visit(tree)
    known, alias = pragma_identifiers(active)
    pragmas, bad = parse_pragmas(ctx, known)
    kept, suppressed = apply_pragmas(ctx, pragmas, alias)
    kept.extend(bad)
    kept.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return fclass, kept, suppressed, None


def lint_paths(
    paths: Sequence,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    Args:
        paths: files and/or directories (str or Path).
        root: package root for classification; auto-detected per file
            when omitted (see :func:`~repro.tools.detlint.classify
            .find_package_root`).
        rules: subset of rules to run (default: all).
        baseline: grandfathered violations; when omitted every
            violation is new.
    """
    result = LintResult()
    violations: List[Violation] = []
    for path in iter_py_files([Path(p) for p in paths]):
        fclass, kept, suppressed, err = lint_file(path, root, rules)
        result.files.append(fclass)
        result.suppressed.extend(suppressed)
        if err is not None:
            result.parse_errors.append(err)
        violations.extend(kept)
    if baseline is None:
        result.new_violations = violations
    else:
        new, old, stale = baseline.partition(violations)
        result.new_violations = new
        result.baselined = old
        result.stale_baseline = stale
    return result
