"""Suppression pragmas: ``# det: ok(<rule>) -- <justification>``.

A violation may be waived in place, but never silently: the pragma
must name the rule (kebab-case name or ``DETnnn`` id) *and* carry a
justification after ``--``.  A pragma suppresses violations of the
named rules on its own line, or -- when it is a standalone comment --
on the next non-comment line, so a justification may run over several
comment lines above a long statement::

    # det: ok(unordered-iteration) -- int counters; addition commutes
    total = sum(self._counts.values())

Defective pragmas are themselves violations (rule ``DET000``
``bad-pragma``): unknown rule names, missing justification, and
pragmas that suppress nothing (stale waivers must be deleted, not
accumulated).  Comments are extracted with :mod:`tokenize`, so
pragma-shaped text inside string literals is ignored.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.tools.detlint.registry import FileContext, Violation

PRAGMA_PREFIX_RE = re.compile(r"#\s*det\s*:")
PRAGMA_RE = re.compile(
    r"#\s*det\s*:\s*ok\s*\(\s*(?P<rules>[^)]*?)\s*\)\s*"
    r"(?:--\s*(?P<why>.*\S))?\s*$"
)

BAD_PRAGMA_ID = "DET000"
BAD_PRAGMA_NAME = "bad-pragma"


@dataclasses.dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int
    col: int
    rules: Tuple[str, ...]
    justification: str
    #: for a comment-only pragma: the next non-comment line it waives
    target_line: int
    used: bool = False

    def covers(self, line: int) -> bool:
        return line in (self.line, self.target_line)


def _bad(ctx: FileContext, line: int, col: int, message: str) -> Violation:
    return Violation(
        rule_id=BAD_PRAGMA_ID,
        rule_name=BAD_PRAGMA_NAME,
        path=ctx.fclass.relpath,
        line=line,
        col=col,
        message=message,
        snippet=ctx.snippet(line),
    )


def parse_pragmas(
    ctx: FileContext, known: Set[str]
) -> Tuple[List[Pragma], List[Violation]]:
    """Extract pragmas from ``ctx.source``; malformed ones become
    ``bad-pragma`` violations.

    Args:
        known: the set of acceptable rule identifiers (names and ids).
    """
    pragmas: List[Pragma] = []
    problems: List[Violation] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(ctx.source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []  # the engine reports the parse error separately
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        text = tok.string
        if not PRAGMA_PREFIX_RE.match(text):
            continue
        line, col = tok.start
        m = PRAGMA_RE.match(text)
        if m is None:
            problems.append(_bad(
                ctx, line, col,
                "unparseable det pragma; expected "
                "'# det: ok(<rule>) -- <justification>'",
            ))
            continue
        why = m.group("why") or ""
        names = tuple(
            s.strip() for s in m.group("rules").split(",") if s.strip()
        )
        if not names:
            problems.append(_bad(
                ctx, line, col, "det pragma names no rule"))
            continue
        unknown = [n for n in names if n not in known]
        if unknown:
            problems.append(_bad(
                ctx, line, col,
                f"det pragma names unknown rule(s) {unknown}; "
                f"run 'python -m repro lint --list-rules'",
            ))
            continue
        if not why:
            problems.append(_bad(
                ctx, line, col,
                "det pragma without justification; write "
                "'# det: ok(<rule>) -- <why this is deterministic>'",
            ))
            continue
        target = line
        if ctx.snippet(line).startswith("#"):
            # standalone comment: waive the next non-comment line, so a
            # justification may continue over further comment lines
            cursor = line + 1
            while cursor <= len(ctx.lines):
                text = ctx.snippet(cursor)
                if text and not text.startswith("#"):
                    target = cursor
                    break
                cursor += 1
        pragmas.append(Pragma(
            line=line, col=col, rules=names,
            justification=why, target_line=target,
        ))
    return pragmas, problems


def apply_pragmas(
    ctx: FileContext,
    pragmas: List[Pragma],
    alias: Dict[str, str],
) -> Tuple[List[Violation], List[Violation]]:
    """Split ``ctx.violations`` into (kept, suppressed); unused pragmas
    are appended to *kept* as ``bad-pragma`` violations.

    Args:
        alias: maps every acceptable identifier (name or ``DETnnn``) to
            the canonical rule name, so pragmas may use either form.
    """
    kept: List[Violation] = []
    suppressed: List[Violation] = []
    for v in ctx.violations:
        waived = False
        for p in pragmas:
            if not p.covers(v.line):
                continue
            if v.rule_name in (alias.get(n, n) for n in p.rules):
                p.used = True
                waived = True
                break
        (suppressed if waived else kept).append(v)
    for p in pragmas:
        if not p.used:
            kept.append(_bad(
                ctx, p.line, p.col,
                f"stale det pragma ({', '.join(p.rules)}) suppresses "
                f"nothing on line {p.line} or {p.target_line}; "
                f"delete it",
            ))
    return kept, suppressed
