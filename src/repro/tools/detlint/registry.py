"""Rule registry and the violation record shared by every rule.

A :class:`Rule` couples a stable id (``DET001`` ...), a kebab-case name
(what pragmas reference), the file categories it applies to, and a
visitor factory.  Rules register themselves at import time via
:func:`register_rule`; :func:`all_rules` is the ordered catalog the
engine, the CLI ``--list-rules`` output, and the docs all read from.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.tools.detlint.classify import FileClass


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule_id: str
    rule_name: str
    path: str  # classifier-relative posix path (stable across checkouts)
    line: int
    col: int
    message: str
    snippet: str  # stripped source line, also the baseline key material

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.rule_name}: {self.message}"
        )

    def baseline_key(self) -> str:
        """Line-number-free identity so baselines survive code motion."""
        return f"{self.rule_id}:{self.path}:{self.snippet}"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class FileContext:
    """Everything a rule visitor needs about the file under analysis."""

    __slots__ = ("fclass", "source", "lines", "violations")

    def __init__(self, fclass: FileClass, source: str) -> None:
        self.fclass = fclass
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.violations: List[Violation] = []

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.violations.append(
            Violation(
                rule_id=rule.id,
                rule_name=rule.name,
                path=self.fclass.relpath,
                line=line,
                col=col,
                message=message,
                snippet=self.snippet(line),
            )
        )


VisitorFactory = Callable[["Rule", FileContext], ast.NodeVisitor]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One determinism rule: identity, scope, and visitor factory."""

    id: str
    name: str
    summary: str
    categories: FrozenSet[str]
    factory: VisitorFactory

    def applies_to(self, fclass: FileClass) -> bool:
        return fclass.category in self.categories

    def make_visitor(self, ctx: FileContext) -> ast.NodeVisitor:
        return self.factory(self, ctx)


_RULES: Dict[str, Rule] = {}


def register_rule(
    rule_id: str,
    name: str,
    summary: str,
    categories: FrozenSet[str],
) -> Callable[[VisitorFactory], VisitorFactory]:
    """Class/function decorator registering a visitor factory as a rule."""

    def decorator(factory: VisitorFactory) -> VisitorFactory:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        by_name = {r.name for r in _RULES.values()}
        if name in by_name:
            raise ValueError(f"duplicate rule name {name}")
        _RULES[rule_id] = Rule(
            id=rule_id, name=name, summary=summary,
            categories=categories, factory=factory,
        )
        return factory

    return decorator


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by id (imports the rule modules)."""
    import repro.tools.detlint.rules  # noqa: F401  (registration side effect)

    return tuple(_RULES[k] for k in sorted(_RULES))


def rule_by_name(name: str) -> Optional[Rule]:
    """Look a rule up by kebab-case name or ``DETnnn`` id."""
    for rule in all_rules():
        if rule.name == name or rule.id == name:
            return rule
    return None
