"""Reporters: human-readable text and machine-readable JSON.

The JSON document is what the CI ``det-lint`` job uploads as an
artifact; its shape is part of the tool's public contract (see
docs/API.md) and is covered by tests.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from repro.tools.detlint.engine import LintResult
from repro.tools.detlint.registry import Rule, Violation

REPORT_VERSION = 1


def _lines_for(violations: List[Violation], tag: str = "") -> List[str]:
    suffix = f"  [{tag}]" if tag else ""
    return [v.format() + suffix for v in violations]


def text_report(result: LintResult, verbose: bool = False) -> str:
    """The terminal report: violations, then a one-line verdict."""
    lines: List[str] = []
    lines.extend(_lines_for(result.new_violations))
    lines.extend(_lines_for(result.baselined, tag="baselined"))
    if verbose:
        lines.extend(_lines_for(result.suppressed, tag="pragma-waived"))
    for err in result.parse_errors:
        lines.append(f"{err}  [parse-error]")
    for key in result.stale_baseline:
        lines.append(
            f"stale baseline entry no longer fires: {key!r} "
            f"-- ratchet down with --write-baseline"
        )
    by_rule = Counter(v.rule_id for v in result.new_violations)
    summary = (
        f"checked {len(result.files)} file(s): "
        f"{len(result.new_violations)} new violation(s)"
        + (f" ({', '.join(f'{k} x{by_rule[k]}' for k in sorted(by_rule))})"
           if by_rule else "")
        + f", {len(result.baselined)} baselined"
        + f", {len(result.suppressed)} pragma-waived"
        + (f", {len(result.stale_baseline)} stale baseline entr"
           + ("y" if len(result.stale_baseline) == 1 else "ies")
           if result.stale_baseline else "")
    )
    lines.append(summary)
    lines.append("det-lint: " + ("OK" if result.ok else "FAILED"))
    return "\n".join(lines)


def json_report(result: LintResult, rules: List[Rule]) -> Dict[str, object]:
    """The machine-readable report (CI artifact)."""
    return {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "rules": [
            {
                "id": r.id,
                "name": r.name,
                "summary": r.summary,
                "categories": sorted(r.categories),
            }
            for r in rules
        ],
        "checked_files": [f.relpath for f in result.files],
        "new_violations": [v.to_dict() for v in result.new_violations],
        "baselined": [v.to_dict() for v in result.baselined],
        "suppressed": [v.to_dict() for v in result.suppressed],
        "stale_baseline": list(result.stale_baseline),
        "parse_errors": list(result.parse_errors),
        "summary": {
            "files": len(result.files),
            "new": len(result.new_violations),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "stale": len(result.stale_baseline),
        },
    }


def render_json(result: LintResult, rules: List[Rule]) -> str:
    return json.dumps(json_report(result, rules), indent=2) + "\n"
