"""The rule catalog.  Importing this package registers every rule.

| id     | name                      | scope                  |
|--------|---------------------------|------------------------|
| DET000 | bad-pragma                | everywhere (implicit)  |
| DET001 | wall-clock-entropy        | protocol               |
| DET002 | sized-presence-truthiness | everywhere             |
| DET003 | loop-closure-capture      | everywhere             |
| DET004 | unordered-iteration       | protocol               |
| DET005 | env-read                  | all but chokepoints    |
| DET006 | handler-global-mutation   | protocol               |

``DET000`` is not a visitor: defective pragmas are produced by the
pragma parser itself (:mod:`repro.tools.detlint.pragmas`).
"""

from repro.tools.detlint.rules import (  # noqa: F401
    closures,
    entropy,
    envreads,
    ordering,
    shardsafety,
    truthiness,
)
