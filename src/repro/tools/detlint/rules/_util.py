"""Small AST helpers shared by the rule visitors."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple


class ImportMap:
    """Resolves local names back to ``module.attr`` origins.

    Tracks ``import m``, ``import m as n``, and ``from m import a as
    b`` so a rule can ask "does this expression denote
    ``random.randrange``?" regardless of aliasing.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}  # local name -> module path
        self.names: Dict[str, Tuple[str, str]] = {}  # local -> (mod, attr)

    def collect(self, tree: ast.AST) -> "ImportMap":
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.modules[a.asname or a.name.split(".")[0]] = a.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    self.names[a.asname or a.name] = (node.module, a.name)
        return self

    def resolve(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """``(module, attr)`` denoted by a Name/Attribute, if importable.

        ``random.randrange`` -> ``("random", "randrange")``;
        ``datetime.datetime.now`` -> ``("datetime.datetime", "now")``;
        a bare name imported via ``from x import y`` -> ``("x", "y")``.
        """
        if isinstance(node, ast.Name):
            got = self.names.get(node.id)
            if got is not None:
                return got
            mod = self.modules.get(node.id)
            if mod is not None:
                return (mod, "")
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            mod, attr = base
            if attr:
                mod = f"{mod}.{attr}"
            return (mod, node.attr)
        return None


def target_names(target: ast.AST) -> Set[str]:
    """Every plain name bound by an assignment/loop target."""
    out: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            out.add(node.id)
    return out


def terminal_name(func: ast.AST) -> Optional[str]:
    """The last identifier of a call target: ``a.b.C`` -> ``C``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def walk_scoped(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))
