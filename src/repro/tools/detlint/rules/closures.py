"""DET003 loop-closure-capture: late binding of loop variables.

Python closures capture *variables*, not values.  A ``lambda``, nested
``def``, or generator expression created inside a loop and consumed
after it sees every iteration variable at its final value -- which is
how PR 7's stats merge stamped *every* shard's stream with the *last*
shard id (the keying genexp was built per shard but drained after the
loop).

Flagged: a deferred closure (lambda / nested def / genexp) nested in a
``for`` loop or comprehension, whose deferred body reads an enclosing
loop variable.  Not flagged:

* default-argument freezing -- ``lambda m, _h=h: _h(m)`` (defaults are
  evaluated eagerly, so the body reads ``_h``, not the loop variable);
* a factory call -- ``handlers.append(make_handler(sid))`` (the value
  crosses a call boundary, re-binding it);
* the *first* iterable of a genexp, which Python evaluates eagerly;
* closures consumed in place by an eager call (``sorted(...,
  key=lambda ...)``, ``list(genexp)``, ``sum(genexp)``, ...).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.tools.detlint import classify
from repro.tools.detlint.registry import FileContext, Rule, register_rule
from repro.tools.detlint.rules._util import target_names

#: callables that fully consume a genexp/lambda argument before returning
EAGER_CONSUMERS = frozenset({
    "list", "tuple", "set", "dict", "frozenset", "sorted", "sum",
    "min", "max", "any", "all", "fsum", "join", "prod", "mean",
    "median", "extend", "update",
})

_CLOSURE_NODES = (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef,
                  ast.GeneratorExp)
_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _free_reads(node: ast.AST, shadowed: Set[str]) -> Set[str]:
    """Names read anywhere under ``node`` minus locally-bound ones."""
    bound = set(shadowed)
    reads: Set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            if isinstance(n.ctx, ast.Load):
                reads.add(n.id)
            else:
                bound.add(n.id)
        elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            for a in (
                list(n.args.posonlyargs) + list(n.args.args)
                + list(n.args.kwonlyargs)
            ):
                bound.add(a.arg)
            if n.args.vararg:
                bound.add(n.args.vararg.arg)
            if n.args.kwarg:
                bound.add(n.args.kwarg.arg)
    return reads - bound


def _deferred_reads(closure: ast.AST) -> Set[str]:
    """Names the closure will read *later*, when it finally runs.

    Eager parts are excluded: parameter defaults of lambdas/defs, and
    the first iterable of a generator expression.
    """
    if isinstance(closure, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
        args = closure.args
        params = {
            a.arg for a in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        body = closure.body if isinstance(closure, ast.Lambda) \
            else closure
        reads: Set[str] = set()
        if isinstance(closure, ast.Lambda):
            reads = _free_reads(body, params)
        else:
            for stmt in closure.body:
                reads |= _free_reads(stmt, params)
        return reads
    if isinstance(closure, ast.GeneratorExp):
        own = set()
        for gen in closure.generators:
            own |= target_names(gen.target)
        reads = _free_reads(closure.elt, own)
        for i, gen in enumerate(closure.generators):
            if i > 0:  # generators[0].iter is evaluated eagerly
                reads |= _free_reads(gen.iter, own)
            for cond in gen.ifs:
                reads |= _free_reads(cond, own)
        return reads
    return set()


class ClosureVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.loop_vars: List[Set[str]] = []  # one frame per active loop
        self.consumed: Set[int] = set()  # ids of eagerly-consumed closures

    # -- eager-consumption marking -------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name in EAGER_CONSUMERS:
            for arg in node.args:
                inner = arg.value if isinstance(arg, ast.Starred) else arg
                if isinstance(inner, _CLOSURE_NODES):
                    self.consumed.add(id(inner))
            for kw in node.keywords:
                if isinstance(kw.value, _CLOSURE_NODES):
                    self.consumed.add(id(kw.value))
        self.generic_visit(node)

    # -- loop frames ---------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)  # the iterable evaluates outside the frame
        self.loop_vars.append(target_names(node.target))
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.loop_vars.pop()

    def _visit_comprehension(self, node: ast.AST) -> None:
        gens = node.generators  # type: ignore[attr-defined]
        own: Set[str] = set()
        for gen in gens:
            own |= target_names(gen.target)
        self.visit(gens[0].iter)
        self.loop_vars.append(own)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)  # type: ignore[attr-defined]
        for i, gen in enumerate(gens):
            if i > 0:
                self.visit(gen.iter)
            for cond in gen.ifs:
                self.visit(cond)
        self.loop_vars.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- the deferred closures -----------------------------------------

    def _check_closure(self, node: ast.AST, kind: str) -> bool:
        """Report a late-binding capture; True when one was found."""
        if not self.loop_vars or id(node) in self.consumed:
            return False
        active: Set[str] = set()
        for frame in self.loop_vars:
            active |= frame
        captured = sorted(_deferred_reads(node) & active)
        if captured:
            self.ctx.report(
                self.rule, node,
                f"{kind} inside a loop captures loop variable(s) "
                f"{', '.join(repr(c) for c in captured)} by reference; "
                f"every deferred evaluation sees the final value. "
                f"Freeze with a default argument (x=x) or build it in "
                f"a factory function",
            )
            return True
        return False

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_closure(node, "lambda")
        self.generic_visit(node)

    def _visit_funcdef(self, node: ast.AST) -> None:
        self._check_closure(node, f"nested def {node.name!r}")  # type: ignore[attr-defined]
        # a new function scope: its own loops start fresh
        outer, self.loop_vars = self.loop_vars, []
        self.generic_visit(node)
        self.loop_vars = outer

    visit_FunctionDef = _visit_funcdef
    visit_AsyncFunctionDef = _visit_funcdef

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if self._check_closure(node, "generator expression"):
            return  # do not double-report its innards
        self._visit_comprehension(node)


@register_rule(
    "DET003",
    "loop-closure-capture",
    "no lambda/genexp/nested-def created in a loop may read the loop "
    "variable late (the shard-id stats-merge bug class)",
    classify.ALL_CATEGORIES,
)
def make_closure_visitor(rule: Rule, ctx: FileContext) -> ast.NodeVisitor:
    return ClosureVisitor(rule, ctx)
