"""DET001 wall-clock-entropy: ambient randomness and wall clocks.

Protocol code must draw every random number from a *named, seeded*
stream (:class:`repro.sim.rng.RngStreams`) and read time only from the
engine clock.  Calls to the module-level :mod:`random` functions, to
``random.Random()`` with no seed, to ``time.time``/``time.time_ns``,
``datetime.now``-family constructors, :mod:`uuid`, ``os.urandom``, or
:mod:`secrets` inject process-local entropy that can never replay
across serial / sharded / cached executions.

Caught in the wild by this rule's first run: ``ReplicaMap
.add_preferred`` evicting via module-level ``random.randrange`` --
a draw no shard could ever replay.

One sanctioned exemption: ``runtime/async_*`` (see
:func:`repro.tools.detlint.classify.is_wallclock_chokepoint`) is the
live-mode wall-clock funnel -- the event-loop runtime, socket wire,
live clients, and the serve CLI run in real time by design.  Those
files skip this rule only; every other protocol rule still applies.
"""

from __future__ import annotations

import ast

from repro.tools.detlint import classify
from repro.tools.detlint.registry import FileContext, Rule, register_rule
from repro.tools.detlint.rules._util import ImportMap

#: module-level :mod:`random` functions that consume the shared stream
RANDOM_FUNCS = frozenset({
    "random", "randrange", "randint", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "binomialvariate", "seed",
})

#: fully-qualified callables that read wall clocks or OS entropy
BANNED_CALLS = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime.datetime", "now"),
    ("datetime.datetime", "utcnow"),
    ("datetime.datetime", "today"),
    ("datetime.date", "today"),
    ("datetime", "now"),  # from datetime import datetime; datetime.now()
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("os", "urandom"),
})

BANNED_MODULES = frozenset({"uuid", "secrets"})


class EntropyVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.imports = ImportMap()

    def visit_Module(self, node: ast.Module) -> None:
        self.imports.collect(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.imports.resolve(node.func)
        if origin is not None:
            mod, attr = origin
            top = mod.split(".")[0]
            if mod == "random" and attr in RANDOM_FUNCS:
                self.ctx.report(
                    self.rule, node,
                    f"call to module-level random.{attr}; draw from a "
                    f"seeded stream (repro.sim.rng.RngStreams) instead",
                )
            elif mod == "random" and attr == "Random" and not node.args:
                self.ctx.report(
                    self.rule, node,
                    "random.Random() with no seed is entropy-seeded; "
                    "derive the seed from the run's RngStreams",
                )
            elif (mod, attr) in BANNED_CALLS:
                self.ctx.report(
                    self.rule, node,
                    f"call to {mod}.{attr} reads the wall clock; "
                    f"simulation time comes from the engine clock",
                )
            elif top in BANNED_MODULES:
                self.ctx.report(
                    self.rule, node,
                    f"call into {top!r}: ids must be derived from "
                    f"seeded streams or sequence counters",
                )
        self.generic_visit(node)


@register_rule(
    "DET001",
    "wall-clock-entropy",
    "no ambient randomness or wall clocks in protocol code -- "
    "seeded RngStreams and the engine clock only",
    frozenset({classify.PROTOCOL}),
)
def make_entropy_visitor(rule: Rule, ctx: FileContext) -> ast.NodeVisitor:
    if classify.is_wallclock_chokepoint(ctx.fclass.relpath):
        return ast.NodeVisitor()  # sanctioned live-mode wall-clock funnel
    return EntropyVisitor(rule, ctx)
