"""DET005 env-read: configuration flows through two choke points.

A run's behavior must be a function of its RunSpec -- that is what the
campaign layer fingerprints and caches on.  An ``os.environ`` read
anywhere else is configuration the fingerprint cannot see: two
"identical" runs diverge because a worker inherited a different
environment.  Only the sanctioned choke points
(``experiments/common.py``, ``experiments/parallel.py``) may read the
environment; they resolve once, at entry, into explicit arguments.

Reads are flagged (``os.environ[...]``, ``os.environ.get``,
``os.getenv``, iteration, containment); *writes* to ``os.environ`` are
not -- exporting resolved configuration to worker processes is the
choke points' job, and an assignment target is not a read.
"""

from __future__ import annotations

import ast

from repro.tools.detlint import classify
from repro.tools.detlint.registry import FileContext, Rule, register_rule
from repro.tools.detlint.rules._util import ImportMap


class EnvReadVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.imports = ImportMap()

    def visit_Module(self, node: ast.Module) -> None:
        self.imports.collect(node)
        self.generic_visit(node)

    def _is_environ(self, node: ast.AST) -> bool:
        return self.imports.resolve(node) == ("os", "environ")

    def _report(self, node: ast.AST, what: str) -> None:
        self.ctx.report(
            self.rule, node,
            f"{what} outside the configuration choke points "
            f"(experiments/common.py, experiments/parallel.py); "
            f"resolve once there and pass the value as an argument",
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self.imports.resolve(node.func) == ("os", "getenv"):
            self._report(node, "os.getenv() read")
        elif (
            isinstance(node.func, ast.Attribute)
            and self._is_environ(node.func.value)
            and node.func.attr in (
                "get", "setdefault", "items", "keys", "values", "copy",
            )
        ):
            self._report(node, f"os.environ.{node.func.attr}() read")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_environ(node.value) and isinstance(node.ctx, ast.Load):
            self._report(node, "os.environ[...] read")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            for cmp in node.comparators:
                if self._is_environ(cmp):
                    self._report(node, "os.environ containment test")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_environ(node.iter):
            self._report(node.iter, "iteration over os.environ")
        self.generic_visit(node)


@register_rule(
    "DET005",
    "env-read",
    "no os.environ reads outside experiments/common.py and "
    "experiments/parallel.py",
    classify.ALL_CATEGORIES - {classify.CHOKEPOINT},
)
def make_envread_visitor(rule: Rule, ctx: FileContext) -> ast.NodeVisitor:
    return EnvReadVisitor(rule, ctx)
