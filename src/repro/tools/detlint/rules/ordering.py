"""DET004 unordered-iteration: order-sensitive sinks need an order.

Two shapes are flagged in protocol code:

* iteration over a *set expression* (set literal, ``set(...)`` /
  ``frozenset(...)`` call, set comprehension) in a ``for`` statement or
  comprehension.  Set order follows hash values; for strings those are
  salted per process (PYTHONHASHSEED), so the visit order -- and any
  RNG draw or float accumulation made per element -- can never replay.
  Wrap the expression in ``sorted(...)``.
* ``sum`` / ``math.fsum`` / ``statistics.*`` aggregation whose iterable
  comes from ``dict.values()`` or a set expression without
  ``sorted(...)``.  Even insertion-ordered dicts are a trap: the serial
  engine and the sharded coordinator insert in different orders, and
  float addition does not commute at the ulp -- exactly how PR 7's
  per-bin stats needed a replay pass to match serial.  Summing
  ``len(...)`` / ``int(...)`` elements is exempt (integer addition
  commutes exactly).

Deliberately not flagged: plain ``for ... in d.values()`` loops (dict
order is deterministic per construction path; flagging every loop
would bury the signal), ``min``/``max`` (order-independent for total
orders), and anything already wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.tools.detlint import classify
from repro.tools.detlint.registry import FileContext, Rule, register_rule
from repro.tools.detlint.rules._util import terminal_name

AGGREGATORS = frozenset({
    "sum", "fsum", "mean", "median", "stdev", "pstdev", "variance",
    "pvariance", "geometric_mean", "harmonic_mean",
})

_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in ("set", "frozenset")
    return False


def _unordered_source(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it yields in unordered/unstable order."""
    if _is_set_expr(node):
        return "a set expression"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
    ):
        return ".values()"
    return None


def _int_safe(elt: ast.AST) -> bool:
    """Summed elements provably integral: order cannot matter."""
    if isinstance(elt, ast.Call) and terminal_name(elt.func) in (
        "len", "int", "bool",
    ):
        return True
    if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
        return True
    return False


class OrderingVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx

    # -- iteration over sets -------------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self.ctx.report(
                self.rule, iter_node,
                "iteration over a set expression: visit order follows "
                "salted hashes and cannot replay; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- unordered aggregation -----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = terminal_name(node.func)
        if name in AGGREGATORS and node.args:
            arg = node.args[0]
            source = _unordered_source(arg)
            if source is not None:
                self.ctx.report(
                    self.rule, node,
                    f"{name}() over {source}: accumulation order is "
                    f"not reproducible across construction paths and "
                    f"float addition does not commute; iterate "
                    f"sorted(...) (or suppress with a justified "
                    f"pragma if the elements are provably integral)",
                )
            elif isinstance(arg, _COMP_NODES):
                elt = arg.key if isinstance(arg, ast.DictComp) else arg.elt
                if not _int_safe(elt):
                    for gen in arg.generators:
                        source = _unordered_source(gen.iter)
                        if source is not None:
                            self.ctx.report(
                                self.rule, node,
                                f"{name}() accumulates non-integral "
                                f"elements drawn from {source}; "
                                f"iterate sorted(...) so the float "
                                f"accumulation order is reproducible",
                            )
                            break
        self.generic_visit(node)


@register_rule(
    "DET004",
    "unordered-iteration",
    "no set-ordered iteration, and no float aggregation over "
    "dict.values()/sets without sorted(...)",
    frozenset({classify.PROTOCOL}),
)
def make_ordering_visitor(rule: Rule, ctx: FileContext) -> ast.NodeVisitor:
    return OrderingVisitor(rule, ctx)
