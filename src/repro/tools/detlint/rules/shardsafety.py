"""DET006 handler-global-mutation: message handlers own no globals.

Under the sharded coordinator every shard runs the same modules in its
own process (or, inline, interleaved in one).  A dispatch handler that
mutates *module-level* state therefore computes something different
per execution topology: one process sees the union of all shards'
mutations, N processes each see their own slice.  Handlers may touch
``self`` and their message -- never the module.

Handler discovery covers every registration form
:class:`repro.net.dispatch.DispatchRegistry` supports::

    REG = DispatchRegistry("peer")          # module-level registry
    REG.register(QueryMessage, "_on_query") # method-name form
    REG.register(ProbeMessage, on_probe)    # callable form

    @REG.register(AdvertMessage)            # decorator form
    def on_advert(target, msg): ...

Inside a handler the rule flags ``global`` declarations, and attribute
or subscript stores / mutating method calls (``append``, ``update``,
``register`` ...) whose base is a module-level binding.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.tools.detlint import classify
from repro.tools.detlint.registry import FileContext, Rule, register_rule
from repro.tools.detlint.rules._util import terminal_name, walk_scoped

MUTATORS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "update",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear", "register", "unregister", "push", "write",
})

FuncNode = Tuple[ast.AST, str]  # (def node, description)


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound by assignment at module level."""
    out: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                for n in ast.walk(t):
                    if isinstance(n, ast.Name):
                        out.add(n.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                out.add(stmt.target.id)
    return out


def _registries(tree: ast.Module) -> Set[str]:
    """Module-level names holding a DispatchRegistry instance."""
    regs: Set[str] = set()
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and terminal_name(stmt.value.func) == "DispatchRegistry"
        ):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    regs.add(t.id)
    return regs


def _handler_defs(tree: ast.Module) -> List[FuncNode]:
    """Every function/method registered as a dispatch handler."""
    regs = _registries(tree)

    def is_register(call: ast.Call) -> bool:
        f = call.func
        return (
            isinstance(f, ast.Attribute)
            and f.attr == "register"
            and isinstance(f.value, ast.Name)
            and f.value.id in regs
        )

    named: Set[str] = set()  # string method-name registrations
    funcs: Set[str] = set()  # plain-callable registrations by name
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and is_register(node):
            for arg in node.args[1:]:
                if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str):
                    named.add(arg.value)
                elif isinstance(arg, ast.Name):
                    funcs.add(arg.id)

    out: List[FuncNode] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in named or node.name in funcs:
            out.append((node, f"handler {node.name!r}"))
            continue
        for dec in node.decorator_list:
            if isinstance(dec, ast.Call) and is_register(dec):
                out.append((node, f"handler {node.name!r}"))
                break
    return out


class ShardSafetyVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx

    def visit_Module(self, tree: ast.Module) -> None:
        module_names = _module_bindings(tree)
        for func, desc in _handler_defs(tree):
            self._check_handler(func, desc, module_names)

    def _check_handler(
        self, func: ast.AST, desc: str, module_names: Set[str]
    ) -> None:
        params: Set[str] = set()
        args = func.args  # type: ignore[attr-defined]
        for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        ):
            params.add(a.arg)
        # only the body: decorators/defaults run at import time, not
        # per message, so a decorator's .register() call is not a hit
        def walk_body():
            for stmt in func.body:  # type: ignore[attr-defined]
                yield stmt
                yield from walk_scoped(stmt)

        local: Set[str] = set(params)
        for node in walk_body():
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store):
                local.add(node.id)

        def base_is_module(expr: ast.AST) -> bool:
            while isinstance(expr, (ast.Attribute, ast.Subscript)):
                expr = expr.value
            return (
                isinstance(expr, ast.Name)
                and expr.id in module_names
                and expr.id not in local
            )

        for node in walk_body():
            if isinstance(node, ast.Global):
                self.ctx.report(
                    self.rule, node,
                    f"{desc} declares global {', '.join(node.names)}: "
                    f"handlers must not rebind module state (shards "
                    f"would each rebind their own copy)",
                )
            elif isinstance(node, (ast.Attribute, ast.Subscript)) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)) and \
                    base_is_module(node):
                self.ctx.report(
                    self.rule, node,
                    f"{desc} mutates module-level state: per-shard "
                    f"processes would diverge from the serial engine; "
                    f"keep handler state on the endpoint object",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATORS
                and base_is_module(node.func.value)
            ):
                self.ctx.report(
                    self.rule, node,
                    f"{desc} calls .{node.func.attr}() on module-level "
                    f"state: per-shard processes would diverge from "
                    f"the serial engine; keep handler state on the "
                    f"endpoint object",
                )


@register_rule(
    "DET006",
    "handler-global-mutation",
    "dispatch handlers must not mutate module-level state (shard "
    "processes would diverge from the serial engine)",
    frozenset({classify.PROTOCOL}),
)
def make_shardsafety_visitor(rule: Rule, ctx: FileContext) -> ast.NodeVisitor:
    return ShardSafetyVisitor(rule, ctx)
