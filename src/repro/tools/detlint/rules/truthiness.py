"""DET002 sized-presence-truthiness: ``len()`` is not ``is None``.

An object whose class defines ``__len__`` is *falsy when empty*.  For
presence-typed objects -- an Engine, a dispatch registry, a namespace
-- emptiness is a valid state, not absence, so boolean tests silently
misfire exactly when the object is empty:

* ``engine = engine or make_engine()`` drops a caller's fresh (empty)
  Engine and fabricates a new one -- the PR 7 ``build_system`` bug.
  Flagged for any ``x or <ctor>()`` where the fallback constructs a
  configured sized type or a mutable builtin (``set()``/``[]``/``{}``:
  content-equivalent but *identity*-divergent -- later mutations are
  lost).
* ``if engine:`` / ``not engine`` on a parameter annotated with a
  sized-presence type (plain or ``Optional``) conflates "absent" with
  "empty".  Write ``is None`` or an explicit ``len(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.tools.detlint import classify
from repro.tools.detlint.registry import FileContext, Rule, register_rule
from repro.tools.detlint.rules._util import terminal_name

#: classes defining ``__len__`` whose emptiness does NOT mean absence
SIZED_PRESENCE_TYPES = frozenset({
    "Engine", "ShardEngine", "ProfiledEngine", "DispatchRegistry",
    "Namespace", "SystemStats", "ReplicaMap", "NodeMap",
    "DigestDirectory", "AncestorIndex", "NodeRanking", "TimerWheel",
})

#: constructors/factories whose result as an ``or`` fallback is a bug
SIZED_CTORS = SIZED_PRESENCE_TYPES | frozenset({
    "make_engine", "set", "dict", "list", "frozenset",
    "Counter", "deque", "defaultdict", "OrderedDict",
})


def _annotation_type(ann: Optional[ast.AST]) -> Optional[str]:
    """The sized-presence type named by an annotation, unwrapping
    ``Optional[X]`` / ``Union[X, None]`` / ``X | None``."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return ann.id if ann.id in SIZED_PRESENCE_TYPES else None
    if isinstance(ann, ast.Attribute):
        return ann.attr if ann.attr in SIZED_PRESENCE_TYPES else None
    if isinstance(ann, ast.Subscript):
        head = terminal_name(ann.value)
        if head in ("Optional", "Union"):
            inner = ann.slice
            parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for p in parts:
                got = _annotation_type(p)
                if got is not None:
                    return got
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_type(ann.left) or _annotation_type(ann.right)
    return None


class TruthinessVisitor(ast.NodeVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        # names annotated with a sized-presence type in the current scope
        self.annotated: Dict[str, str] = {}

    # -- scope handling ------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        outer = self.annotated
        self.annotated = {}
        args = node.args  # type: ignore[attr-defined]
        for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        ):
            t = _annotation_type(a.annotation)
            if t is not None:
                self.annotated[a.arg] = t
        self.generic_visit(node)
        self.annotated = outer

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        t = _annotation_type(node.annotation)
        if t is not None and isinstance(node.target, ast.Name):
            self.annotated[node.target.id] = t
        self.generic_visit(node)

    # -- check A: `x or <sized ctor>()` --------------------------------

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        reported = False
        if isinstance(node.op, ast.Or):
            for operand in node.values[1:]:
                bad = self._sized_fallback(operand)
                if bad is not None:
                    self.ctx.report(
                        self.rule, node,
                        f"'or {bad}' fallback also triggers when the "
                        f"left side is present-but-empty (classes with "
                        f"__len__ are falsy at len()==0); use an "
                        f"explicit 'if x is None' default",
                    )
                    reported = True
        if not reported:
            # every operand but the last is truthiness-tested
            for operand in node.values[:-1]:
                self._check_truthiness(operand, context="boolean test")
        self.generic_visit(node)

    @staticmethod
    def _sized_fallback(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in SIZED_CTORS:
                return f"{name}(...)" if node.args or node.keywords \
                    else f"{name}()"
        # empty mutable literals: content-equivalent, identity-divergent
        if isinstance(node, ast.List) and not node.elts:
            return "[]"
        if isinstance(node, ast.Dict) and not node.keys:
            return "{}"
        return None

    # -- check B: truthiness tests on annotated names ------------------

    def _check_truthiness(self, test: ast.AST, context: str) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if isinstance(test, ast.Name) and test.id in self.annotated:
            t = self.annotated[test.id]
            self.ctx.report(
                self.rule, test,
                f"truthiness {context} on {test.id!r} (annotated "
                f"{t}): an empty {t} is falsy but present; test "
                f"'is None' or 'len({test.id})'",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_truthiness(node.test, context="test")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_truthiness(node.test, context="test")
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_truthiness(node.test, context="conditional expression")
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._check_truthiness(node.test, context="assert")
        self.generic_visit(node)


@register_rule(
    "DET002",
    "sized-presence-truthiness",
    "no boolean-presence tests or 'or'-defaulting on objects whose "
    "__len__ makes empty falsy (the build_system Engine bug class)",
    classify.ALL_CATEGORIES,
)
def make_truthiness_visitor(rule: Rule, ctx: FileContext) -> ast.NodeVisitor:
    return TruthinessVisitor(rule, ctx)
