"""Dependency-free SVG rendering of the paper's figures.

``python -m repro.viz.figures --out figures`` regenerates every figure
of the evaluation section as an SVG from a fresh experiment run; the
chart primitives live in :mod:`repro.viz.svg`.
"""

from repro.viz.svg import BarChart, LineChart, PALETTE

__all__ = ["BarChart", "LineChart", "PALETTE"]
