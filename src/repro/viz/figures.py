"""Regenerate the paper's figures as SVG files.

Runs the experiment harness (at the ``REPRO_SCALE`` size) and renders
each figure with the chart primitives of :mod:`repro.viz.svg`.  Every
registered figure is produced through the campaign layer
(:func:`repro.experiments.campaign.run_experiment`), so pointing
``--results`` at an existing artifact directory assembles figures from
stored runs instead of re-simulating::

    python -m repro.viz.figures --out figures
    python -m repro.viz.figures --out figures --results results fig5 fig7
"""

from __future__ import annotations

import math
import pathlib
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.campaign import ResultStore, run_experiment
from repro.experiments.common import Scale, get_scale
from repro.viz.svg import BarChart, LineChart

Store = Optional[ResultStore]


def fig3_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 3 line chart: drop fraction per second, per stream."""
    results = run_experiment("fig3", scale=scale, seed=seed, store=store)
    chart = LineChart(
        "Fig. 3 — fraction of queries dropped every second",
        x_label="time (s)", y_label="drop fraction (vs rate)",
    )
    for name, series in results.items():
        chart.add_series(name, list(enumerate(series)))
    return chart.render()


def fig4_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 4 line chart: replica creations per second, per stream."""
    results = run_experiment("fig4", scale=scale, seed=seed, store=store)
    chart = LineChart(
        "Fig. 4 — replicas created every second (namespace N_C)",
        x_label="time (s)", y_label="creations (vs rate)",
    )
    for name, series in results.items():
        chart.add_series(name, list(enumerate(series)))
    return chart.render()


def fig5_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 5 bar chart: drop fraction per (preset, stream) cell."""
    from repro.experiments.fig5_ablation import drop_table

    table = drop_table(
        run_experiment("fig5", scale=scale, seed=seed, store=store)
    )
    streams = list(next(iter(table.values())).keys())
    chart = BarChart(
        "Fig. 5 — dropped queries: base (B), +caching (BC), +replication (BCR)",
        categories=streams, y_label="fraction of dropped queries",
    )
    for preset, per_stream in table.items():
        chart.add_series(preset, [per_stream[s] for s in streams])
    return chart.render()


def fig6_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 6 line chart: mean and max server load over time."""
    results = run_experiment("fig6", scale=scale, seed=seed, store=store)
    chart = LineChart(
        "Fig. 6 — mean and max server load over time",
        x_label="time (s)", y_label="load (utilisation)",
    )
    for label, series in results.items():
        chart.add_series(f"{label} avg", list(enumerate(series["mean"])))
    # the paper overlays the smoothed maxima; keep within palette budget
    top = list(results)[-1]
    chart.add_series(
        f"{top} max (smoothed)",
        list(enumerate(results[top]["smoothed_max"])),
    )
    return chart.render()


def fig7_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 7 line chart: average replicas created per tree level."""
    results = run_experiment("fig7", scale=scale, seed=seed, store=store)
    chart = LineChart(
        "Fig. 7 — average replicas created per namespace level",
        x_label="namespace tree level (0 = root)",
        y_label="avg replicas per node",
    )
    for name, series in results.items():
        chart.add_series(name, list(enumerate(series)))
    return chart.render()


def fig8_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 8 line chart: replica creations per bucket, long run."""
    results = run_experiment("fig8", scale=scale, seed=seed, store=store)
    chart = LineChart(
        "Fig. 8 — replicas created per bucket over a long run",
        x_label=f"bucket ({scale.long_bucket}s)", y_label="replicas created",
    )
    for name, buckets in results.items():
        chart.add_series(name, list(enumerate(buckets)))
    return chart.render()


def fig9_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Fig. 9 line chart: latency, replication, drops vs system size."""
    results = run_experiment("fig9", scale=scale, seed=seed, store=store)
    sizes = list(results)
    chart = LineChart(
        "Fig. 9 — scalability of latency, replication, and drops",
        x_label="system size (log2 servers)",
        y_label="hops / log2(events)",
    )
    chart.add_series(
        "latency (hops)",
        [(math.log2(n), results[n]["mean_hops"]) for n in sizes],
    )
    chart.add_series(
        "log2(replications)",
        [(math.log2(n), math.log2(max(1.0, results[n]["replicas_created"])))
         for n in sizes],
    )
    chart.add_series(
        "log2(drops)",
        [(math.log2(n), math.log2(max(1.0, results[n]["dropped"])))
         for n in sizes],
    )
    return chart.render()


def fig5_sparse_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Sparse-ownership Fig. 5 variant (not a registered experiment)."""
    from repro.experiments.fig5_ablation import run_fig5_sparse

    table = run_fig5_sparse(seed=seed)
    streams = list(next(iter(table.values())).keys())
    chart = BarChart(
        "Fig. 5 (sparse ownership) — caching aggravates N_S; replication rescues",
        categories=streams, y_label="fraction of dropped queries",
    )
    for preset, per_stream in table.items():
        chart.add_series(preset, [per_stream[s] for s in streams])
    return chart.render()


def heterogeneity_svg(scale: Scale, seed: int = 1, store: Store = None) -> str:
    """Heterogeneity bar chart: drop fraction per population case."""
    results = run_experiment(
        "heterogeneity", scale=scale, seed=seed, store=store
    )
    cases = list(results)
    chart = BarChart(
        "Heterogeneity — half the fleet 2.5× slower (§5 claim)",
        categories=cases, y_label="fraction of dropped queries",
    )
    chart.add_series("drop fraction",
                     [results[c]["drop_fraction"] for c in cases])
    return chart.render()


def static_vs_adaptive_svg(
    scale: Scale, seed: int = 1, store: Store = None
) -> str:
    """Static-vs-adaptive bar chart: per-epoch drop fraction per mode."""
    results = run_experiment("static", scale=scale, seed=seed, store=store)
    modes = list(results)
    chart = BarChart(
        "Static vs adaptive replication (§2.3 argument)",
        categories=modes, y_label="fraction of dropped queries",
    )
    chart.add_series("uniform warm-up",
                     [results[m]["drop_warmup"] for m in modes])
    chart.add_series("shifting hot-spots",
                     [results[m]["drop_shifting"] for m in modes])
    return chart.render()


FIGURES: Dict[str, Callable[..., str]] = {
    "fig3": fig3_svg,
    "fig4": fig4_svg,
    "fig5": fig5_svg,
    "fig6": fig6_svg,
    "fig7": fig7_svg,
    "fig8": fig8_svg,
    "fig9": fig9_svg,
    "fig5_sparse": fig5_sparse_svg,
    "heterogeneity": heterogeneity_svg,
    "static_vs_adaptive": static_vs_adaptive_svg,
}


def render_figures(
    out_dir: str,
    names: Optional[List[str]] = None,
    scale: Optional[Scale] = None,
    seed: int = 1,
    store: Store = None,
) -> List[str]:
    """Render the requested figures (default: all) into ``out_dir``.

    With ``store`` set, runs whose artifacts already exist are read from
    disk instead of re-simulated (and fresh runs are persisted there).

    Returns the written file paths.
    """
    scale = scale or get_scale()
    # det: ok(sized-presence-truthiness) -- an empty name list means
    # "render every figure"; emptiness IS the signal, not absence
    wanted = names or list(FIGURES)
    unknown = [n for n in wanted if n not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures {unknown}; choose from {list(FIGURES)}")
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for name in wanted:
        svg = FIGURES[name](scale, seed, store)
        path = out / f"{name}.svg"
        path.write_text(svg)
        written.append(str(path))
    return written


def main(argv: List[str]) -> None:  # pragma: no cover - thin CLI
    out = "figures"
    store: Store = None
    names: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--out":
            out = next(it)
        elif arg == "--results":
            store = ResultStore(next(it))
        else:
            names.append(arg)
    for path in render_figures(out, names or None, store=store):
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main(sys.argv[1:])
