"""Regenerate the paper's figures as SVG files.

Runs the experiment harness (at the ``REPRO_SCALE`` size) and renders
each figure with the chart primitives of :mod:`repro.viz.svg`::

    python -m repro.viz.figures --out figures
    python -m repro.viz.figures --out figures fig5 fig7
"""

from __future__ import annotations

import math
import pathlib
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.common import Scale, get_scale
from repro.viz.svg import BarChart, LineChart


def fig3_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig3_drops import run_fig3

    results = run_fig3(scale=scale, seed=seed)
    chart = LineChart(
        "Fig. 3 — fraction of queries dropped every second",
        x_label="time (s)", y_label="drop fraction (vs rate)",
    )
    for name, series in results.items():
        chart.add_series(name, list(enumerate(series)))
    return chart.render()


def fig4_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig4_replicas import run_fig4

    results = run_fig4(scale=scale, seed=seed)
    chart = LineChart(
        "Fig. 4 — replicas created every second (namespace N_C)",
        x_label="time (s)", y_label="creations (vs rate)",
    )
    for name, series in results.items():
        chart.add_series(name, list(enumerate(series)))
    return chart.render()


def fig5_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig5_ablation import drop_table, run_fig5

    table = drop_table(run_fig5(scale=scale, seed=seed))
    streams = list(next(iter(table.values())).keys())
    chart = BarChart(
        "Fig. 5 — dropped queries: base (B), +caching (BC), +replication (BCR)",
        categories=streams, y_label="fraction of dropped queries",
    )
    for preset, per_stream in table.items():
        chart.add_series(preset, [per_stream[s] for s in streams])
    return chart.render()


def fig6_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig6_load import run_fig6

    results = run_fig6(scale=scale, seed=seed)
    chart = LineChart(
        "Fig. 6 — mean and max server load over time",
        x_label="time (s)", y_label="load (utilisation)",
    )
    for label, series in results.items():
        chart.add_series(f"{label} avg", list(enumerate(series["mean"])))
    # the paper overlays the smoothed maxima; keep within palette budget
    top = list(results)[-1]
    chart.add_series(
        f"{top} max (smoothed)",
        list(enumerate(results[top]["smoothed_max"])),
    )
    return chart.render()


def fig7_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig7_levels import run_fig7

    results = run_fig7(scale=scale, seed=seed)
    chart = LineChart(
        "Fig. 7 — average replicas created per namespace level",
        x_label="namespace tree level (0 = root)",
        y_label="avg replicas per node",
    )
    for name, series in results.items():
        chart.add_series(name, list(enumerate(series)))
    return chart.render()


def fig8_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig8_stabilization import run_fig8

    results = run_fig8(scale=scale, seed=seed)
    chart = LineChart(
        "Fig. 8 — replicas created per bucket over a long run",
        x_label=f"bucket ({scale.long_bucket}s)", y_label="replicas created",
    )
    for name, buckets in results.items():
        chart.add_series(name, list(enumerate(buckets)))
    return chart.render()


def fig9_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig9_scalability import run_fig9

    results = run_fig9(scale=scale, seed=seed)
    sizes = list(results)
    chart = LineChart(
        "Fig. 9 — scalability of latency, replication, and drops",
        x_label="system size (log2 servers)",
        y_label="hops / log2(events)",
    )
    chart.add_series(
        "latency (hops)",
        [(math.log2(n), results[n]["mean_hops"]) for n in sizes],
    )
    chart.add_series(
        "log2(replications)",
        [(math.log2(n), math.log2(max(1.0, results[n]["replicas_created"])))
         for n in sizes],
    )
    chart.add_series(
        "log2(drops)",
        [(math.log2(n), math.log2(max(1.0, results[n]["dropped"])))
         for n in sizes],
    )
    return chart.render()


def fig5_sparse_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.fig5_ablation import run_fig5_sparse

    table = run_fig5_sparse(seed=seed)
    streams = list(next(iter(table.values())).keys())
    chart = BarChart(
        "Fig. 5 (sparse ownership) — caching aggravates N_S; replication rescues",
        categories=streams, y_label="fraction of dropped queries",
    )
    for preset, per_stream in table.items():
        chart.add_series(preset, [per_stream[s] for s in streams])
    return chart.render()


def heterogeneity_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.heterogeneity import run_heterogeneity

    results = run_heterogeneity(scale=scale, seed=seed)
    cases = list(results)
    chart = BarChart(
        "Heterogeneity — half the fleet 2.5× slower (§5 claim)",
        categories=cases, y_label="fraction of dropped queries",
    )
    chart.add_series("drop fraction",
                     [results[c]["drop_fraction"] for c in cases])
    return chart.render()


def static_vs_adaptive_svg(scale: Scale, seed: int = 1) -> str:
    from repro.experiments.static_vs_adaptive import run_static_vs_adaptive

    results = run_static_vs_adaptive(scale=scale, seed=seed)
    modes = list(results)
    chart = BarChart(
        "Static vs adaptive replication (§2.3 argument)",
        categories=modes, y_label="fraction of dropped queries",
    )
    chart.add_series("uniform warm-up",
                     [results[m]["drop_warmup"] for m in modes])
    chart.add_series("shifting hot-spots",
                     [results[m]["drop_shifting"] for m in modes])
    return chart.render()


FIGURES: Dict[str, Callable[[Scale, int], str]] = {
    "fig3": fig3_svg,
    "fig4": fig4_svg,
    "fig5": fig5_svg,
    "fig6": fig6_svg,
    "fig7": fig7_svg,
    "fig8": fig8_svg,
    "fig9": fig9_svg,
    "fig5_sparse": fig5_sparse_svg,
    "heterogeneity": heterogeneity_svg,
    "static_vs_adaptive": static_vs_adaptive_svg,
}


def render_figures(
    out_dir: str,
    names: Optional[List[str]] = None,
    scale: Optional[Scale] = None,
    seed: int = 1,
) -> List[str]:
    """Render the requested figures (default: all) into ``out_dir``.

    Returns the written file paths.
    """
    scale = scale or get_scale()
    wanted = names or list(FIGURES)
    unknown = [n for n in wanted if n not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures {unknown}; choose from {list(FIGURES)}")
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for name in wanted:
        svg = FIGURES[name](scale, seed)
        path = out / f"{name}.svg"
        path.write_text(svg)
        written.append(str(path))
    return written


def main(argv: List[str]) -> None:  # pragma: no cover - thin CLI
    out = "figures"
    names: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--out":
            out = next(it)
        else:
            names.append(arg)
    for path in render_figures(out, names or None):
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main(sys.argv[1:])
