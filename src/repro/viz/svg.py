"""Minimal, dependency-free SVG chart primitives.

Implements the house data-viz method with a validated reference
palette: categorical hues assigned in fixed slot order (never cycled),
2px lines and thin bars with rounded data ends, a single y axis,
recessive grid and axes, text in text tokens (never series colors), a
legend whenever two or more series are drawn, and native SVG hover
titles on every mark. Light-surface rendering (#fcfcfb).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

#: Validated categorical palette (fixed slot order -- the ordering is
#: the CVD-safety mechanism; do not re-sort or cycle).
PALETTE: Tuple[str, ...] = (
    "#2a78d6",  # blue
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
    "#e87ba4",  # magenta
    "#eb6834",  # orange
)

SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e4e3df"
AXIS = "#c9c8c2"

FONT = "font-family='system-ui, sans-serif'"


def nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (1/2/5 steps)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if span / step <= n:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-12:
        if t >= lo - 1e-12:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:g}"
    return f"{v:.3g}"


class _Canvas:
    """Shared frame: surface, title, axes, grid, legend."""

    def __init__(self, width: int, height: int, title: str,
                 x_label: str = "", y_label: str = "") -> None:
        self.width = width
        self.height = height
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.margin = dict(left=64, right=16, top=44, bottom=46)
        self.parts: List[str] = []

    @property
    def plot_w(self) -> float:
        return self.width - self.margin["left"] - self.margin["right"]

    @property
    def plot_h(self) -> float:
        return self.height - self.margin["top"] - self.margin["bottom"]

    def sx(self, frac: float) -> float:
        return self.margin["left"] + frac * self.plot_w

    def sy(self, frac: float) -> float:
        return self.margin["top"] + (1.0 - frac) * self.plot_h

    def frame(self, y_ticks: Sequence[float], y_lo: float, y_hi: float) -> None:
        m = self.margin
        self.parts.append(
            f"<rect width='{self.width}' height='{self.height}' "
            f"fill='{SURFACE}'/>"
        )
        self.parts.append(
            f"<text x='{m['left']}' y='22' {FONT} font-size='14' "
            f"font-weight='600' fill='{TEXT_PRIMARY}'>"
            f"{escape(self.title)}</text>"
        )
        span = (y_hi - y_lo) or 1.0
        for t in y_ticks:
            y = self.sy((t - y_lo) / span)
            self.parts.append(
                f"<line x1='{m['left']}' y1='{y:.1f}' "
                f"x2='{self.width - m['right']}' y2='{y:.1f}' "
                f"stroke='{GRID}' stroke-width='1'/>"
            )
            self.parts.append(
                f"<text x='{m['left'] - 6}' y='{y + 3:.1f}' {FONT} "
                f"font-size='10' text-anchor='end' "
                f"fill='{TEXT_SECONDARY}'>{_fmt(t)}</text>"
            )
        base = self.sy(0.0)
        self.parts.append(
            f"<line x1='{m['left']}' y1='{base:.1f}' "
            f"x2='{self.width - m['right']}' y2='{base:.1f}' "
            f"stroke='{AXIS}' stroke-width='1'/>"
        )
        if self.x_label:
            self.parts.append(
                f"<text x='{self.sx(0.5):.1f}' y='{self.height - 8}' {FONT} "
                f"font-size='11' text-anchor='middle' "
                f"fill='{TEXT_SECONDARY}'>{escape(self.x_label)}</text>"
            )
        if self.y_label:
            x, y = 14, self.sy(0.5)
            self.parts.append(
                f"<text x='{x}' y='{y:.1f}' {FONT} font-size='11' "
                f"text-anchor='middle' fill='{TEXT_SECONDARY}' "
                f"transform='rotate(-90 {x} {y:.1f})'>"
                f"{escape(self.y_label)}</text>"
            )

    def legend(self, names: Sequence[str]) -> None:
        """A legend row under the title (always drawn for >= 2 series)."""
        if len(names) < 2:
            return
        x = self.margin["left"]
        y = 34
        for i, name in enumerate(names):
            color = PALETTE[i % len(PALETTE)]
            self.parts.append(
                f"<rect x='{x}' y='{y - 8}' width='10' height='10' rx='2' "
                f"fill='{color}'/>"
            )
            label = escape(name)
            self.parts.append(
                f"<text x='{x + 14}' y='{y}' {FONT} font-size='10' "
                f"fill='{TEXT_PRIMARY}'>{label}</text>"
            )
            x += 22 + 6 * len(name)

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (
            f"<svg xmlns='http://www.w3.org/2000/svg' width='{self.width}' "
            f"height='{self.height}' viewBox='0 0 {self.width} "
            f"{self.height}'>\n{body}\n</svg>\n"
        )


class LineChart:
    """Multi-series line chart (one y axis, series in fixed slot order).

    >>> c = LineChart("title", y_label="drops/s")
    >>> c.add_series("unif", [(0, 0.0), (1, 0.5)])
    >>> svg = c.render()
    """

    def __init__(self, title: str, x_label: str = "", y_label: str = "",
                 width: int = 640, height: int = 360,
                 log_y: bool = False) -> None:
        self.canvas = _Canvas(width, height, title, x_label, y_label)
        self.series: List[Tuple[str, List[Tuple[float, float]]]] = []
        self.log_y = log_y

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if len(self.series) >= len(PALETTE):
            raise ValueError(
                "too many series for the fixed palette; fold extras into "
                "'Other' or use small multiples"
            )
        self.series.append((name, [(float(x), float(y)) for x, y in points]))

    def _transform_y(self, y: float) -> float:
        if self.log_y:
            return math.log10(max(y, 1e-12))
        return y

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series added")
        xs = [x for _, pts in self.series for x, _ in pts]
        ys = [self._transform_y(y) for _, pts in self.series for _, y in pts]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys + [0.0] if not self.log_y else ys), max(ys)
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        ticks = nice_ticks(y_lo, y_hi)
        y_lo, y_hi = min(ticks + [y_lo]), max(ticks + [y_hi])
        c = self.canvas
        c.frame(ticks, y_lo, y_hi)
        c.legend([name for name, _ in self.series])
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        for i, (name, pts) in enumerate(self.series):
            color = PALETTE[i]
            coords = " ".join(
                f"{c.sx((x - x_lo) / x_span):.1f},"
                f"{c.sy((self._transform_y(y) - y_lo) / y_span):.1f}"
                for x, y in pts
            )
            title = escape(name)
            c.parts.append(
                f"<polyline points='{coords}' fill='none' stroke='{color}' "
                f"stroke-width='2' stroke-linejoin='round'>"
                f"<title>{title}</title></polyline>"
            )
            # selective direct label at the line's end
            lx, ly = pts[-1]
            c.parts.append(
                f"<text x='{c.sx((lx - x_lo) / x_span) - 2:.1f}' "
                f"y='{c.sy((self._transform_y(ly) - y_lo) / y_span) - 5:.1f}' "
                f"{FONT} font-size='9' text-anchor='end' "
                f"fill='{TEXT_SECONDARY}'>{title}</text>"
            )
        # x tick labels
        for t in nice_ticks(x_lo, x_hi, 6):
            x = c.sx((t - x_lo) / x_span)
            c.parts.append(
                f"<text x='{x:.1f}' y='{c.sy(0.0) + 14:.1f}' {FONT} "
                f"font-size='10' text-anchor='middle' "
                f"fill='{TEXT_SECONDARY}'>{_fmt(t)}</text>"
            )
        return c.render()


class BarChart:
    """Grouped bar chart: one group per category, one bar per series."""

    def __init__(self, title: str, categories: Sequence[str],
                 x_label: str = "", y_label: str = "",
                 width: int = 720, height: int = 360) -> None:
        self.canvas = _Canvas(width, height, title, x_label, y_label)
        self.categories = list(categories)
        self.series: List[Tuple[str, List[float]]] = []

    def add_series(self, name: str, values: Sequence[float]) -> None:
        if len(values) != len(self.categories):
            raise ValueError("one value per category required")
        if len(self.series) >= len(PALETTE):
            raise ValueError("too many series for the fixed palette")
        self.series.append((name, [float(v) for v in values]))

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series added")
        values = [v for _, vs in self.series for v in vs]
        y_lo, y_hi = 0.0, max(values + [1e-9])
        ticks = nice_ticks(y_lo, y_hi)
        y_hi = max(ticks + [y_hi])
        c = self.canvas
        c.frame(ticks, y_lo, y_hi)
        c.legend([name for name, _ in self.series])
        n_groups = len(self.categories)
        n_series = len(self.series)
        group_w = c.plot_w / n_groups
        # thin bars with a 2px surface gap between neighbours
        bar_w = min(26.0, (group_w * 0.7 - 2 * (n_series - 1)) / n_series)
        base = c.sy(0.0)
        for g, cat in enumerate(self.categories):
            cx = c.margin["left"] + (g + 0.5) * group_w
            first = cx - (n_series * bar_w + (n_series - 1) * 2) / 2
            for i, (name, vs) in enumerate(self.series):
                v = vs[g]
                h = (v / y_hi) * c.plot_h if y_hi else 0.0
                x = first + i * (bar_w + 2)
                y = base - h
                color = PALETTE[i]
                tip = escape(f"{name} / {cat}: {_fmt(v)}")
                c.parts.append(
                    f"<path d='M{x:.1f},{base:.1f} V{y + 4:.1f} "
                    f"Q{x:.1f},{y:.1f} {x + 4:.1f},{y:.1f} "
                    f"H{x + bar_w - 4:.1f} "
                    f"Q{x + bar_w:.1f},{y:.1f} {x + bar_w:.1f},{y + 4:.1f} "
                    f"V{base:.1f} Z' fill='{color}'>"
                    f"<title>{tip}</title></path>"
                )
            c.parts.append(
                f"<text x='{cx:.1f}' y='{base + 14:.1f}' {FONT} "
                f"font-size='9' text-anchor='middle' "
                f"fill='{TEXT_SECONDARY}'>{escape(cat)}</text>"
            )
        return c.render()
