"""Query workloads: uniform / Zipf streams with shifting hot-spots."""

from repro.workload.streams import (
    StreamSegment,
    WorkloadSpec,
    cuzipf_stream,
    unif_stream,
    uzipf_stream,
)
from repro.workload.arrivals import WorkloadDriver

__all__ = [
    "StreamSegment",
    "WorkloadDriver",
    "WorkloadSpec",
    "cuzipf_stream",
    "unif_stream",
    "uzipf_stream",
]
