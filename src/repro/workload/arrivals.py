"""Drives a :class:`~repro.workload.streams.WorkloadSpec` into a system.

Arrivals are generated lazily -- each arrival event schedules the next
one -- so multi-million-query runs never materialise their arrival list.
The driver owns the rank-to-node permutation and redraws it at segment
boundaries flagged ``reshuffle`` (instantaneous random popularity
change); Zipf samplers are cached per distinct alpha.

Segment boundaries are anchored at the driver's start time, so a
workload can begin at any point of an already-running simulation.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.system import System
from repro.sim.rng import ZipfSampler, exponential
from repro.workload.streams import WorkloadSpec


def iter_arrivals(
    spec: WorkloadSpec, n_nodes: int, n_servers: int, t0: float = 0.0
) -> Iterator[Tuple[float, int, int]]:
    """Yield the exact ``(time, src_server, dest_node)`` arrival stream a
    :class:`WorkloadDriver` started at ``t0`` would inject.

    Sharded runs cannot generate arrivals lazily inside one shard --
    the stream's RNG is global (one Poisson process, one popularity
    permutation) while injection points are scattered across shards.
    The coordinator instead materialises the stream with this
    generator, assigns query ids in global arrival order, and
    partitions by the source server's shard.

    Every RNG draw here replays :meth:`WorkloadDriver._arrival`'s
    sequence draw for draw (initial shuffle, inter-arrival gaps,
    reshuffles at segment boundaries, source then destination per
    arrival), so a fixed seed yields bit-identical arrivals either way;
    a regression test locks the two together.
    """
    rng = random.Random(spec.seed ^ 0xA11CE5)
    perm = list(range(n_nodes))
    rng.shuffle(perm)
    samplers: Dict[float, ZipfSampler] = {}
    boundaries = spec.boundaries()
    end_time = t0 + boundaries[-1]
    segment_idx = 0
    now = t0 + exponential(
        rng, 1.0 / (spec.rate * spec.segments[0].rate_mult)
    )
    while now < end_time:
        rel = now - t0
        while rel >= boundaries[segment_idx]:
            segment_idx += 1
            if spec.segments[segment_idx].reshuffle:
                rng.shuffle(perm)
        seg = spec.segments[segment_idx]
        src = rng.randrange(n_servers)
        if seg.alpha == 0.0:
            dest = rng.randrange(n_nodes)
        else:
            sampler = samplers.get(seg.alpha)
            if sampler is None:
                sampler = ZipfSampler(n_nodes, seg.alpha)
                samplers[seg.alpha] = sampler
            dest = perm[sampler.sample(rng)]
        yield now, src, dest
        now += exponential(rng, 1.0 / (spec.rate * seg.rate_mult))


class WorkloadDriver:
    """Schedules Poisson query arrivals for one workload spec."""

    __slots__ = (
        "system",
        "spec",
        "_rng",
        "_perm",
        "_samplers",
        "_boundaries",
        "_segment_idx",
        "_t0",
        "_end_time",
        "_started",
        "n_generated",
        "n_reshuffles",
    )

    def __init__(self, system: System, spec: WorkloadSpec) -> None:
        self.system = system
        self.spec = spec
        self._rng = random.Random(spec.seed ^ 0xA11CE5)
        n = len(system.ns)
        self._perm: List[int] = list(range(n))
        self._rng.shuffle(self._perm)
        self._samplers: Dict[float, ZipfSampler] = {}
        self._boundaries = spec.boundaries()
        self._segment_idx = 0
        self._t0 = 0.0
        self._end_time = self._boundaries[-1]
        self._started = False
        self.n_generated = 0
        self.n_reshuffles = 0

    # ------------------------------------------------------------------

    def start(self, at: Optional[float] = None) -> None:
        """Begin generating arrivals at simulated time ``at``.

        Defaults to the engine's current time; segment boundaries are
        relative to this instant.
        """
        if self._started:
            raise RuntimeError("driver already started")
        self._started = True
        now = self.system.engine.now
        self._t0 = now if at is None else max(at, now)
        self._end_time = self._t0 + self._boundaries[-1]
        offset = self._t0 + exponential(
            self._rng, 1.0 / (self.spec.rate * self.spec.segments[0].rate_mult)
        )
        self.system.engine.schedule(offset, self._arrival)

    @property
    def end_time(self) -> float:
        """Absolute simulation time of the last possible arrival."""
        return self._end_time

    def run(self, extra_time: float = 5.0) -> None:
        """Convenience: start now and run the system until the stream
        ends plus ``extra_time`` for in-flight queries to drain."""
        if not self._started:
            self.start()
        self.system.run_until(self._end_time + extra_time)

    # ------------------------------------------------------------------

    def _sampler(self, alpha: float) -> ZipfSampler:
        s = self._samplers.get(alpha)
        if s is None:
            s = ZipfSampler(len(self.system.ns), alpha)
            self._samplers[alpha] = s
        return s

    def _advance_segment(self, now: float) -> bool:
        """Move to the segment containing ``now``; False when past the end."""
        if now >= self._end_time:
            return False
        rel = now - self._t0
        idx = self._segment_idx
        while rel >= self._boundaries[idx]:
            idx += 1
            if self.spec.segments[idx].reshuffle:
                self._rng.shuffle(self._perm)
                self.n_reshuffles += 1
        self._segment_idx = idx
        return True

    def _arrival(self) -> None:
        now = self.system.engine.now
        if not self._advance_segment(now):
            return
        seg = self.spec.segments[self._segment_idx]
        rng = self._rng
        src = rng.randrange(len(self.system.peers))
        if seg.alpha == 0.0:
            dest = rng.randrange(len(self._perm))
        else:
            rank = self._sampler(seg.alpha).sample(rng)
            dest = self._perm[rank]
        self.system.inject(src, dest)
        self.n_generated += 1
        gap = exponential(rng, 1.0 / (self.spec.rate * seg.rate_mult))
        self.system.engine.schedule(now + gap, self._arrival)
