"""Query stream specifications (paper section 4.1).

Lookups are initiated uniformly at source servers; destinations are
chosen uniformly at random (``unif`` traces) or by the Zipf law of
popularity vs. ranking (``uzipf`` traces).  Node ranking is a random
permutation of the namespace; "instantaneous and random changes in node
popularity" redraw that permutation, which is how the paper models
shifting hot-spots.

A :class:`WorkloadSpec` is a concatenation of :class:`StreamSegment`\\ s,
e.g. the paper's ``cuzipf`` streams ``unif ++ uzipf ++ uzipf ++ ...``
with a popularity reshuffle at each uzipf segment boundary.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence


@dataclasses.dataclass(frozen=True)
class StreamSegment:
    """One homogeneous phase of a query stream.

    Attributes:
        duration: segment length in simulated seconds.
        alpha: Zipf order of destination popularity (0 = uniform).
        reshuffle: redraw the rank-to-node permutation when the segment
            starts (an instantaneous random popularity change).
        rate_mult: arrival-rate multiplier for this segment relative to
            the spec's global ``rate`` (a flash crowd is a segment with
            a skewed alpha *and* a surge in offered load).  The default
            ``1.0`` is exact in IEEE arithmetic (``x * 1.0 == x``), so
            specs that never set it draw bit-identical streams.
    """

    duration: float
    alpha: float = 0.0
    reshuffle: bool = False
    rate_mult: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        if self.rate_mult <= 0:
            raise ValueError("rate_mult must be > 0")


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A complete workload: arrival rate plus a segment sequence.

    Attributes:
        rate: global mean Poisson query arrival rate (queries/second).
        segments: phases executed back to back.
        seed: workload RNG seed (sources, destinations, permutations).
        name: label used in reports.
    """

    rate: float
    segments: Sequence[StreamSegment]
    seed: int = 0
    name: str = "workload"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if not self.segments:
            raise ValueError("at least one segment required")

    @property
    def duration(self) -> float:
        return sum(s.duration for s in self.segments)

    def boundaries(self) -> List[float]:
        """Cumulative segment end times."""
        out: List[float] = []
        t = 0.0
        for s in self.segments:
            t += s.duration
            out.append(t)
        return out


def unif_stream(
    rate: float, duration: float, seed: int = 0, name: str = "unif"
) -> WorkloadSpec:
    """A pure uniform stream (the paper's ``unif`` traces)."""
    return WorkloadSpec(
        rate=rate,
        segments=(StreamSegment(duration, alpha=0.0),),
        seed=seed,
        name=name,
    )


def uzipf_stream(
    rate: float,
    duration: float,
    alpha: float,
    seed: int = 0,
    name: str = "",
) -> WorkloadSpec:
    """A pure Zipf(alpha) stream (the paper's ``uzipf`` traces)."""
    return WorkloadSpec(
        rate=rate,
        segments=(StreamSegment(duration, alpha=alpha, reshuffle=True),),
        seed=seed,
        name=name or f"uzipf{alpha:.2f}",
    )


def cuzipf_stream(
    rate: float,
    alpha: float,
    warmup: float,
    phase: float,
    n_phases: int = 4,
    seed: int = 0,
    name: str = "",
) -> WorkloadSpec:
    """The paper's composite ``cuzipf`` stream.

    A uniform warm-up lets a cold system compensate for hierarchical
    bottlenecks (replicate the top of the namespace) before locality
    effects start; then ``n_phases`` Zipf(alpha) phases follow, each
    beginning with an instantaneous random popularity change.

    Args:
        warmup: uniform prefix duration, seconds.
        phase: duration of each Zipf phase, seconds.
        n_phases: number of Zipf phases (paper uses 4).
    """
    if n_phases < 1:
        raise ValueError("n_phases must be >= 1")
    segments: List[StreamSegment] = [StreamSegment(warmup, alpha=0.0)]
    for _ in range(n_phases):
        segments.append(StreamSegment(phase, alpha=alpha, reshuffle=True))
    return WorkloadSpec(
        rate=rate,
        segments=tuple(segments),
        seed=seed,
        name=name or f"cuzipf{alpha:.2f}",
    )


def flash_crowd_stream(
    rate: float,
    normal: float,
    crowd: float,
    alpha: float = 1.5,
    surge: float = 1.0,
    seed: int = 0,
    name: str = "flash-crowd",
) -> WorkloadSpec:
    """A flash crowd: normal traffic, then a sudden extreme hot-spot.

    A uniform prefix of ``normal`` seconds is followed by a ``crowd``
    phase where popularity snaps to Zipf(``alpha``) over a fresh random
    ranking -- the release-announcement scenario of the Fig. 3/Fig. 5
    discussion.  ``surge`` additionally multiplies the arrival rate
    during the crowd (the default 1.0 keeps total offered load flat, so
    the crowd is a pure *concentration* event).

    Args:
        normal: duration of the pre-crowd uniform phase, seconds.
        crowd: duration of the crowd phase, seconds.
        alpha: Zipf order of the crowd's popularity skew.
        surge: crowd-phase arrival-rate multiplier (>= 1 for a real
            crowd; exactly 1.0 preserves the historical stream).
    """
    return WorkloadSpec(
        rate=rate,
        segments=(
            StreamSegment(normal, alpha=0.0),
            StreamSegment(crowd, alpha=alpha, reshuffle=True,
                          rate_mult=surge),
        ),
        seed=seed,
        name=name,
    )
