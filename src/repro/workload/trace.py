"""Query traces: recording, replay, and empirical workloads from path
listings.

The paper's N_C experiments derive both the namespace and the demand
distribution from a real file-server trace.  This module provides that
pipeline for anyone holding such a trace -- and for reproducible
record/replay experiments:

* :class:`QueryTrace` -- a list of ``(time, src_server, dest_node)``
  events with text save/load;
* :class:`TraceRecorder` -- taps a system's injection point;
* :func:`replay_trace` -- schedules a recorded trace into a (possibly
  differently configured) system, enabling A/B comparisons on
  *identical* query sequences;
* :func:`namespace_from_paths` -- build a namespace plus per-node
  access counts from ``[count] /path`` lines (``find``/accounting-log
  style);
* :class:`EmpiricalWorkloadDriver` -- Poisson arrivals whose
  destinations follow empirical per-node weights.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.cluster.system import System
from repro.namespace.name import validate_name
from repro.namespace.tree import Namespace, NamespaceBuilder
from repro.sim.rng import exponential


class QueryTrace:
    """An ordered record of query injections."""

    __slots__ = ("events",)

    def __init__(
        self, events: Optional[List[Tuple[float, int, int]]] = None
    ) -> None:
        self.events: List[Tuple[float, int, int]] = (
            events if events is not None else []
        )

    def __len__(self) -> int:
        return len(self.events)

    def append(self, t: float, src: int, dest: int) -> None:
        self.events.append((t, src, dest))

    @property
    def duration(self) -> float:
        return self.events[-1][0] if self.events else 0.0

    def save(self, fh: TextIO) -> None:
        """Write as ``time src dest`` lines."""
        for t, src, dest in self.events:
            fh.write(f"{t:.9f} {src} {dest}\n")

    @classmethod
    def load(cls, fh: TextIO) -> "QueryTrace":
        events: List[Tuple[float, int, int]] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: expected 'time src dest'")
            events.append((float(parts[0]), int(parts[1]), int(parts[2])))
        events.sort()
        return cls(events)

    def scaled(self, time_factor: float = 1.0) -> "QueryTrace":
        """A copy with all timestamps multiplied (speed up / slow down)."""
        if time_factor <= 0:
            raise ValueError("time_factor must be > 0")
        return QueryTrace(
            [(t * time_factor, s, d) for t, s, d in self.events]
        )


class TraceRecorder:
    """Record every injection into a system.

    >>> recorder = TraceRecorder(system)      # doctest: +SKIP
    >>> trace = recorder.trace                # doctest: +SKIP
    """

    def __init__(self, system: System) -> None:
        if system.on_inject is not None:
            raise RuntimeError("system already has an injection tap")
        self.trace = QueryTrace()
        system.on_inject = self.trace.append

    @staticmethod
    def detach(system: System) -> None:
        system.on_inject = None


def replay_trace(
    system: System, trace: QueryTrace, start_at: float = 0.0
) -> None:
    """Schedule every trace event into ``system`` (relative to
    ``start_at``); call ``system.run_until`` afterwards to execute."""
    engine = system.engine
    inject = system.inject
    for t, src, dest in trace.events:
        engine.schedule(start_at + t, inject, src, dest)


# ---------------------------------------------------------------------------
# empirical namespaces and workloads from path listings
# ---------------------------------------------------------------------------


def namespace_from_paths(
    lines: Iterable[str],
) -> Tuple[Namespace, Dict[int, int]]:
    """Build a namespace and per-node access counts from text lines.

    Accepted line formats (blank lines and ``#`` comments skipped)::

        /a/b/c           # count 1
        17 /a/b/c        # explicit access count

    Ancestor directories are created implicitly (count 0 unless listed
    themselves).  This is exactly how the paper built N_C: "files
    accessed during this month together with their ancestors were
    included in this namespace."

    Returns:
        ``(namespace, {node_id: access_count})``.
    """
    builder = NamespaceBuilder()
    pending: List[Tuple[str, int]] = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        if len(parts) == 2 and not parts[0].startswith("/"):
            try:
                count = int(parts[0])
            except ValueError:
                raise ValueError(f"line {lineno}: bad count {parts[0]!r}")
            name = parts[1].strip()
        else:
            count, name = 1, line
        validate_name(name)
        pending.append((name, count))
    counts_by_name: Dict[str, int] = {}
    for name, count in pending:
        builder.add_path(name)
        counts_by_name[name] = counts_by_name.get(name, 0) + count
    ns = builder.build()
    counts = {ns.id_of(name): c for name, c in counts_by_name.items()}
    return ns, counts


class EmpiricalWorkloadDriver:
    """Poisson arrivals with destinations drawn from empirical weights.

    Unlisted nodes get weight 0 (never queried), matching trace-driven
    demand.  Sources remain uniform over servers, as in the paper.
    """

    __slots__ = ("system", "rate", "duration", "_rng", "_nodes", "_cum",
                 "_end", "n_generated", "_started")

    def __init__(
        self,
        system: System,
        rate: float,
        duration: float,
        weights: Dict[int, float],
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if duration <= 0:
            raise ValueError("duration must be > 0")
        positive = [(n, w) for n, w in sorted(weights.items()) if w > 0]
        if not positive:
            raise ValueError("need at least one positive weight")
        self.system = system
        self.rate = rate
        self.duration = duration
        self._rng = random.Random(seed ^ 0x7ABCE)
        self._nodes = [n for n, _ in positive]
        cum: List[float] = []
        acc = 0.0
        for _, w in positive:
            acc += w
            cum.append(acc)
        self._cum = cum
        self._end = 0.0
        self.n_generated = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("driver already started")
        self._started = True
        now = self.system.engine.now
        self._end = now + self.duration
        self.system.engine.schedule(
            now + exponential(self._rng, 1.0 / self.rate), self._arrival
        )

    def run(self, extra_time: float = 5.0) -> None:
        if not self._started:
            self.start()
        self.system.run_until(self._end + extra_time)

    def _sample_dest(self) -> int:
        u = self._rng.random() * self._cum[-1]
        return self._nodes[bisect.bisect_left(self._cum, u)]

    def _arrival(self) -> None:
        now = self.system.engine.now
        if now >= self._end:
            return
        src = self._rng.randrange(len(self.system.peers))
        self.system.inject(src, self._sample_dest())
        self.n_generated += 1
        self.system.engine.schedule(
            now + exponential(self._rng, 1.0 / self.rate), self._arrival
        )
