"""DET005 negative: this path IS the sanctioned configuration funnel.

Classified ``chokepoint`` (experiments/common.py relative to the
fixture root), where the env-read rule does not apply at all.
"""

import os


def get_scale():
    return os.environ.get("REPRO_SCALE", "tiny")


def get_workers():
    return int(os.getenv("REPRO_WORKERS", "0"))
