"""Fixture: ``runtime/async_*`` is the sanctioned wall-clock funnel.

Live-mode code legitimately reads real time and process entropy;
DET001 must stay silent here (and only here).
"""

import random
import time


def now_wall():
    return time.time()


def jitter():
    return random.random()
