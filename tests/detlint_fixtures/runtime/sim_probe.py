"""Fixture: the simulation side of ``runtime/`` keeps the full
no-wall-clock contract -- the async_* sanction must not leak."""

import random
import time


def now_wall():
    return time.time()


def jitter():
    return random.random()
