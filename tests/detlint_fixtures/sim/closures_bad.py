"""DET003 positives: late-binding loop captures (the PR 7 bug class)."""


def merge_streams(logs):
    # the PR 7 stats-merge bug, verbatim shape: the genexp is built per
    # shard but drained after the loop, so every stream reads the final
    # shard_id
    streams = []
    for shard_id, log in enumerate(logs):
        streams.append(
            (rec[0], shard_id, idx, rec)  # DET003: shard_id, idx late
            for idx, rec in enumerate(log)
        )
    return streams


def make_callbacks(peers):
    callbacks = []
    for peer in peers:
        callbacks.append(lambda msg: peer.deliver(msg))  # DET003: peer
    return callbacks


def make_handlers(targets):
    handlers = []
    for t in targets:
        def handler(msg):
            return t.on_message(msg)  # DET003: nested def reads t late
        handlers.append(handler)
    return handlers


def comprehension_capture(shards):
    return [lambda: shard.flush() for shard in shards]  # DET003: shard
