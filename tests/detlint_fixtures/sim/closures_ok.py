"""DET003 negatives: frozen defaults, factories, eager consumption."""

import heapq


def merge_streams_fixed(logs):
    # the PR 7 fix: a factory function re-binds shard_id/log per call
    def keyed(shard_id, log):
        return ((rec[0], shard_id, idx, rec)
                for idx, rec in enumerate(log))

    streams = [keyed(shard_id, log) for shard_id, log in enumerate(logs)]
    return heapq.merge(*streams)


def make_callbacks(peers):
    callbacks = []
    for peer in peers:
        # default-argument freezing: _p binds eagerly, per iteration
        callbacks.append(lambda msg, _p=peer: _p.deliver(msg))
    return callbacks


def bind_handlers(handlers, target):
    bound = {}
    for msg_type, handler in handlers.items():
        def _call(msg, _h=handler, _t=target):  # defaults freeze both
            _h(_t, msg)
        bound[msg_type] = _call
    return bound


def eager_totals(bins):
    totals = []
    for scale in bins:
        # list(...) consumes the genexp before scale advances
        totals.append(list(scale * w for w in bins[scale]))
    return totals


def sorted_keys(groups):
    out = []
    for prefix in groups:
        # sorted(..., key=lambda ...) runs the lambda eagerly
        out.append(sorted(groups[prefix], key=lambda s: (len(s), s)))
    return out
