"""DET001 positives: ambient entropy and wall clocks in protocol code."""

import random
import time
import uuid
from datetime import datetime
from random import randrange


def pick_server(servers):
    return servers[random.randrange(len(servers))]  # DET001: module-level


def jitter():
    return random.random()  # DET001: module-level random


def pick_direct(servers):
    return servers[randrange(len(servers))]  # DET001: from-import alias


def fresh_rng():
    return random.Random()  # DET001: unseeded Random()


def stamp():
    return time.time()  # DET001: wall clock


def stamp_iso():
    return datetime.now().isoformat()  # DET001: wall clock


def query_id():
    return uuid.uuid4().hex  # DET001: OS entropy
