"""DET001 negatives: seeded streams and the engine clock are fine."""

import random
import time


def pick_server(servers, rng: random.Random):
    return servers[rng.randrange(len(servers))]  # seeded stream instance


def derive_stream(seed: int):
    return random.Random(seed)  # explicitly seeded


def wall_profile():
    return time.perf_counter()  # profiling clock, not simulation time


def sim_timestamp(engine):
    return engine.now  # the engine clock
