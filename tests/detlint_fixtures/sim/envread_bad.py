"""DET005 positives: environment reads outside the choke points."""

import os
from os import getenv


def resolve_workers():
    return int(os.environ.get("REPRO_WORKERS", "0"))  # DET005: .get


def resolve_scale():
    return os.environ["REPRO_SCALE"]  # DET005: subscript read


def resolve_backend():
    return getenv("REPRO_SHARD_BACKEND")  # DET005: os.getenv

def debug_enabled():
    return "REPRO_DEBUG" in os.environ  # DET005: containment test


def dump_env():
    out = {}
    for key in os.environ:  # DET005: iteration
        out[key] = "set"
    return out


def export_workers(n):
    os.environ["REPRO_WORKERS"] = str(n)  # a write: NOT flagged
