"""DET004 positives: unordered iteration feeding order-sensitive sinks."""


def visit_members(names):
    out = []
    for name in {n.lower() for n in names}:  # DET004: set comprehension
        out.append(name)
    return out


def visit_literal():
    total = 0.0
    for weight in {0.25, 0.5, 1.0}:  # DET004: set literal iteration
        total += weight
    return total


def dedup_scan(servers):
    return [s for s in set(servers)]  # DET004: set() in comprehension


def total_weight(weights):
    return sum(weights.values())  # DET004: float sum over .values()


def mean_latency(samples):
    return sum(s * 1.0 for s in set(samples))  # DET004: floats from set
