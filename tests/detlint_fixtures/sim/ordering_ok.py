"""DET004 negatives: sorted wrappers, int sums, plain dict loops."""


def visit_members(names):
    out = []
    for name in sorted({n.lower() for n in names}):  # sorted(...) wraps
        out.append(name)
    return out


def total_weight(weights):
    return sum(sorted(weights.values()))  # deterministic accumulation


def total_entries(maps):
    return sum(len(v) for v in maps.values())  # int elements commute


def count_hot(weights):
    return sum(int(w > 1.0) for w in weights.values())  # int elements


def drain(buckets):
    out = []
    for key, bucket in buckets.items():  # plain dict iteration: ordered
        out.extend(bucket)
    return out


def spread(samples):
    return max(samples) - min(samples)  # order-independent extrema
