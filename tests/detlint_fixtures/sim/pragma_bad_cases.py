"""Defective pragmas: every one must surface as DET000 bad-pragma."""

import random


def unknown_rule(servers):
    return servers[random.randrange(len(servers))]  # det: ok(no-such-rule) -- typo'd rule name


def missing_why(servers):
    return servers[random.randrange(len(servers))]  # det: ok(wall-clock-entropy)


def unparseable(servers):
    return servers[random.randrange(len(servers))]  # det: allow wall-clock-entropy


def stale_waiver(servers):
    # det: ok(wall-clock-entropy) -- suppresses nothing: next line is clean
    return sorted(servers)
