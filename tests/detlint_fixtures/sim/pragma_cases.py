"""Pragma behavior fixtures: valid waiver, multi-line justification.

``pragma_bad_cases.py`` carries the defective ones (they must fail).
"""

import random


def waived_inline(servers):
    return servers[random.randrange(len(servers))]  # det: ok(wall-clock-entropy) -- fixture: justified inline waiver


def waived_standalone(weights):
    # det: ok(unordered-iteration) -- fixture: integer counters only;
    # addition commutes exactly, any order gives the same total
    return sum(weights.values())


def waived_by_id(servers):
    return servers[random.randrange(len(servers))]  # det: ok(DET001) -- fixture: waiver by rule id
