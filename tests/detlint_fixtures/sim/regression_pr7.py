"""The two PR 7 bugs, verbatim shapes, as lint regression fixtures.

Both were found by hand during the sharded-engine work (see DESIGN.md
section 12); the linter exists so the next instance is found by CI.
"""

import heapq


def replay_stats_buggy(logs):
    # Bug 1 (DET003): the keying generator expression was built inside
    # the per-shard loop but drained by heapq.merge after it, so every
    # stream read shard_id at its final value -- all records stamped
    # with the last shard, breaking the canonical (time, shard, index)
    # merge order.
    streams = []
    for shard_id, log in enumerate(logs):
        streams.append(
            (rec[0], shard_id, idx, rec)
            for idx, rec in enumerate(log)
        )
    return heapq.merge(*streams)


def build_system_buggy(cfg, engine=None):
    # Bug 2 (DET002): Engine defines __len__, so a fresh (empty) engine
    # passed by the caller is falsy -- the 'or' fabricates a second
    # engine and the caller's handle never sees any scheduled events.
    engine = engine or make_engine()
    return engine


def make_engine():
    return object()
