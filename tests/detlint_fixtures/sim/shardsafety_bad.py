"""DET006 positives: dispatch handlers touching module-level state."""

from repro.net.dispatch import DispatchRegistry

REGISTRY = DispatchRegistry("fixture")
SEEN_QUERIES = []
COUNTERS = {}
TOTAL = 0


class QueryMessage:
    pass


class ProbeMessage:
    pass


class AdvertMessage:
    pass


REGISTRY.register(QueryMessage, "_on_query")


def _on_query(target, msg):
    SEEN_QUERIES.append(msg)  # DET006: mutating method on module list
    target.note(msg)


def on_probe(target, msg):
    COUNTERS["probes"] = COUNTERS.get("probes", 0) + 1  # DET006: store
    target.note(msg)


REGISTRY.register(ProbeMessage, on_probe)


@REGISTRY.register(AdvertMessage)
def on_advert(target, msg):
    global TOTAL  # DET006: global declaration in a handler
    TOTAL += 1
    target.note(msg)
