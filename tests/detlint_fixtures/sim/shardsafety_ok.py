"""DET006 negatives: handlers keep state on the endpoint object."""

from repro.net.dispatch import DispatchRegistry

REGISTRY = DispatchRegistry("fixture")

#: read-only module constant: reads are fine, only mutation is flagged
DEFAULT_TTL = 30.0


class QueryMessage:
    pass


class ProbeMessage:
    pass


REGISTRY.register(QueryMessage, "_on_query")


def _on_query(target, msg):
    target.seen.append(msg)  # endpoint state, not module state
    target.n_queries += 1
    ttl = DEFAULT_TTL  # module read: allowed
    local = []
    local.append(ttl)  # local binding shadows nothing
    return local


def on_probe(target, msg):
    counters = target.counters
    counters["probes"] = counters.get("probes", 0) + 1  # via endpoint
    target.note(msg)


REGISTRY.register(ProbeMessage, on_probe)


def not_a_handler(payload):
    # unregistered helper: module mutation is DET006-exempt here
    # (module import side effects are covered by review, not this rule)
    _SCRATCH.append(payload)


_SCRATCH = []
