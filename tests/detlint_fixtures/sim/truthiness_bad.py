"""DET002 positives: boolean presence tests on sized objects.

Annotations are unquoted on purpose: the rule reads annotation names
from the AST, and a quoted forward reference is a string constant.
These files are AST input only, never imported.
"""

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.stats import SystemStats
from repro.namespace.tree import Namespace


def build_system(engine=None):
    engine = engine or make_engine()  # DET002: drops an empty Engine
    return engine


def merge(entry=None):
    entry = entry or []  # DET002: mutable fallback, identity-divergent
    return entry


def run(engine: Optional[Engine]):
    if engine:  # DET002: empty engine is falsy but present
        engine.run()


def drain(stats: SystemStats):
    assert stats  # DET002: assert-truthiness on a sized type
    while stats:  # DET002: while-truthiness
        stats.pop()


def label(ns: Namespace):
    return "full" if ns else "empty"  # DET002: conditional expression


def make_engine():
    return Engine()
