"""DET002 negatives: explicit None tests and non-sized fallbacks."""

from typing import Optional

from repro.sim.engine import Engine


def build_system(engine=None):
    if engine is None:
        engine = make_engine()  # explicit absence test
    return engine


def merge(entry=None):
    entry = entry if entry is not None else []  # explicit, not 'or'
    return entry


def run(engine: Optional[Engine]):
    if engine is None:
        return
    engine.run()


def size(engine: Engine):
    if len(engine):  # explicit emptiness test on a sized type
        return len(engine)
    return 0


def advertised(extra=None):
    return extra or ()  # immutable empty tuple: content-equivalent


def pick(flag, scale=None):
    # 'or' on a non-sized config object is not flagged
    return scale or default_scale()


def default_scale():
    return object()


def make_engine():
    return Engine()
