"""Unit tests for the analysis helpers."""

import pytest

from repro.analysis.levels import current_replicas_per_level, replicas_per_level
from repro.analysis.series import (
    drop_fraction_series,
    load_series,
    minute_buckets,
    rate_series,
    replica_fraction_series,
)
from repro.analysis.summary import compare_drop_fractions, run_summary
from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.workload.arrivals import WorkloadDriver
from repro.workload.streams import unif_stream


@pytest.fixture(scope="module")
def ran_system():
    ns = balanced_tree(levels=7)
    cfg = SystemConfig.replicated(n_servers=8, seed=6, digest_probe_limit=1)
    system = build_system(ns, cfg)
    driver = WorkloadDriver(system, unif_stream(rate=400.0, duration=8.0,
                                                seed=6))
    driver.start()
    system.run_until(10.0)
    return system


class TestRateSeries:
    def test_injected_series_sums_to_counter(self, ran_system):
        s = rate_series(ran_system, "injected")
        assert sum(s) == ran_system.stats.n_injected

    def test_completions_series(self, ran_system):
        s = rate_series(ran_system, "completions")
        assert sum(s) == ran_system.stats.n_completed

    def test_unknown_series_raises(self, ran_system):
        with pytest.raises(KeyError):
            rate_series(ran_system, "nope")

    def test_drop_fraction_normalised(self, ran_system):
        s = drop_fraction_series(ran_system, rate=400.0)
        assert all(0.0 <= v <= 1.0 for v in s)

    def test_replica_fraction_requires_positive_rate(self, ran_system):
        with pytest.raises(ValueError):
            replica_fraction_series(ran_system, rate=0.0)


class TestMinuteBuckets:
    def test_aggregation(self):
        per_sec = [1.0] * 120
        assert minute_buckets(per_sec) == [60.0, 60.0]

    def test_ragged_tail(self):
        assert minute_buckets([1.0] * 70) == [60.0, 10.0]

    def test_custom_bucket(self):
        assert minute_buckets([1.0] * 10, seconds_per_bucket=5) == [5.0, 5.0]

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            minute_buckets([1.0], seconds_per_bucket=0)


class TestLoadSeries:
    def test_mean_below_max(self, ran_system):
        mean, mx = load_series(ran_system)
        for m, M in zip(mean, mx):
            assert m <= M + 1e-12


class TestLevels:
    def test_length_matches_depth(self, ran_system):
        per = replicas_per_level(ran_system)
        assert len(per) == ran_system.ns.max_depth + 1

    def test_total_matches_counter(self, ran_system):
        per = replicas_per_level(ran_system, average=False)
        assert sum(per) == ran_system.stats.n_replicas_created

    def test_current_at_most_created(self, ran_system):
        created = replicas_per_level(ran_system, average=False)
        live = current_replicas_per_level(ran_system, average=False)
        for c, l in zip(created, live):
            assert l <= c + 1e-12


class TestSummary:
    def test_run_summary_keys(self, ran_system):
        s = run_summary(ran_system)
        for key in (
            "drop_fraction", "mean_latency", "mean_hops", "stale_hop_rate",
            "control_to_query_ratio", "replicas_live", "utilization_mean",
        ):
            assert key in s

    def test_compare_drop_fractions_shape(self):
        table = compare_drop_fractions(
            {"B": {"unif": {"drop_fraction": 0.5}},
             "BCR": {"unif": {"drop_fraction": 0.1}}}
        )
        assert table == {"B": {"unif": 0.5}, "BCR": {"unif": 0.1}}


class TestSummaryPercentiles:
    def test_percentiles_present_and_ordered(self, ran_system):
        from repro.analysis.summary import run_summary

        s = run_summary(ran_system)
        assert 0.0 <= s["latency_p50"] <= s["latency_p95"]
        assert s["latency_p50"] >= 0.0
