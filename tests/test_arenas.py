"""Shared-memory namespace arenas (export_arenas / ArenaHandle.attach).

The attach path must rebuild a namespace that answers every read query
identically to the exporting one, with zero-copy read-only views into
one shared block -- this is what lets shard workers stop paying a
per-process copy of the tree.
"""

import pickle
import random

import pytest

from repro.namespace.generators import balanced_tree, random_tree
from repro.namespace.graph import GraphNamespace, mesh_of_trees
from repro.namespace.tree import (
    ArenaHandle,
    AttachedArenas,
    SharedArenas,
    export_arenas,
)


def assert_equivalent(ns, got, samples=64, seed=3):
    assert len(got) == len(ns)
    assert got.n_leaves == ns.n_leaves
    assert got.max_depth == ns.max_depth
    assert list(got.parent) == list(ns.parent)
    assert list(got.depth) == list(ns.depth)
    rng = random.Random(seed)
    nodes = [rng.randrange(len(ns)) for _ in range(samples)]
    for v in nodes:
        assert tuple(got.children[v]) == tuple(ns.children[v])
        assert tuple(got.anc[v]) == tuple(ns.anc[v])
        assert got.label_of(v) == ns.label_of(v)
        assert got.name_of(v) == ns.name_of(v)
        assert got.neighbors(v) == ns.neighbors(v)
    for a, b in zip(nodes[::2], nodes[1::2]):
        assert got.distance(a, b) == ns.distance(a, b)
    for d in (0, 1, ns.max_depth):
        assert got.nodes_at_depth(d) == ns.nodes_at_depth(d)


class TestTreeRoundTrip:
    def test_balanced_tree_attach_is_equivalent(self):
        ns = balanced_tree(levels=7)
        shared = export_arenas(ns)
        attached = shared.handle.attach()
        try:
            assert_equivalent(ns, attached.ns)
            assert attached.owner is None
        finally:
            attached.close()
            shared.close()

    def test_random_tree_attach_is_equivalent(self):
        ns = random_tree(500, seed=41)
        shared = export_arenas(ns)
        attached = shared.handle.attach()
        try:
            assert_equivalent(ns, attached.ns)
        finally:
            attached.close()
            shared.close()

    def test_graph_namespace_keeps_cross_links(self):
        ns = mesh_of_trees(levels=6)
        shared = export_arenas(ns)
        attached = shared.handle.attach()
        try:
            got = attached.ns
            assert isinstance(got, GraphNamespace)
            assert got.cross == ns.cross
            assert got.n_cross_links == ns.n_cross_links
            assert_equivalent(ns, got)
            # a cross-linked node's routing context includes the link
            v = next(iter(ns.cross))
            assert got.neighbors(v) == ns.neighbors(v)
            assert got.neighbors_tree(v) == ns.neighbors_tree(v)
        finally:
            attached.close()
            shared.close()

    def test_owner_rides_in_the_block(self):
        ns = balanced_tree(levels=6)
        owner = [v % 16 for v in range(len(ns))]
        shared = export_arenas(ns, owner=owner)
        attached = shared.handle.attach()
        try:
            assert list(attached.owner) == owner
            assert len(attached.owner) == len(ns)
        finally:
            attached.close()
            shared.close()


class TestArenaSafety:
    def test_attached_views_are_read_only(self):
        ns = balanced_tree(levels=5)
        shared = export_arenas(ns, owner=[0] * len(ns))
        attached = shared.handle.attach()
        try:
            with pytest.raises(TypeError):
                attached.ns.parent[1] = 0
            with pytest.raises(TypeError):
                attached.owner[1] = 5
        finally:
            attached.close()
            shared.close()

    def test_handle_pickles(self):
        ns = balanced_tree(levels=5)
        shared = export_arenas(ns)
        try:
            handle = pickle.loads(pickle.dumps(shared.handle))
            assert isinstance(handle, ArenaHandle)
            attached = handle.attach()
            try:
                assert_equivalent(ns, attached.ns, samples=16)
            finally:
                attached.close()
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        ns = balanced_tree(levels=4)
        shared = export_arenas(ns)
        attached = shared.handle.attach()
        assert isinstance(attached, AttachedArenas)
        attached.close()
        attached.close()  # second close is a no-op
        shared.close()
        shared.close()  # unlink already done; swallowed

    def test_unlink_frees_the_name(self):
        ns = balanced_tree(levels=4)
        shared = export_arenas(ns)
        assert isinstance(shared, SharedArenas)
        handle = shared.handle
        shared.close()
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_block_size_tracks_arenas_not_python_objects(self):
        ns = balanced_tree(levels=7)
        shared = export_arenas(ns)
        try:
            n = len(ns)
            # q-offsets + 4 int arrays of n plus the two flat arenas:
            # the block is linear in the arena payload, with no
            # per-node Python object overhead
            floor = 2 * 8 * (n + 1) + 3 * 4 * n
            assert shared.nbytes >= floor
            assert shared.nbytes < 64 * n + 4096
        finally:
            shared.close()
