"""Unit tests for the Bloom filter."""

import pytest

from repro.filters.bloom import (
    BloomFilter,
    optimal_bits,
    optimal_hashes,
)


class TestSizing:
    def test_optimal_bits_monotone_in_capacity(self):
        assert optimal_bits(1000, 0.01) > optimal_bits(100, 0.01)

    def test_optimal_bits_monotone_in_fp(self):
        assert optimal_bits(100, 0.001) > optimal_bits(100, 0.1)

    def test_optimal_bits_word_aligned(self):
        assert optimal_bits(100, 0.01) % 64 == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            optimal_bits(0, 0.01)
        with pytest.raises(ValueError):
            optimal_bits(10, 0.0)
        with pytest.raises(ValueError):
            optimal_bits(10, 1.0)
        with pytest.raises(ValueError):
            optimal_hashes(100, 0)


class TestMembership:
    def test_no_false_negatives(self):
        bf = BloomFilter.with_capacity(200, fp_rate=0.01)
        keys = list(range(0, 2000, 10))
        bf.update(keys)
        for k in keys:
            assert k in bf

    def test_empty_contains_nothing(self):
        bf = BloomFilter.with_capacity(100)
        assert all(k not in bf for k in range(100))

    def test_fp_rate_reasonable(self):
        bf = BloomFilter.with_capacity(500, fp_rate=0.01)
        bf.update(range(500))
        fps = sum(1 for k in range(10_000, 30_000) if k in bf)
        assert fps / 20_000 < 0.05  # generous bound on the 1% design point

    def test_clear(self):
        bf = BloomFilter.with_capacity(100)
        bf.add(7)
        bf.clear()
        assert 7 not in bf
        assert bf.n_items == 0


class TestSnapshot:
    def test_snapshot_immutable_under_later_adds(self):
        bf = BloomFilter.with_capacity(100)
        bf.add(1)
        snap = bf.snapshot()
        bf.add(2)
        assert bf.test_snapshot(snap, 1)
        assert not bf.test_snapshot(snap, 2)
        assert 2 in bf

    def test_cross_filter_snapshot_evaluation(self):
        """Same-geometry filters can evaluate each other's snapshots."""
        a = BloomFilter(512, 5, salt=9)
        b = BloomFilter(512, 5, salt=9)
        b.add(42)
        assert a.test_snapshot(b.snapshot(), 42)
        assert not a.test_snapshot(b.snapshot(), 43)


class TestPositionCache:
    def test_shared_cache(self):
        a = BloomFilter(512, 5, salt=9)
        b = BloomFilter(512, 5, salt=9)
        b.share_cache_with(a)
        a.add(10)
        b.add(11)
        assert 10 in a and 11 in b
        assert a.pos_cache is b.pos_cache
        assert 10 in a.pos_cache and 11 in a.pos_cache

    def test_share_rejects_geometry_mismatch(self):
        a = BloomFilter(512, 5)
        b = BloomFilter(512, 4)
        with pytest.raises(ValueError):
            b.share_cache_with(a)


class TestUnion:
    def test_union_contains_both(self):
        a = BloomFilter(512, 5, salt=1)
        b = BloomFilter(512, 5, salt=1)
        a.add(1)
        b.add(2)
        u = a | b
        assert 1 in u and 2 in u

    def test_union_rejects_mismatch(self):
        a = BloomFilter(512, 5, salt=1)
        b = BloomFilter(512, 5, salt=2)
        with pytest.raises(ValueError):
            a | b


class TestDiagnostics:
    def test_fill_ratio_grows(self):
        bf = BloomFilter.with_capacity(100)
        assert bf.fill_ratio == 0.0
        bf.update(range(50))
        assert 0.0 < bf.fill_ratio < 1.0

    def test_expected_fp_rate_bounds(self):
        bf = BloomFilter.with_capacity(100, fp_rate=0.01)
        bf.update(range(100))
        assert 0.0 < bf.expected_fp_rate() < 0.1

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)


class TestBitCounts:
    def test_set_bits_counts_ones(self):
        bf = BloomFilter(128, 3, salt=1)
        assert bf.set_bits == 0
        bf.add(42)
        assert 0 < bf.set_bits <= 3
        assert bf.fill_ratio == bf.set_bits / bf.n_bits

    def test_fill_ratio_from_words_not_items(self):
        """fill_ratio reflects distinct set bits, so re-adding the same
        key (which double-counts n_items) cannot inflate it."""
        bf = BloomFilter(128, 3, salt=1)
        bf.add(7)
        ratio = bf.fill_ratio
        bf.add(7)
        assert bf.n_items == 2  # insertion count, not distinct keys
        assert bf.fill_ratio == ratio

    def test_union_n_items_is_upper_bound(self):
        a = BloomFilter(128, 3, salt=1)
        b = BloomFilter(128, 3, salt=1)
        a.add(5)
        b.add(5)  # same key on both sides
        u = a | b
        assert u.n_items == 2  # documented upper bound on distinct keys
        assert u.set_bits == a.set_bits  # identical bit pattern
