"""Unit tests for system assembly."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree


class TestBuild:
    def test_every_node_owned_exactly_once(self):
        ns = balanced_tree(levels=5)
        system = build_system(ns, SystemConfig(n_servers=8, seed=1))
        seen = {}
        for p in system.peers:
            for v in p.owned:
                assert v not in seen
                seen[v] = p.sid
        assert len(seen) == len(ns)

    def test_every_server_owns_at_least_one(self):
        ns = balanced_tree(levels=5)
        system = build_system(ns, SystemConfig(n_servers=8, seed=1))
        assert all(len(p.owned) >= 1 for p in system.peers)

    def test_owner_array_matches_peers(self):
        ns = balanced_tree(levels=5)
        system = build_system(ns, SystemConfig(n_servers=8, seed=1))
        for v in range(len(ns)):
            assert v in system.peers[system.owner[v]].owned

    def test_neighbor_contexts_wired(self):
        """Every owned node's neighbors have pinned maps pointing at
        the true owner (routing with incremental progress from t=0)."""
        ns = balanced_tree(levels=5)
        system = build_system(ns, SystemConfig(n_servers=8, seed=1))
        for p in system.peers:
            for v in p.owned:
                for nbr in ns.neighbors(v):
                    assert nbr in p.maps
                    assert system.owner[nbr] in p.maps[nbr]

    def test_digest_seeded_with_owned(self):
        ns = balanced_tree(levels=5)
        system = build_system(ns, SystemConfig(n_servers=8, seed=1))
        for p in system.peers:
            for v in p.owned:
                assert v in p.digest

    def test_digests_share_position_cache(self):
        ns = balanced_tree(levels=4)
        system = build_system(ns, SystemConfig(n_servers=4, seed=1))
        caches = {id(p.digest.bloom.pos_cache) for p in system.peers}
        assert len(caches) == 1

    def test_bootstrap_known_loads(self):
        ns = balanced_tree(levels=5)
        cfg = SystemConfig(n_servers=8, seed=1, bootstrap_known_peers=3)
        system = build_system(ns, cfg)
        for p in system.peers:
            assert len(p.known_loads) == 3
            assert p.sid not in p.known_loads

    def test_explicit_owner_assignment(self):
        ns = balanced_tree(levels=3)  # 15 nodes
        owner = [v % 3 for v in range(len(ns))]
        system = build_system(ns, SystemConfig(n_servers=3, seed=1), owner=owner)
        assert sorted(system.peers[0].owned) == [v for v in range(15) if v % 3 == 0]

    def test_rejects_more_servers_than_nodes(self):
        ns = balanced_tree(levels=2)  # 7 nodes
        with pytest.raises(ValueError):
            build_system(ns, SystemConfig(n_servers=8))

    def test_rejects_bad_owner_length(self):
        ns = balanced_tree(levels=2)
        with pytest.raises(ValueError):
            build_system(ns, SystemConfig(n_servers=2), owner=[0, 1])

    def test_rejects_out_of_range_owner(self):
        ns = balanced_tree(levels=2)
        with pytest.raises(ValueError):
            build_system(ns, SystemConfig(n_servers=2), owner=[5] * len(ns))

    def test_deterministic_given_seed(self):
        ns = balanced_tree(levels=4)
        a = build_system(ns, SystemConfig(n_servers=4, seed=9))
        b = build_system(ns, SystemConfig(n_servers=4, seed=9))
        assert [sorted(p.owned) for p in a.peers] == [
            sorted(p.owned) for p in b.peers
        ]


class TestConfigPresets:
    def test_base_disables_everything(self):
        cfg = SystemConfig.base()
        assert not cfg.caching_enabled
        assert not cfg.replication_enabled
        assert not cfg.digests_enabled

    def test_caching_preset(self):
        cfg = SystemConfig.caching()
        assert cfg.caching_enabled and not cfg.replication_enabled

    def test_replicated_preset(self):
        cfg = SystemConfig.replicated()
        assert cfg.caching_enabled and cfg.replication_enabled
        assert cfg.digests_enabled

    def test_replace(self):
        cfg = SystemConfig().replace(n_servers=42)
        assert cfg.n_servers == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(n_servers=0)
        with pytest.raises(ValueError):
            SystemConfig(l_high=0.0)
        with pytest.raises(ValueError):
            SystemConfig(service_mean=-1.0)
        with pytest.raises(ValueError):
            SystemConfig(rmap=0)
