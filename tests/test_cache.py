"""Unit tests for the LRU node-map cache (paper section 2.4)."""

import pytest

from repro.server.cache import LRUCache


class TestBasics:
    def test_put_get(self):
        c = LRUCache(capacity=4)
        c.put(1, [10, 11])
        assert list(c.get(1)) == [10, 11]

    def test_miss(self):
        c = LRUCache(capacity=4)
        assert c.get(1) is None
        assert c.misses == 1

    def test_contains(self):
        c = LRUCache(capacity=4)
        c.put(1, [10])
        assert 1 in c and 2 not in c

    def test_zero_capacity_noop(self):
        c = LRUCache(capacity=0)
        c.put(1, [10])
        assert len(c) == 0

    def test_empty_servers_not_inserted(self):
        c = LRUCache(capacity=4)
        c.put(1, [])
        assert 1 not in c


class TestLRU:
    def test_eviction_order(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.put(2, [20])
        c.put(3, [30])
        assert 1 not in c
        assert c.evictions == 1

    def test_get_touches(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.put(2, [20])
        c.get(1)
        c.put(3, [30])
        assert 1 in c and 2 not in c

    def test_touch_without_get(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.put(2, [20])
        c.touch(1)
        c.put(3, [30])
        assert 1 in c

    def test_peek_does_not_touch(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.put(2, [20])
        c.peek(1)
        c.put(3, [30])
        assert 1 not in c

    def test_put_touches_existing(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.put(2, [20])
        c.put(1, [12])
        c.put(3, [30])
        assert 1 in c and 2 not in c


class TestEntryMerging:
    def test_put_merges_up_to_rmap(self):
        c = LRUCache(capacity=2, rmap=3)
        c.put(1, [10])
        c.put(1, [11, 12, 13])
        assert list(c.peek(1)) == [10, 11, 12]

    def test_put_dedupes(self):
        c = LRUCache(capacity=2, rmap=4)
        c.put(1, [10, 10, 11])
        assert list(c.peek(1)) == [10, 11]

    def test_replace(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.replace(1, [20, 21])
        assert list(c.peek(1)) == [20, 21]

    def test_replace_empty_removes(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        c.replace(1, [])
        assert 1 not in c

    def test_remove_server(self):
        c = LRUCache(capacity=2)
        c.put(1, [10, 11])
        c.remove_server(1, 10)
        assert list(c.peek(1)) == [11]
        c.remove_server(1, 11)
        assert 1 not in c

    def test_remove(self):
        c = LRUCache(capacity=2)
        c.put(1, [10])
        assert c.remove(1)
        assert not c.remove(1)


class TestStats:
    def test_hit_rate(self):
        c = LRUCache(capacity=4)
        c.put(1, [10])
        c.get(1)
        c.get(2)
        assert c.hit_rate == pytest.approx(0.5)

    def test_clear(self):
        c = LRUCache(capacity=4)
        c.put(1, [10])
        c.clear()
        assert len(c) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)
        with pytest.raises(ValueError):
            LRUCache(capacity=1, rmap=0)
