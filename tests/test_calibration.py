"""Tests for utilisation calibration."""

import pytest

from repro.experiments.calibration import calibrate_rate, measure_utilization
from repro.experiments.common import Scale

MICRO = Scale(
    name="tiny", ns_levels=7, nc_nodes=500, n_servers=8,
    warmup=2.0, phase=2.0, n_phases=1, drain=2.0, cache_slots=8,
    digest_probe_limit=1,
)


class TestMeasure:
    def test_probe_returns_metrics(self):
        r = measure_utilization(MICRO, rate=150.0, probe_duration=5.0, seed=1)
        assert 0.0 <= r["utilization"] <= 1.0
        assert r["mean_hops"] > 0
        assert 0.0 <= r["drop_fraction"] <= 1.0

    def test_utilization_monotone_in_rate(self):
        lo = measure_utilization(MICRO, rate=80.0, probe_duration=6.0, seed=1)
        hi = measure_utilization(MICRO, rate=320.0, probe_duration=6.0, seed=1)
        assert hi["utilization"] > lo["utilization"]


class TestCalibrate:
    def test_converges_to_target(self):
        r = calibrate_rate(0.3, scale=MICRO, tolerance=0.15,
                           probe_duration=6.0, seed=2)
        assert r["converged"] == 1.0
        assert r["utilization"] == pytest.approx(0.3, rel=0.15)
        assert r["rate"] > 0

    def test_bad_estimate_corrected(self):
        """Even a wildly wrong hops estimate calibrates out."""
        bad = Scale(
            name="tiny", ns_levels=7, nc_nodes=500, n_servers=8,
            warmup=2.0, phase=2.0, n_phases=1, drain=2.0, cache_slots=8,
            digest_probe_limit=1, hops_estimate=30.0,  # ~10x too high
        )
        r = calibrate_rate(0.25, scale=bad, tolerance=0.2,
                           probe_duration=6.0, seed=3)
        assert r["converged"] == 1.0
        assert r["iterations"] >= 2  # the first probe must have missed

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_rate(0.0, scale=MICRO)
        with pytest.raises(ValueError):
            calibrate_rate(0.95, scale=MICRO)
        with pytest.raises(ValueError):
            calibrate_rate(0.3, scale=MICRO, tolerance=0.0)
