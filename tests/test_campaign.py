"""The campaign layer: fingerprints, the artifact store, resumable
fan-out, and cold-vs-cached assembly equality."""

import dataclasses
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.experiments import campaign
from repro.experiments.campaign import (
    Campaign,
    ResultStore,
    RunSpec,
    canonical,
    get_experiment,
    run_experiment,
    run_spec,
)
from repro.experiments.common import Scale

MICRO = Scale(
    name="tiny", ns_levels=6, nc_nodes=300, n_servers=8,
    warmup=1.5, phase=1.5, n_phases=1, drain=1.5, cache_slots=6,
    digest_probe_limit=1, long_run=12.0, long_bucket=3,
)

QUIET = dict(echo=lambda s: None)


def toy_task(tag, value, marker_dir):
    """Record one execution, then return a derived payload."""
    marker = pathlib.Path(marker_dir) / f"{tag}.runs"
    with open(marker, "a") as fh:
        fh.write("x\n")
    return {"tag": tag, "value": value * 2}


def flaky_task(tag, marker_dir):
    """Fail on the first execution only (a transient error)."""
    marker = pathlib.Path(marker_dir) / f"{tag}.runs"
    runs = marker.read_text().count("x") if marker.exists() else 0
    with open(marker, "a") as fh:
        fh.write("x\n")
    if runs == 0:
        raise ValueError(f"transient failure in {tag}")
    return {"tag": tag, "recovered": True}


def run_count(marker_dir, tag):
    """How many times the task labelled ``tag`` actually executed."""
    marker = pathlib.Path(marker_dir) / f"{tag}.runs"
    return marker.read_text().count("x") if marker.exists() else 0


def toy_specs(marker_dir, tags=("a", "b", "c"), fn="toy_task"):
    return [
        RunSpec(
            experiment="toy", task=tag, fn=f"tests.test_campaign:{fn}",
            params=dict(tag=tag, value=i, marker_dir=str(marker_dir)),
        )
        for i, tag in enumerate(tags)
    ]


class TestGetSeed:
    def test_default_zero(self, monkeypatch):
        from repro.experiments.common import get_seed

        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert get_seed() == 0

    def test_env_override(self, monkeypatch):
        from repro.experiments.common import get_seed

        monkeypatch.setenv("REPRO_SEED", "42")
        assert get_seed() == 42

    def test_explicit_argument_wins(self, monkeypatch):
        from repro.experiments.common import get_seed

        monkeypatch.setenv("REPRO_SEED", "42")
        assert get_seed(7) == 7

    def test_bad_env_rejected(self, monkeypatch):
        from repro.experiments.common import get_seed

        monkeypatch.setenv("REPRO_SEED", "lots")
        with pytest.raises(ValueError):
            get_seed()


class TestFingerprint:
    def spec(self, **over):
        params = dict(scale=MICRO, seed=3, utilization=0.4)
        params.update(over.pop("params", {}))
        kw = dict(experiment="fig3", task="BCR",
                  fn="repro.experiments.fig3_drops:fig3_stream",
                  params=params)
        kw.update(over)
        return RunSpec(**kw)

    def test_stable_within_process(self):
        assert self.spec().fingerprint == self.spec().fingerprint

    def test_deterministic_across_processes(self):
        """Same spec, different interpreter (and hash seed), same hash."""
        code = (
            "from tests.test_campaign import TestFingerprint;"
            "print(TestFingerprint().spec().fingerprint)"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert out == self.spec().fingerprint

    def test_param_change_invalidates(self):
        assert self.spec().fingerprint != \
            self.spec(params=dict(seed=4)).fingerprint

    def test_nested_dataclass_change_invalidates(self):
        bigger = dataclasses.replace(MICRO, n_servers=16)
        assert self.spec().fingerprint != \
            self.spec(params=dict(scale=bigger)).fingerprint

    def test_fn_change_invalidates(self):
        other = self.spec(fn="repro.experiments.fig3_drops:other")
        assert self.spec().fingerprint != other.fingerprint

    def test_duplicate_specs_share_fingerprint(self):
        assert self.spec().fingerprint == self.spec(
            params=dict(utilization=0.4)
        ).fingerprint

    def test_uncanonicalisable_params_rejected(self):
        with pytest.raises(TypeError):
            self.spec(params=dict(bad=object())).fingerprint

    def test_canonical_sorts_mappings(self):
        assert canonical({"b": 1, "a": (2, 3)}) == {"a": [2, 3], "b": 1}


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"fingerprint": "f" * 32, "status": "ok", "result": [1, 2]}
        store.put(record)
        assert store.fetch("f" * 32)["result"] == [1, 2]
        assert store.fingerprints() == ["f" * 32]
        assert len(store) == 1

    def test_missing_and_corrupt_are_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.fetch("0" * 32) is None
        store.path("1" * 32).write_text("{not json")
        assert store.fetch("1" * 32) is None

    def test_failure_records_are_not_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_failure({"fingerprint": "a" * 32, "status": "failed"})
        assert store.fetch("a" * 32) is None
        assert store.fingerprints() == []

    def test_success_clears_failure_marker(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_failure({"fingerprint": "a" * 32, "status": "failed"})
        store.put({"fingerprint": "a" * 32, "status": "ok", "result": 1})
        assert not store.failed_path("a" * 32).exists()
        assert store.fetch("a" * 32)["result"] == 1


class TestRunSpecExecution:
    def test_run_spec_captures_failure(self, tmp_path):
        spec = toy_specs(tmp_path, tags=("x",), fn="flaky_task")[0]
        spec = dataclasses.replace(
            spec, params=dict(tag="x", marker_dir=str(tmp_path))
        )
        record = run_spec(spec, store_dir=str(tmp_path / "store"))
        assert record["status"] == "failed"
        assert record["error"]["type"] == "ValueError"
        assert "transient" in record["error"]["message"]
        store = ResultStore(tmp_path / "store")
        assert store.failed_path(spec.fingerprint).exists()

    def test_record_metadata(self, tmp_path):
        spec = RunSpec(
            experiment="toy", task="m", fn="tests.test_campaign:toy_task",
            params=dict(tag="m", value=1, marker_dir=str(tmp_path),
                        scale=MICRO, seed=7),
        )
        record = run_spec(spec)
        meta = record["meta"]
        assert meta["scale"] == "tiny"
        assert meta["seed"] == 7
        assert meta["worker"] == f"pid-{os.getpid()}"
        assert meta["wall_time_s"] >= 0.0
        assert meta["code_version"]


class TestCampaign:
    def test_cold_run_executes_and_stores(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = toy_specs(tmp_path)
        result = Campaign(store=store, **QUIET).run(specs)
        assert result.stats.executed == 3
        assert result.stats.cached == 0
        assert not result.failures
        assert result.payloads == [
            {"tag": t, "value": 2 * i} for i, t in enumerate("abc")
        ]
        assert len(store) == 3

    def test_rerun_is_fully_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = toy_specs(tmp_path)
        first = Campaign(store=store, **QUIET).run(specs)
        again = Campaign(store=store, **QUIET).run(specs)
        assert again.stats.cached == 3 and again.stats.executed == 0
        assert again.payloads == first.payloads
        assert all(run_count(tmp_path, t) == 1 for t in "abc")

    def test_resume_after_partial_failure(self, tmp_path):
        """Only specs without artifacts (the failed one) re-execute."""
        store = ResultStore(tmp_path / "store")
        specs = toy_specs(tmp_path) + toy_specs(
            tmp_path, tags=("flaky",), fn="flaky_task"
        )
        specs[-1] = dataclasses.replace(
            specs[-1], params=dict(tag="flaky", marker_dir=str(tmp_path))
        )
        first = Campaign(store=store, max_retries=0, **QUIET).run(specs)
        assert first.stats.failed == 1 and first.stats.executed == 3
        assert [s.task for s, _ in first.failures] == ["flaky"]
        assert first.payloads[-1] is None

        resumed = Campaign(store=store, max_retries=0, **QUIET).run(specs)
        assert resumed.stats.cached == 3
        assert resumed.stats.executed == 1
        assert not resumed.failures
        assert resumed.payloads[-1] == {"tag": "flaky", "recovered": True}
        # the healthy specs never re-ran; the flaky one ran exactly twice
        assert all(run_count(tmp_path, t) == 1 for t in "abc")
        assert run_count(tmp_path, "flaky") == 2

    def test_retry_recovers_transient_failure(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = toy_specs(tmp_path, tags=("flaky",), fn="flaky_task")
        specs[0] = dataclasses.replace(
            specs[0], params=dict(tag="flaky", marker_dir=str(tmp_path))
        )
        result = Campaign(store=store, max_retries=1, **QUIET).run(specs)
        assert not result.failures
        assert result.stats.retried == 1
        assert run_count(tmp_path, "flaky") == 2

    def test_no_cache_reexecutes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = toy_specs(tmp_path)
        Campaign(store=store, **QUIET).run(specs)
        redo = Campaign(store=store, use_cache=False, **QUIET).run(specs)
        assert redo.stats.executed == 3 and redo.stats.cached == 0
        assert all(run_count(tmp_path, t) == 2 for t in "abc")

    def test_duplicate_specs_execute_once(self, tmp_path):
        specs = toy_specs(tmp_path, tags=("a",)) * 3
        result = Campaign(**QUIET).run(specs)
        assert result.stats.total == 3
        assert run_count(tmp_path, "a") == 1
        assert result.payloads[0] == result.payloads[2]

    def test_failure_isolation_and_raise(self, tmp_path):
        specs = toy_specs(tmp_path, tags=("ok",)) + toy_specs(
            tmp_path, tags=("bad",), fn="flaky_task"
        )
        specs[-1] = dataclasses.replace(
            specs[-1], params=dict(tag="bad", marker_dir=str(tmp_path))
        )
        result = Campaign(max_retries=0, **QUIET).run(specs)
        assert result.payloads[0] == {"tag": "ok", "value": 0}
        with pytest.raises(RuntimeError, match="1 of 2 runs failed"):
            result.raise_on_failure()

    def test_summary_format(self, tmp_path):
        result = Campaign(**QUIET).run(toy_specs(tmp_path))
        line = result.stats.summary()
        assert "done=3/3" in line and "cached=0" in line
        assert "executed=3" in line and "failed=0" in line


class TestColdVsCached:
    def test_fig3_cold_resumed_and_cached_agree(self, tmp_path):
        """The acceptance bar: one figure, fixed seed, three paths."""
        store = ResultStore(tmp_path / "results")
        direct = run_experiment("fig3", scale=MICRO, seed=3)
        cold = run_experiment("fig3", scale=MICRO, seed=3, store=store)
        assert len(store) == len(
            get_experiment("fig3").specs(MICRO, seed=3)
        )
        cached = run_experiment("fig3", scale=MICRO, seed=3, store=store)
        assert direct == cold == cached
        # stored payloads really are the source: corrupt one and the
        # cache rejects it instead of assembling garbage
        fp = store.fingerprints()[0]
        store.path(fp).write_text("{}")
        healed = run_experiment("fig3", scale=MICRO, seed=3, store=store)
        assert healed == direct

    def test_artifact_payloads_json_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_experiment("table1", scale=MICRO, seed=3, store=store)
        (record_path,) = [
            store.path(fp) for fp in store.fingerprints()
        ]
        record = json.loads(record_path.read_text())
        assert record["status"] == "ok"
        assert record["experiment"] == "table1"
        assert record["meta"]["scale"] == "tiny"


class TestCli:
    def test_run_twice_second_pass_fully_cached(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments import common

        monkeypatch.setattr(common, "get_scale", lambda name=None: MICRO)
        out_dir = str(tmp_path / "results")
        assert campaign.main(["table1", "--out", out_dir]) == 0
        first = capsys.readouterr().out
        assert "=== table1 ===" in first and "owned" in first
        assert "cached=0" in first

        assert campaign.main(["table1", "--out", out_dir]) == 0
        second = capsys.readouterr().out
        assert "cached=1" in second and "executed=0" in second
        # identical rendered block either way
        def block(s):
            return s[s.index("=== table1 ==="):s.index("\ncampaign:")]

        assert block(first) == block(second)

    def test_cli_flag_validation(self, capsys):
        with pytest.raises(SystemExit):
            campaign.main(["--resume", "--no-cache"])
        with pytest.raises(SystemExit):
            campaign.main(["bogus"])
