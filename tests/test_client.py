"""Tests for the application-facing TerraDir client."""

import pytest

from repro.client import TerraDirClient
from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import university_tree


@pytest.fixture
def system():
    ns = university_tree()
    cfg = SystemConfig.replicated(n_servers=len(ns), seed=2,
                                  bootstrap_known_peers=0)
    return ns, build_system(ns, cfg, owner=list(range(len(ns))))


class TestLookup:
    def test_remote_lookup(self, system):
        ns, sys_ = system
        client = TerraDirClient(sys_, home_server=ns.id_of("/university/public"))
        fut = client.lookup("/university/private/people/staff/Ann")
        result = client.wait(fut)
        assert result.name == "/university/private/people/staff/Ann"
        assert ns.id_of("/university/private/people/staff/Ann") == result.node
        assert result.servers  # some host resolved
        assert result.hops >= 1
        assert result.latency > 0

    def test_local_lookup(self, system):
        ns, sys_ = system
        home = ns.id_of("/university")
        client = TerraDirClient(sys_, home_server=home)
        result = client.wait(client.lookup("/university"))
        assert result.hops == 0

    def test_unknown_name_raises(self, system):
        ns, sys_ = system
        client = TerraDirClient(sys_, home_server=0)
        with pytest.raises(KeyError):
            client.lookup("/nope")

    def test_meta_version_in_result(self, system):
        ns, sys_ = system
        target = "/university/private"
        node = ns.id_of(target)
        owner = sys_.peers[sys_.owner[node]]
        owner.bump_meta(node)
        owner.bump_meta(node)
        client = TerraDirClient(sys_, home_server=0)
        result = client.wait(client.lookup(target))
        assert result.meta_version == 2

    def test_bad_home_server(self, system):
        ns, sys_ = system
        with pytest.raises(ValueError):
            TerraDirClient(sys_, home_server=999)

    def test_counters(self, system):
        ns, sys_ = system
        client = TerraDirClient(sys_, home_server=0)
        client.wait(client.lookup("/university"))
        assert client.n_lookups == 1


class TestRetrieve:
    def test_two_step_retrieval(self, system):
        ns, sys_ = system
        target = "/university/private/people/faculty/Lisa"
        node = ns.id_of(target)
        owner = sys_.peers[sys_.owner[node]]
        owner.metadata.set_data(node, b"lisa's homepage")
        owner.metadata.meta(node).set_attribute("role", "faculty")

        client = TerraDirClient(sys_, home_server=0)
        result = client.wait(client.retrieve(target))
        assert result.data == b"lisa's homepage"
        assert result.meta.attributes["role"] == "faculty"
        assert result.served_by == owner.sid
        assert result.attempts >= 1

    def test_meta_only_retrieval(self, system):
        ns, sys_ = system
        target = "/university/public/people"
        node = ns.id_of(target)
        sys_.peers[sys_.owner[node]].metadata.meta(node).add_keywords(
            ["directory"]
        )
        client = TerraDirClient(sys_, home_server=1)
        result = client.wait(client.retrieve(target, want_meta=True))
        assert "directory" in result.meta.keywords
        assert result.data is None

    def test_redirect_from_routing_replica(self, system):
        """A lookup may resolve at a routing replica; the data request
        is redirected to the owner (replicas export no data)."""
        ns, sys_ = system
        target = "/university/private/people"
        node = ns.id_of(target)
        owner = sys_.peers[sys_.owner[node]]
        owner.metadata.set_data(node, "the-data")
        # install a replica on another server and poison the client's
        # first retrieval target to be that replica
        other = sys_.peers[ns.id_of("/university/public/people")]
        other.install_replica(owner.build_replica_payload(node), 0.0)

        client = TerraDirClient(sys_, home_server=0)
        lookup = client.wait(client.lookup(target))
        fut = client.retrieve(target)
        result = client.wait(fut)
        assert result.data == "the-data"
        assert result.served_by == owner.sid


class TestSearch:
    def test_search_whole_subtree(self, system):
        ns, sys_ = system
        client = TerraDirClient(sys_, home_server=0)
        result = client.wait(
            client.search("/university/private/people"), timeout=120.0
        )
        assert sorted(result.matches) == sorted(
            ns.name_of(v)
            for v in ns.subtree(ns.id_of("/university/private/people"))
        )
        assert not result.failed

    def test_search_with_keyword_filter(self, system):
        ns, sys_ = system
        # tag two people as 'staff'
        for name in ("/university/private/people/staff/Ann",
                     "/university/private/people/staff/Mary"):
            node = ns.id_of(name)
            sys_.peers[sys_.owner[node]].metadata.meta(node).add_keywords(
                ["staff"]
            )
        client = TerraDirClient(sys_, home_server=0)
        result = client.wait(
            client.search("/university/private", keyword="staff"),
            timeout=120.0,
        )
        assert sorted(result.matches) == [
            "/university/private/people/staff/Ann",
            "/university/private/people/staff/Mary",
        ]

    def test_search_with_attribute_filter(self, system):
        ns, sys_ = system
        node = ns.id_of("/university/public/people/students/John")
        sys_.peers[sys_.owner[node]].metadata.meta(node).set_attribute(
            "year", "2004"
        )
        client = TerraDirClient(sys_, home_server=2)
        result = client.wait(
            client.search("/university/public", attribute=("year", "2004")),
            timeout=120.0,
        )
        assert result.matches == ["/university/public/people/students/John"]

    def test_search_max_nodes_cap(self, system):
        ns, sys_ = system
        client = TerraDirClient(sys_, home_server=0)
        result = client.wait(
            client.search("/university", max_nodes=3), timeout=120.0
        )
        assert len(result.matches) == 3


class TestMetaStore:
    def test_attributes_and_keywords(self):
        from repro.namespace.meta import MetaStore

        store = MetaStore()
        m = store.meta(5)
        assert m.set_attribute("color", "red") == 1
        assert m.add_keywords(["a", "b"]) == 2
        assert m.add_keywords(["a"]) == 2  # no change, no version bump
        assert m.remove_attribute("color") == 3
        assert m.remove_attribute("color") == 3

    def test_matching(self):
        from repro.namespace.meta import MetaStore

        store = MetaStore()
        store.meta(1).add_keywords(["x"])
        store.meta(2).set_attribute("k", "v")
        assert store.nodes_matching([1, 2], keyword="x") == [1]
        assert store.nodes_matching([1, 2], attribute=("k", "v")) == [2]
        assert store.nodes_matching([1, 2]) == [1, 2]

    def test_snapshot_detached(self):
        from repro.namespace.meta import MetaStore

        store = MetaStore()
        m = store.meta(1)
        m.set_attribute("a", "1")
        snap = m.snapshot()
        m.set_attribute("a", "2")
        assert snap.attributes["a"] == "1"
        assert m.attributes["a"] == "2"

    def test_data(self):
        from repro.namespace.meta import MetaStore

        store = MetaStore()
        assert not store.has_data(1)
        store.set_data(1, b"bytes")
        assert store.get_data(1) == b"bytes"
        assert store.has_data(1)
        assert 1 in store
