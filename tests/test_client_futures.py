"""Edge-case tests for the client future machinery and timeouts."""

import pytest

from repro.client import TerraDirClient
from repro.client.results import Future
from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.cluster.failures import FailureInjector
from repro.namespace.generators import balanced_tree


class TestFuture:
    def test_resolve_once(self):
        f = Future()
        f.resolve(1)
        f.resolve(2)  # ignored
        assert f.value == 1
        assert f.ok

    def test_fail_once(self):
        f = Future()
        f.fail("boom")
        f.resolve(2)  # ignored after failure
        assert f.error == "boom"
        assert not f.ok

    def test_on_done_before_resolution(self):
        f = Future()
        seen = []
        f.on_done(lambda fut: seen.append(fut.value))
        f.resolve(7)
        assert seen == [7]

    def test_on_done_after_resolution_fires_immediately(self):
        f = Future()
        f.resolve(7)
        seen = []
        f.on_done(lambda fut: seen.append(fut.value))
        assert seen == [7]

    def test_multiple_callbacks(self):
        f = Future()
        seen = []
        f.on_done(lambda fut: seen.append("a"))
        f.on_done(lambda fut: seen.append("b"))
        f.resolve(0)
        assert seen == ["a", "b"]


def make_system(**over):
    ns = balanced_tree(levels=5)
    defaults = dict(n_servers=4, seed=3, digest_probe_limit=1)
    defaults.update(over)
    return ns, build_system(ns, SystemConfig.replicated(**defaults))


class TestTimeouts:
    def test_lookup_timeout_on_black_hole(self):
        """A lookup whose destination became unreachable times out with
        a failed future, not a hang."""
        ns, system = make_system()
        inj = FailureInjector(system)
        victim = 2
        node = next(iter(system.peers[victim].owned))
        inj.fail(victim)
        client = TerraDirClient(system, home_server=0, lookup_timeout=2.0)
        fut = client.lookup_node(node)
        with pytest.raises(RuntimeError):
            client.wait(fut, timeout=30.0)
        assert client.n_timeouts == 1

    def test_wait_timeout_raises_timeout_error(self):
        ns, system = make_system()
        client = TerraDirClient(system, home_server=0, lookup_timeout=50.0)
        node = next(iter(system.peers[2].owned))
        fut = client.lookup_node(node)
        # drain the engine artificially short: deadline before response
        with pytest.raises(TimeoutError):
            client.wait(fut, timeout=0.001)

    def test_timeout_cancelled_on_success(self):
        ns, system = make_system()
        client = TerraDirClient(system, home_server=0, lookup_timeout=5.0)
        node = next(iter(system.peers[2].owned))
        result = client.wait(client.lookup_node(node))
        assert result.node == node
        # let the (cancelled) timeout instant pass: no spurious failure
        system.run_until(system.engine.now + 10.0)
        assert client.n_timeouts == 0

    def test_client_validation(self):
        ns, system = make_system()
        with pytest.raises(ValueError):
            TerraDirClient(system, home_server=0, lookup_timeout=0.0)


class TestRetrieveFailures:
    def test_retrieve_fails_when_no_data_host(self):
        """All mapped servers redirect in circles -> bounded attempts."""
        ns, system = make_system()
        inj = FailureInjector(system)
        node = next(iter(system.peers[2].owned))
        client = TerraDirClient(system, home_server=0, lookup_timeout=3.0,
                                retrieve_attempts=2)
        lookup = client.wait(client.lookup_node(node))
        inj.fail(2)  # the only data host dies after the lookup
        name = ns.name_of(node)
        fut = client.retrieve(name)
        with pytest.raises((RuntimeError, TimeoutError)):
            client.wait(fut, timeout=30.0)

    def test_home_served_retrieval(self):
        ns, system = make_system()
        home = system.peers[0]
        node = next(iter(home.owned))
        home.metadata.set_data(node, "local")
        client = TerraDirClient(system, home_server=0)
        result = client.wait(client.retrieve(ns.name_of(node)))
        assert result.data == "local"
        assert result.served_by == 0


class TestLookupRetries:
    def test_retry_masks_transient_failure(self):
        """The destination's host is down for the first attempt and
        back for the retry: the client masks the outage."""
        ns, system = make_system()
        inj = FailureInjector(system)
        victim = 2
        node = next(iter(system.peers[victim].owned))
        client = TerraDirClient(system, home_server=0, lookup_timeout=2.0,
                                lookup_retries=2)
        inj.fail(victim)
        # schedule recovery during the first timeout window
        system.engine.schedule_after(1.0, inj.recover, victim)
        result = client.wait(client.lookup_node(node), timeout=60.0)
        assert result.node == node
        assert client.n_retries >= 1

    def test_retries_exhausted_fails(self):
        ns, system = make_system()
        inj = FailureInjector(system)
        victim = 2
        node = next(iter(system.peers[victim].owned))
        inj.fail(victim)
        client = TerraDirClient(system, home_server=0, lookup_timeout=1.0,
                                lookup_retries=1)
        fut = client.lookup_node(node)
        with pytest.raises(RuntimeError):
            client.wait(fut, timeout=60.0)
        assert client.n_timeouts == 2  # initial + 1 retry

    def test_negative_retries_rejected(self):
        ns, system = make_system()
        with pytest.raises(ValueError):
            TerraDirClient(system, home_server=0, lookup_retries=-1)
