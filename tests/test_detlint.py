"""The determinism linter: rules, pragmas, baseline ratchet, CLI.

Fixtures live in ``tests/detlint_fixtures/`` laid out like the real
package (``sim/`` is protocol code, ``experiments/common.py`` is a
choke point); every lint call passes that directory as the
classification root so categories resolve identically to ``src/repro``.
"""

import json
from pathlib import Path

import pytest

from repro.tools.detlint import LintResult, all_rules, lint_paths
from repro.tools.detlint.baseline import Baseline, BaselineError
from repro.tools.detlint.classify import classify
from repro.tools.detlint.cli import main as lint_main
from repro.tools.detlint.engine import lint_file
from repro.tools.detlint.report import json_report, text_report

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "detlint_fixtures"
REPO_ROOT = TESTS_DIR.parent
SRC = REPO_ROOT / "src"


def lint_fixture(name, **kwargs):
    """Lint one fixture file with the fixture dir as package root."""
    return lint_paths([FIXTURES / name], root=FIXTURES, **kwargs)


def hits(result, rule_id):
    return [v for v in result.new_violations if v.rule_id == rule_id]


def lines_of(result, rule_id):
    return sorted(v.line for v in hits(result, rule_id))


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

class TestClassify:
    def test_fixture_sim_is_protocol(self):
        fc = classify(FIXTURES / "sim" / "entropy_bad.py", root=FIXTURES)
        assert fc.category == "protocol"
        assert fc.relpath == "sim/entropy_bad.py"

    def test_fixture_chokepoint(self):
        fc = classify(
            FIXTURES / "experiments" / "common.py", root=FIXTURES)
        assert fc.category == "chokepoint"

    def test_real_tree_autodetects_root(self):
        fc = classify(SRC / "repro" / "sim" / "engine.py")
        assert fc.category == "protocol"
        assert fc.relpath == "sim/engine.py"

    def test_real_chokepoints(self):
        for name in ("common.py", "parallel.py"):
            fc = classify(SRC / "repro" / "experiments" / name)
            assert fc.category == "chokepoint", name

    def test_tools_are_exempt_category(self):
        fc = classify(
            SRC / "repro" / "tools" / "detlint" / "engine.py")
        assert fc.category == "tools"

    def test_runtime_is_protocol(self):
        for name in ("base.py", "sim_runtime.py", "async_runtime.py"):
            fc = classify(SRC / "repro" / "runtime" / name)
            assert fc.category == "protocol", name

    def test_wallclock_chokepoint_predicate(self):
        from repro.tools.detlint.classify import is_wallclock_chokepoint

        assert is_wallclock_chokepoint("runtime/async_runtime.py")
        assert is_wallclock_chokepoint("runtime/async_serve.py")
        assert not is_wallclock_chokepoint("runtime/sim_runtime.py")
        assert not is_wallclock_chokepoint("runtime/base.py")
        # the sanction is position-sensitive: neither an async_* file
        # elsewhere nor a nested one qualifies
        assert not is_wallclock_chokepoint("sim/async_probe.py")
        assert not is_wallclock_chokepoint("async_runtime.py")
        assert not is_wallclock_chokepoint("runtime/sub/async_x.py")


# ----------------------------------------------------------------------
# rule catalog
# ----------------------------------------------------------------------

class TestCatalog:
    def test_six_rules_registered(self):
        rules = all_rules()
        assert [r.id for r in rules] == [
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
        ]
        names = {r.name for r in rules}
        assert names == {
            "wall-clock-entropy", "sized-presence-truthiness",
            "loop-closure-capture", "unordered-iteration",
            "env-read", "handler-global-mutation",
        }


# ----------------------------------------------------------------------
# DET001 wall-clock-entropy
# ----------------------------------------------------------------------

class TestEntropy:
    def test_positives(self):
        result = lint_fixture("sim/entropy_bad.py")
        found = hits(result, "DET001")
        # module random x2, from-import alias, unseeded Random(),
        # time.time, datetime.now, uuid.uuid4
        assert len(found) == 7
        messages = " ".join(v.message for v in found)
        assert "seeded stream" in messages
        assert "wall clock" in messages

    def test_negatives(self):
        result = lint_fixture("sim/entropy_ok.py")
        assert hits(result, "DET001") == []

    def test_rule_scoped_to_protocol(self):
        # the same source under experiments/ must not trigger DET001
        src = (FIXTURES / "sim" / "entropy_bad.py").read_text()
        target = FIXTURES / "experiments" / "_scope_probe.py"
        target.write_text(src)
        try:
            result = lint_fixture("experiments/_scope_probe.py")
            assert hits(result, "DET001") == []
        finally:
            target.unlink()

    def test_runtime_async_files_are_sanctioned(self):
        # runtime/async_* is the live-mode wall-clock funnel
        result = lint_fixture("runtime/async_probe.py")
        assert hits(result, "DET001") == []

    def test_runtime_sim_side_keeps_contract(self):
        # ...but the sanction must not leak to the rest of runtime/
        result = lint_fixture("runtime/sim_probe.py")
        assert len(hits(result, "DET001")) == 2  # time.time + random


# ----------------------------------------------------------------------
# DET002 sized-presence-truthiness
# ----------------------------------------------------------------------

class TestTruthiness:
    def test_positives(self):
        result = lint_fixture("sim/truthiness_bad.py")
        found = hits(result, "DET002")
        assert len(found) == 6
        or_hits = [v for v in found if "'or " in v.message]
        assert len(or_hits) == 2  # make_engine() and []

    def test_negatives(self):
        result = lint_fixture("sim/truthiness_ok.py")
        assert hits(result, "DET002") == []


# ----------------------------------------------------------------------
# DET003 loop-closure-capture
# ----------------------------------------------------------------------

class TestClosures:
    def test_positives(self):
        result = lint_fixture("sim/closures_bad.py")
        found = hits(result, "DET003")
        assert len(found) == 4
        kinds = " ".join(v.message for v in found)
        assert "generator expression" in kinds
        assert "lambda" in kinds
        assert "nested def" in kinds

    def test_negatives(self):
        result = lint_fixture("sim/closures_ok.py")
        assert hits(result, "DET003") == []


# ----------------------------------------------------------------------
# DET004 unordered-iteration
# ----------------------------------------------------------------------

class TestOrdering:
    def test_positives(self):
        result = lint_fixture("sim/ordering_bad.py")
        # 5 sites; the sum-over-set genexp reports twice (aggregation
        # + set iteration), both pointing at the same expression
        assert len(hits(result, "DET004")) == 6
        assert len(set(lines_of(result, "DET004"))) == 5

    def test_negatives(self):
        result = lint_fixture("sim/ordering_ok.py")
        assert hits(result, "DET004") == []


# ----------------------------------------------------------------------
# DET005 env-read
# ----------------------------------------------------------------------

class TestEnvReads:
    def test_positives(self):
        result = lint_fixture("sim/envread_bad.py")
        found = hits(result, "DET005")
        assert len(found) == 5
        # the export (a write) is not among them
        snippets = " ".join(v.snippet for v in found)
        assert "export_workers" not in snippets
        assert 'os.environ["REPRO_WORKERS"] = str(n)' not in snippets

    def test_chokepoint_exempt(self):
        result = lint_fixture("experiments/common.py")
        assert hits(result, "DET005") == []
        assert result.ok


# ----------------------------------------------------------------------
# DET006 handler-global-mutation
# ----------------------------------------------------------------------

class TestShardSafety:
    def test_positives(self):
        result = lint_fixture("sim/shardsafety_bad.py")
        found = hits(result, "DET006")
        assert len(found) == 3
        messages = " ".join(v.message for v in found)
        # one per registration form: string name, callable, decorator
        assert "'_on_query'" in messages
        assert "'on_probe'" in messages
        assert "'on_advert'" in messages

    def test_negatives(self):
        result = lint_fixture("sim/shardsafety_ok.py")
        assert hits(result, "DET006") == []


# ----------------------------------------------------------------------
# PR 7 regressions: both historical bugs must be caught
# ----------------------------------------------------------------------

class TestPR7Regressions:
    def test_stats_merge_genexp_is_caught(self):
        result = lint_fixture("sim/regression_pr7.py")
        genexp = [
            v for v in hits(result, "DET003")
            if "shard_id" in v.message
        ]
        assert genexp, "the PR 7 stats-merge genexp bug must be flagged"

    def test_engine_or_default_is_caught(self):
        result = lint_fixture("sim/regression_pr7.py")
        ordefault = [
            v for v in hits(result, "DET002")
            if "make_engine" in v.message
        ]
        assert ordefault, "the PR 7 engine-or-default bug must be flagged"

    def test_fixed_shapes_in_tree_are_clean(self):
        # the real, fixed implementations of both bug sites
        for rel in ("sim/shard.py", "net/dispatch.py"):
            fclass, kept, _, err = lint_file(SRC / "repro" / rel)
            assert err is None
            assert [v for v in kept if v.rule_id in ("DET002", "DET003")] \
                == [], rel


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------

class TestPragmas:
    def test_valid_pragmas_suppress(self):
        result = lint_fixture("sim/pragma_cases.py")
        assert result.new_violations == []
        assert len(result.suppressed) == 3
        assert result.ok

    def test_standalone_pragma_covers_multiline_justification(self):
        result = lint_fixture("sim/pragma_cases.py")
        waived = {v.rule_id for v in result.suppressed}
        assert "DET004" in waived  # the sum(values()) two-line pragma

    def test_defective_pragmas_fail(self):
        result = lint_fixture("sim/pragma_bad_cases.py")
        bad = hits(result, "DET000")
        # unknown rule, missing justification, unparseable, stale
        assert len(bad) == 4
        messages = " ".join(v.message for v in bad)
        assert "unknown rule" in messages
        assert "without justification" in messages
        assert "unparseable" in messages
        assert "stale" in messages

    def test_defective_pragma_does_not_suppress(self):
        result = lint_fixture("sim/pragma_bad_cases.py")
        # the underlying DET001 hits survive their broken waivers
        assert len(hits(result, "DET001")) == 3
        assert not result.ok


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------

class TestBaseline:
    def _violations(self):
        return lint_fixture("sim/entropy_bad.py").new_violations

    def test_grandfathering(self):
        violations = self._violations()
        baseline = Baseline.from_violations(violations)
        result = lint_fixture("sim/entropy_bad.py", baseline=baseline)
        assert result.new_violations == []
        assert len(result.baselined) == len(violations)
        assert result.stale_baseline == []
        assert result.ok

    def test_new_instance_beyond_count_fails(self):
        violations = self._violations()
        baseline = Baseline.from_violations(violations)
        key = violations[0].baseline_key()
        baseline.entries[key] -= 1
        if baseline.entries[key] == 0:
            del baseline.entries[key]
        result = lint_fixture("sim/entropy_bad.py", baseline=baseline)
        assert len(result.new_violations) == 1
        assert not result.ok

    def test_stale_entry_fails(self):
        baseline = Baseline.from_violations(self._violations())
        baseline.entries["DET001:sim/gone.py:random.random()"] = 1
        result = lint_fixture("sim/entropy_bad.py", baseline=baseline)
        assert result.new_violations == []
        assert len(result.stale_baseline) == 1
        assert not result.ok

    def test_keys_are_line_number_free(self):
        v = self._violations()[0]
        assert str(v.line) not in v.baseline_key().split(":", 2)[:2]
        assert v.baseline_key() == \
            f"{v.rule_id}:{v.path}:{v.snippet}"

    def test_roundtrip(self, tmp_path):
        baseline = Baseline.from_violations(self._violations())
        p = tmp_path / "baseline.json"
        baseline.save(p)
        assert Baseline.load(p).entries == baseline.entries

    def test_load_rejects_garbage(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text("[]")
        with pytest.raises(BaselineError):
            Baseline.load(p)
        p.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(BaselineError):
            Baseline.load(p)


# ----------------------------------------------------------------------
# reports and CLI
# ----------------------------------------------------------------------

class TestReports:
    def test_text_report_shapes(self):
        result = lint_fixture("sim/entropy_bad.py")
        text = text_report(result)
        assert "det-lint: FAILED" in text
        assert "DET001" in text
        clean = lint_fixture("sim/entropy_ok.py")
        assert "det-lint: OK" in text_report(clean)

    def test_json_report_shapes(self):
        result = lint_fixture("sim/entropy_bad.py")
        payload = json_report(result, list(all_rules()))
        assert payload["ok"] is False
        assert payload["summary"]["new"] == len(result.new_violations)
        assert {r["id"] for r in payload["rules"]} == {
            f"DET00{i}" for i in range(1, 7)}
        first = payload["new_violations"][0]
        assert {"rule_id", "path", "line", "message"} <= set(first)


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        rc = lint_main([
            str(FIXTURES / "sim" / "entropy_ok.py"),
            "--root", str(FIXTURES), "--no-baseline",
        ])
        assert rc == 0
        assert "det-lint: OK" in capsys.readouterr().out

    def test_violations_exit_one(self, capsys):
        rc = lint_main([
            str(FIXTURES / "sim" / "entropy_bad.py"),
            "--root", str(FIXTURES), "--no-baseline",
        ])
        assert rc == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_output_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = lint_main([
            str(FIXTURES / "sim" / "entropy_bad.py"),
            "--root", str(FIXTURES), "--no-baseline",
            "--format", "json", "--out", str(out),
        ])
        assert rc == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert payload["summary"]["new"] > 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bl = tmp_path / "baseline.json"
        rc = lint_main([
            str(FIXTURES / "sim" / "entropy_bad.py"),
            "--root", str(FIXTURES), "--baseline", str(bl),
            "--write-baseline",
        ])
        assert rc == 0
        assert bl.exists()
        rc = lint_main([
            str(FIXTURES / "sim" / "entropy_bad.py"),
            "--root", str(FIXTURES), "--baseline", str(bl),
        ])
        assert rc == 0  # fully grandfathered
        capsys.readouterr()

    def test_rule_subset(self, capsys):
        rc = lint_main([
            str(FIXTURES / "sim" / "entropy_bad.py"),
            "--root", str(FIXTURES), "--no-baseline",
            "--rules", "env-read",
        ])
        assert rc == 0  # no env reads in the entropy fixture
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "wall-clock-entropy" in out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2
        capsys.readouterr()

    def test_module_entry_point(self):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "DET006" in proc.stdout


# ----------------------------------------------------------------------
# the gate itself: the real tree must be clean
# ----------------------------------------------------------------------

class TestTreeIsClean:
    def test_src_lints_clean_with_committed_baseline(self):
        baseline_path = REPO_ROOT / "detlint_baseline.json"
        baseline = Baseline.load(baseline_path) \
            if baseline_path.exists() else None
        result: LintResult = lint_paths([SRC], baseline=baseline)
        problems = [v.format() for v in result.new_violations]
        assert result.parse_errors == []
        assert result.stale_baseline == []
        assert problems == [], "\n".join(problems)

    def test_every_waiver_is_justified(self):
        # apply_pragmas already rejects justification-free pragmas; this
        # locks the repo-wide count so new waivers are a conscious diff
        result = lint_paths([SRC])
        assert len(result.suppressed) <= 20
