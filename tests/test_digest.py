"""Unit tests for inverse-mapping digests and the digest directory."""

import pytest

from repro.filters.digest import Digest, DigestDirectory


@pytest.fixture
def digests():
    ref = Digest(capacity=64, owner_server=0)
    d1 = Digest(capacity=64, owner_server=1)
    d2 = Digest(capacity=64, owner_server=2)
    return ref, d1, d2


class TestDigest:
    def test_add_and_test(self, digests):
        ref, d1, _ = digests
        d1.add(5)
        assert 5 in d1
        assert 6 not in d1

    def test_version_increments(self, digests):
        _, d1, _ = digests
        v0 = d1.version
        d1.add(5)
        assert d1.version == v0 + 1

    def test_rebuild_removes(self, digests):
        _, d1, _ = digests
        d1.add(5)
        d1.add(6)
        d1.rebuild([6])
        assert 6 in d1
        assert 5 not in d1

    def test_snapshot_is_point_in_time(self, digests):
        ref, d1, _ = digests
        d1.add(5)
        snap = d1.snapshot()
        d1.add(7)
        assert ref.test_snapshot(snap, 5)
        assert not ref.test_snapshot(snap, 7)

    def test_snapshot_versioned(self, digests):
        _, d1, _ = digests
        v, _bits = d1.snapshot()
        d1.add(1)
        v2, _ = d1.snapshot()
        assert v2 > v


class TestDirectory:
    def test_observe_and_test(self, digests):
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        d1.add(9)
        ddir.observe(1, d1.snapshot())
        assert ddir.test(1, 9) is True
        assert ddir.test(1, 10) is False
        assert ddir.test(99, 9) is None  # unknown server

    def test_observe_keeps_newest(self, digests):
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        d1.add(1)
        new = d1.snapshot()
        d1_old_version = (0, new[1])
        assert ddir.observe(1, new)
        assert not ddir.observe(1, d1_old_version)  # older version rejected

    def test_bounded_evicts_stalest(self, digests):
        ref, d1, d2 = digests
        ddir = DigestDirectory(ref, max_peers=1)
        d1.add(1)
        d2.add(2)
        d2.add(3)  # version 2 > version 1
        ddir.observe(1, d1.snapshot())
        ddir.observe(2, d2.snapshot())
        assert ddir.get(1) is None
        assert ddir.get(2) is not None
        assert len(ddir) == 1

    def test_forget(self, digests):
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        ddir.observe(1, d1.snapshot())
        ddir.forget(1)
        assert ddir.get(1) is None

    def test_known_hosts_of(self, digests):
        ref, d1, d2 = digests
        ddir = DigestDirectory(ref)
        d1.add(5)
        d2.add(5)
        d2.add(6)
        ddir.observe(1, d1.snapshot())
        ddir.observe(2, d2.snapshot())
        assert set(ddir.known_hosts_of(5)) == {1, 2}
        assert set(ddir.known_hosts_of(6)) == {2}

    def test_stale_snapshot_is_soft_state(self, digests):
        """A remote snapshot does not track later evictions -- exactly
        the soft-state staleness the protocol tolerates."""
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        d1.add(5)
        ddir.observe(1, d1.snapshot())
        d1.rebuild([])  # server 1 evicted node 5
        assert 5 not in d1
        assert ddir.test(1, 5) is True  # directory is (acceptably) stale
        ddir.observe(1, d1.snapshot())  # fresh snapshot corrects it
        assert ddir.test(1, 5) is False


class TestEligibleSnaps:
    def test_matches_directory_iteration(self, digests):
        ref, d1, d2 = digests
        ddir = DigestDirectory(ref)
        d1.add(1)
        d2.add(2)
        ddir.observe(1, d1.snapshot())
        ddir.observe(2, d2.snapshot())
        snaps = ddir.eligible_snaps(exclude=99)
        assert [s for s, _ in snaps] == [1, 2]
        assert snaps[0][1] == ddir.get(1)[1]

    def test_excludes_and_limits(self, digests):
        ref, d1, d2 = digests
        ddir = DigestDirectory(ref)
        ddir.observe(1, d1.snapshot())
        ddir.observe(2, d2.snapshot())
        assert [s for s, _ in ddir.eligible_snaps(exclude=1)] == [2]
        assert [s for s, _ in ddir.eligible_snaps(99, limit=1)] == [1]

    def test_cached_until_version_moves(self, digests):
        ref, d1, d2 = digests
        ddir = DigestDirectory(ref)
        d1.add(1)
        ddir.observe(1, d1.snapshot())
        first = ddir.eligible_snaps(99)
        assert ddir.eligible_snaps(99) is first  # cache hit
        d2.add(2)
        ddir.observe(2, d2.snapshot())  # mutation bumps version
        second = ddir.eligible_snaps(99)
        assert second is not first
        assert [s for s, _ in second] == [1, 2]

    def test_cache_keyed_on_parameters(self, digests):
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        ddir.observe(1, d1.snapshot())
        assert ddir.eligible_snaps(1) == []
        assert [s for s, _ in ddir.eligible_snaps(0)] == [1]

    def test_rejected_observation_keeps_cache(self, digests):
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        d1.add(1)
        new = d1.snapshot()
        ddir.observe(1, new)
        first = ddir.eligible_snaps(99)
        assert not ddir.observe(1, (0, new[1]))  # stale: rejected
        assert ddir.eligible_snaps(99) is first  # version unmoved

    def test_forget_invalidates(self, digests):
        ref, d1, _ = digests
        ddir = DigestDirectory(ref)
        ddir.observe(1, d1.snapshot())
        first = ddir.eligible_snaps(99)
        ddir.forget(1)
        assert ddir.eligible_snaps(99) == []
        ddir.forget(1)  # absent: version must not move spuriously
        assert first == [(1, d1.snapshot()[1])]
