"""Unit tests for the typed message-dispatch registry and its use as
the peer's delivery seam."""

import pytest

from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.namespace.generators import balanced_tree
from repro.net.dispatch import DispatchRegistry, UnknownMessageError
from repro.net.message import (
    AdvertMessage,
    DataReply,
    DataRequest,
    ProbeMessage,
    ProbeReplyMessage,
    QueryMessage,
    ResponseMessage,
    TransferAckMessage,
    TransferMessage,
)
from repro.server.peer import PEER_DISPATCH


class MsgA:
    pass


class MsgB:
    pass


class Target:
    def __init__(self):
        self.log = []

    def on_a(self, msg):
        self.log.append(("a", msg))


class TestRegistry:
    def test_string_handler_dispatches_via_attribute(self):
        reg = DispatchRegistry("t")
        reg.register(MsgA, "on_a")
        t = Target()
        m = MsgA()
        reg.dispatch(t, m)
        assert t.log == [("a", m)]

    def test_callable_handler_receives_target_and_msg(self):
        reg = DispatchRegistry()
        seen = []
        reg.register(MsgA, lambda target, msg: seen.append((target, msg)))
        t, m = Target(), MsgA()
        reg.dispatch(t, m)
        assert seen == [(t, m)]

    def test_decorator_registration(self):
        reg = DispatchRegistry()

        @reg.register(MsgA)
        def _on_a(target, msg):
            target.log.append(("deco", msg))

        t, m = Target(), MsgA()
        reg.dispatch(t, m)
        assert t.log == [("deco", m)]

    def test_unknown_message_raises(self):
        reg = DispatchRegistry("named")
        reg.register(MsgA, "on_a")
        with pytest.raises(UnknownMessageError, match="MsgB"):
            reg.dispatch(Target(), MsgB())
        with pytest.raises(UnknownMessageError, match="named"):
            reg.handler_for(MsgB)

    def test_unknown_message_error_is_a_type_error(self):
        # callers that guarded the old isinstance chain with TypeError
        # keep working
        assert issubclass(UnknownMessageError, TypeError)

    def test_last_registration_wins(self):
        reg = DispatchRegistry()
        reg.register(MsgA, "on_a")
        reg.register(MsgA, lambda target, msg: target.log.append("override"))
        t = Target()
        reg.dispatch(t, MsgA())
        assert t.log == ["override"]

    def test_unregister(self):
        reg = DispatchRegistry()
        reg.register(MsgA, "on_a")
        assert MsgA in reg
        assert reg.unregister(MsgA)
        assert MsgA not in reg
        assert not reg.unregister(MsgA)
        with pytest.raises(UnknownMessageError):
            reg.handler_for(MsgA)

    def test_bind_snapshots_current_handlers(self):
        reg = DispatchRegistry()
        reg.register(MsgA, "on_a")
        t = Target()
        bound = reg.bind(t)
        # later registry changes do not affect the existing binding
        reg.register(MsgA, lambda target, msg: target.log.append("late"))
        m = MsgA()
        bound[MsgA](m)
        assert t.log == [("a", m)]

    def test_rejects_non_class_and_bad_handler(self):
        reg = DispatchRegistry()
        with pytest.raises(TypeError):
            reg.register("not-a-class", "on_a")
        with pytest.raises(TypeError):
            reg.register(MsgA, 42)

    def test_introspection(self):
        reg = DispatchRegistry("r")
        reg.register(MsgA, "on_a")
        reg.register(MsgB, "on_b")
        assert set(reg.types()) == {MsgA, MsgB}
        assert len(reg) == 2
        assert "MsgA" in repr(reg)


class TestPeerDispatch:
    def make(self):
        ns = balanced_tree(levels=4)
        cfg = SystemConfig.replicated(
            n_servers=4, seed=3, bootstrap_known_peers=0
        )
        return ns, build_system(ns, cfg)

    def test_registry_covers_every_wire_message(self):
        for mt in (
            QueryMessage, ResponseMessage, ProbeMessage, ProbeReplyMessage,
            TransferMessage, TransferAckMessage, AdvertMessage,
            DataRequest, DataReply,
        ):
            assert mt in PEER_DISPATCH

    def test_deliver_unknown_message_type_raises(self):
        ns, system = self.make()

        class Bogus:
            pass

        with pytest.raises(UnknownMessageError):
            system.peers[0].deliver(Bogus())

    def test_no_isinstance_chain_left_in_peer(self):
        import inspect

        import repro.server.peer as peer_mod

        src = inspect.getsource(peer_mod)
        assert "isinstance(msg" not in src
