"""Documentation stays truthful: tutorial code runs, README structure
matches the repository, every public module has a docstring."""

import contextlib
import importlib
import io
import pathlib
import pkgutil
import re

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestTutorialBlocks:
    def test_all_python_blocks_execute(self):
        src = (REPO / "docs" / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", src, re.S)
        assert len(blocks) >= 5
        env = {}
        for i, block in enumerate(blocks):
            with contextlib.redirect_stdout(io.StringIO()):
                exec(compile(block, f"<tutorial-block-{i}>", "exec"), env)


class TestReadme:
    def test_quickstart_block_executes(self):
        src = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", src, re.S)
        assert blocks, "README must contain a quickstart block"
        env = {}
        with contextlib.redirect_stdout(io.StringIO()):
            exec(compile(blocks[0], "<readme-quickstart>", "exec"), env)

    def test_referenced_files_exist(self):
        src = (REPO / "README.md").read_text()
        for path in ("DESIGN.md", "EXPERIMENTS.md", "docs/API.md"):
            assert path.split("/")[-1] in src
            assert (REPO / path).exists()

    def test_example_scripts_listed_and_present(self):
        src = (REPO / "README.md").read_text()
        for script in re.findall(r"examples/(\w+\.py)", src):
            assert (REPO / "examples" / script).exists(), script


class TestDocstrings:
    def test_every_public_module_documented(self):
        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_api_members_documented(self):
        import repro

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, undocumented
