"""Run the doctest examples embedded in module and class docstrings."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _modules_with_doctests():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(info.name)
        finder = doctest.DocTestFinder(exclude_empty=True)
        tests = [t for t in finder.find(mod) if t.examples]
        if tests:
            out.append(info.name)
    return sorted(out)


MODULES = _modules_with_doctests()


def test_doctest_examples_exist():
    """The public API keeps runnable examples in its docstrings."""
    assert len(MODULES) >= 4, MODULES


@pytest.mark.parametrize("name", MODULES)
def test_module_doctests(name):
    mod = importlib.import_module(name)
    result = doctest.testmod(mod, optionflags=doctest.ELLIPSIS)
    assert result.failed == 0, f"{name}: {result.failed} doctest failures"
    # attempted may be 0 when a module's examples are all +SKIP
    assert result.attempted >= 0
