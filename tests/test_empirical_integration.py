"""Integration: empirical (trace-derived) namespaces through the whole
stack -- build from paths, serve lookups, search, and export metrics."""

import io

import pytest

from repro.analysis.export import system_series_to_csv
from repro.client import TerraDirClient
from repro.cluster.builder import build_system
from repro.cluster.config import SystemConfig
from repro.workload.trace import (
    EmpiricalWorkloadDriver,
    namespace_from_paths,
)

LISTING = """
# a small project volume with access counts
40 /src/core/engine.py
25 /src/core/routing.py
9  /src/net/transport.py
3  /docs/design.md
2  /docs/api/reference.md
70 /release/v1.0/archive.tar.gz
1  /release/v1.0/CHECKSUMS
"""


@pytest.fixture(scope="module")
def volume():
    ns, counts = namespace_from_paths(io.StringIO(LISTING))
    cfg = SystemConfig.replicated(n_servers=6, seed=4, digest_probe_limit=1)
    system = build_system(ns, cfg)
    return ns, counts, system


class TestEmpiricalVolume:
    def test_namespace_shape(self, volume):
        ns, counts, _ = volume
        assert ns.id_of("/src/core/engine.py") >= 0
        assert ns.id_of("/release/v1.0") >= 0  # implicit ancestor
        assert len(counts) == 7

    def test_hot_file_dominates_traffic(self, volume):
        ns, counts, system = volume
        seen = {}
        system.on_inject = lambda t, s, d: seen.__setitem__(
            d, seen.get(d, 0) + 1
        )
        drv = EmpiricalWorkloadDriver(system, rate=250.0, duration=6.0,
                                      weights=dict(counts), seed=9)
        drv.run()
        system.on_inject = None
        hot = ns.id_of("/release/v1.0/archive.tar.gz")
        assert seen.get(hot, 0) > 0.3 * sum(seen.values())
        assert system.stats.completion_fraction > 0.95

    def test_client_search_over_volume(self, volume):
        ns, counts, system = volume
        node = ns.id_of("/src/core/engine.py")
        owner = system.peers[system.owner[node]]
        owner.metadata.meta(node).add_keywords(["python"])
        client = TerraDirClient(system, home_server=0)
        result = client.wait(
            client.search("/src", keyword="python"), timeout=120.0
        )
        assert result.matches == ["/src/core/engine.py"]

    def test_metrics_export_roundtrip(self, volume):
        ns, counts, system = volume
        buf = io.StringIO()
        rows = system_series_to_csv(buf, system)
        assert rows > 0
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("second,")
        # one data row per simulated second
        assert len(lines) == rows + 1
