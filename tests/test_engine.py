"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimError


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(2.0, order.append, "b")
        eng.schedule(1.0, order.append, "a")
        eng.schedule(3.0, order.append, "c")
        eng.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        eng = Engine()
        order = []
        for tag in "abc":
            eng.schedule(1.0, order.append, tag)
        eng.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(1.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [1.5]
        assert eng.now == 1.5

    def test_rejects_past(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimError):
            eng.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda: eng.schedule_after(0.5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimError):
            eng.schedule_after(-1.0, lambda: None)


class TestRunControl:
    def test_until_stops_and_advances_clock(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, seen.append, 1)
        eng.schedule(5.0, seen.append, 5)
        eng.run(until=2.0)
        assert seen == [1]
        assert eng.now == 2.0
        eng.run()
        assert seen == [1, 5]

    def test_max_events(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(float(i), seen.append, i)
        eng.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_empty_run_until_advances_clock(self):
        eng = Engine()
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_dispatch_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.n_dispatched == 4

    def test_not_reentrant(self):
        eng = Engine()

        def reenter():
            eng.run()

        eng.schedule(1.0, reenter)
        with pytest.raises(SimError):
            eng.run()


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        seen = []
        h = eng.schedule(1.0, seen.append, "x", handle=True)
        h.cancel()
        eng.run()
        assert seen == []

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        eng.schedule(3.0, lambda: None)
        assert eng.peek_time() == 3.0


class TestReset:
    def test_reset_clears_everything(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.schedule(9.0, lambda: None)
        eng.reset()
        assert eng.now == 0.0
        assert len(eng) == 0
        assert eng.peek_time() is None
