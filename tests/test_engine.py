"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimError


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(2.0, order.append, "b")
        eng.schedule(1.0, order.append, "a")
        eng.schedule(3.0, order.append, "c")
        eng.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        eng = Engine()
        order = []
        for tag in "abc":
            eng.schedule(1.0, order.append, tag)
        eng.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(1.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [1.5]
        assert eng.now == 1.5

    def test_rejects_past(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimError):
            eng.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda: eng.schedule_after(0.5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimError):
            eng.schedule_after(-1.0, lambda: None)


class TestRunControl:
    def test_until_stops_and_advances_clock(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, seen.append, 1)
        eng.schedule(5.0, seen.append, 5)
        eng.run(until=2.0)
        assert seen == [1]
        assert eng.now == 2.0
        eng.run()
        assert seen == [1, 5]

    def test_max_events(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(float(i), seen.append, i)
        eng.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_empty_run_until_advances_clock(self):
        eng = Engine()
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_dispatch_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.n_dispatched == 4

    def test_until_with_max_events_stop_keeps_clock_at_last_event(self):
        """When max_events stops the run first, the clock must stay at
        the last dispatched event -- not jump forward to ``until``."""
        eng = Engine()
        for i in range(10):
            eng.schedule(float(i), lambda: None)
        eng.run(until=100.0, max_events=3)
        assert eng.now == 2.0
        # resuming picks up exactly where it stopped
        eng.run(until=100.0)
        assert eng.now == 100.0
        assert eng.n_dispatched == 10

    def test_until_with_max_events_until_wins(self):
        """When ``until`` is hit before the event budget, the clock does
        advance to ``until`` as usual."""
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.schedule(50.0, lambda: None)
        eng.run(until=10.0, max_events=99)
        assert eng.now == 10.0

    def test_max_events_exactly_exhausts_heap(self):
        """Edge: the budget runs out on the final event.  The stop is
        still attributed to ``max_events``, so the clock conservatively
        stays at the last dispatched event (events scheduled *by* that
        last handler could still be due before ``until``)."""
        eng = Engine()
        for i in range(3):
            eng.schedule(float(i), lambda: None)
        eng.run(until=10.0, max_events=3)
        assert eng.now == 2.0
        eng.run(until=10.0)
        assert eng.now == 10.0

    def test_not_reentrant(self):
        eng = Engine()

        def reenter():
            eng.run()

        eng.schedule(1.0, reenter)
        with pytest.raises(SimError):
            eng.run()


class TestPending:
    def test_pending_tracks_heap_size(self):
        eng = Engine()
        assert eng.pending == 0
        eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2
        eng.run(until=1.5)
        assert eng.pending == 1
        eng.run()
        assert eng.pending == 0

    def test_pending_counts_cancelled_entries(self):
        """``pending`` is a heap-hygiene gauge: lazily-cancelled events
        still occupy heap slots and must show up in it."""
        eng = Engine()
        for _ in range(5):
            eng.schedule(1.0, lambda: None, handle=True).cancel()
        assert eng.pending == 5
        eng.run()
        assert eng.pending == 0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        seen = []
        h = eng.schedule(1.0, seen.append, "x", handle=True)
        h.cancel()
        eng.run()
        assert seen == []

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        eng.schedule(3.0, lambda: None)
        assert eng.peek_time() == 3.0


class TestReset:
    def test_reset_clears_everything(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.schedule(9.0, lambda: None)
        eng.reset()
        assert eng.now == 0.0
        assert len(eng) == 0
        assert eng.peek_time() is None
