"""Every example script runs end to end (examples never rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print a report"


def test_every_example_has_a_docstring():
    import ast

    for script in EXAMPLES:
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), script.name
